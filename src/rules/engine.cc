#include "rules/engine.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"
#include "db/tuple.h"

namespace ptldb::rules {

namespace {

constexpr int kMaxDispatchDepth = 32;

// Schema of an auxiliary aggregate item (one row).
db::Schema AggItemSchema() {
  return db::Schema({{"started", ValueType::kBool},
                     {"sum", ValueType::kDouble},
                     {"cnt", ValueType::kInt64},
                     {"minv", ValueType::kDouble},
                     {"maxv", ValueType::kDouble}});
}

db::Tuple InitialAggRow() {
  return {Value::Bool(false), Value::Real(0), Value::Int(0), Value::Null(),
          Value::Null()};
}

// Collects the event names a condition mentions and whether it uses
// Lasttime, without requiring parameter substitution (used for the §8
// relevance index, including for rule families).
void CollectTermMeta(const ptl::TermPtr& t, std::set<std::string>* events,
                     bool* uses_lasttime);

void CollectConditionMeta(const ptl::FormulaPtr& f,
                          std::set<std::string>* events, bool* uses_lasttime) {
  if (f == nullptr) return;
  if (f->kind == ptl::Formula::Kind::kEvent) events->insert(f->event_name);
  if (f->kind == ptl::Formula::Kind::kLasttime) *uses_lasttime = true;
  CollectTermMeta(f->lhs_term, events, uses_lasttime);
  CollectTermMeta(f->rhs_term, events, uses_lasttime);
  CollectTermMeta(f->bind_term, events, uses_lasttime);
  CollectConditionMeta(f->left, events, uses_lasttime);
  CollectConditionMeta(f->right, events, uses_lasttime);
}

void CollectTermMeta(const ptl::TermPtr& t, std::set<std::string>* events,
                     bool* uses_lasttime) {
  if (t == nullptr) return;
  for (const ptl::TermPtr& op : t->operands) {
    CollectTermMeta(op, events, uses_lasttime);
  }
  CollectConditionMeta(t->agg_start, events, uses_lasttime);
  CollectConditionMeta(t->agg_sample, events, uses_lasttime);
}

// Canonical rendering of a parameter map (instance key / __executed column).
std::string ParamsKey(const std::map<std::string, Value>& params) {
  std::vector<std::string> parts;
  parts.reserve(params.size());
  for (const auto& [name, value] : params) {
    parts.push_back(StrCat(name, "=", value.ToString()));
  }
  return Join(parts, ",");
}

}  // namespace

RuleEngine::RuleEngine(db::Database* database)
    : database_(database), registry_(database) {
  // §7: the execution log is an ordinary, queryable relation.
  Status s = database_->CreateTable(
      kExecutedTable, db::Schema({{"rule", ValueType::kString},
                                  {"params", ValueType::kString},
                                  {"t", ValueType::kInt64}}));
  PTLDB_CHECK_OK(s);
  database_->SetListener(this);
}

RuleEngine::~RuleEngine() {
  if (metrics_ != nullptr) metrics_->RemoveProvider(metrics_provider_id_);
  database_->SetListener(nullptr);
}

// ---- Observability ----------------------------------------------------------

void RuleEngine::SetMetrics(Metrics* metrics) {
  if (metrics_ != nullptr) metrics_->RemoveProvider(metrics_provider_id_);
  metrics_ = metrics;
  if (metrics_ == nullptr) {
    ins_ = MetricSet{};
    metrics_provider_id_ = 0;
    return;
  }
  ins_.states_processed = &metrics_->counter("engine.states_processed");
  ins_.rule_steps = &metrics_->counter("engine.rule_steps");
  ins_.steps_skipped_by_filter =
      &metrics_->counter("engine.steps_skipped_by_filter");
  ins_.actions_executed = &metrics_->counter("engine.actions_executed");
  ins_.ic_checks = &metrics_->counter("engine.ic_checks");
  ins_.ic_violations = &metrics_->counter("engine.ic_violations");
  ins_.instances_created = &metrics_->counter("engine.instances_created");
  ins_.parallel_dispatches = &metrics_->counter("engine.parallel_dispatches");
  ins_.collections = &metrics_->counter("engine.collections");
  ins_.errors = &metrics_->counter("engine.errors");
  ins_.query_evals = &metrics_->counter("query.evals");
  ins_.query_memo_hits = &metrics_->counter("query.memo_hits");
  ins_.snapshot_layout_hits = &metrics_->counter("query.snapshot_layout_hits");
  ins_.query_history_records = &metrics_->counter("aux.query_history.records");
  ins_.gather_ns = &metrics_->histogram("engine.gather_ns");
  ins_.step_ns = &metrics_->histogram("engine.step_ns");
  ins_.merge_ns = &metrics_->histogram("engine.merge_ns");
  ins_.action_ns = &metrics_->histogram("engine.action_ns");
  metrics_provider_id_ =
      metrics_->AddProvider([this](Metrics& m) { RefreshDerivedMetrics(m); });
}

void RuleEngine::RefreshDerivedMetrics(Metrics& m) {
  m.gauge("engine.rules").Set(static_cast<int64_t>(rules_.size()));
  m.gauge("engine.threads").Set(static_cast<int64_t>(num_threads_));
  m.gauge("engine.batch_queue_depth")
      .Set(static_cast<int64_t>(batch_queue_.size()));
  size_t instances = 0, live = 0, store = 0;
  uint64_t collections = 0, prune_hits = 0, subsume_hits = 0;
  uint64_t mask_skips = 0, subst_hits = 0, subst_misses = 0;
  int64_t unbounded_rules = 0, folded_nodes = 0;
  for (const auto& rule : rules_) {
    if (rule->lint.boundedness == ptl::Boundedness::kUnbounded) {
      ++unbounded_rules;
    }
    folded_nodes += static_cast<int64_t>(rule->lint.folded_nodes);
    size_t rule_live = 0, rule_store = 0;
    uint64_t rule_steps = 0;
    for (const auto& instance : rule->instances) {
      rule_live += instance->ev.LiveNodeCount();
      rule_store += instance->ev.StoreNodeCount();
      rule_steps += instance->ev.steps();
      collections += instance->ev.collections();
      prune_hits += instance->ev.prune_hits();
      subsume_hits += instance->ev.subsume_hits();
      mask_skips += instance->ev.mask_skips();
      subst_hits += instance->ev.subst_cache_hits();
      subst_misses += instance->ev.subst_cache_misses();
    }
    instances += rule->instances.size();
    live += rule_live;
    store += rule_store;
    if (rule->is_system) continue;  // keep generated-rule cardinality out
    const std::string base = StrCat("rule.", rule->name);
    m.gauge(base + ".steps").Set(static_cast<int64_t>(rule_steps));
    m.gauge(base + ".fires").Set(static_cast<int64_t>(rule->fires));
    m.gauge(base + ".retained_nodes").Set(static_cast<int64_t>(rule_live));
    m.gauge(base + ".store_nodes").Set(static_cast<int64_t>(rule_store));
    m.gauge(base + ".boundedness")
        .Set(static_cast<int64_t>(rule->lint.boundedness));
  }
  m.gauge("lint.unbounded_rules").Set(unbounded_rules);
  m.gauge("lint.folded_nodes").Set(folded_nodes);
  {
    // Rule-set analysis certificates (cached; recomputed only after the
    // population changed).
    const analysis::SetReport& rep = AnalyzeRuleSet();
    m.gauge("analysis.edges").Set(static_cast<int64_t>(rep.edges.size()));
    m.gauge("analysis.partitions").Set(static_cast<int64_t>(rep.partitions));
    m.gauge("analysis.commutative_rules")
        .Set(static_cast<int64_t>(rep.commutative_rules));
    m.gauge("analysis.flagged_cycles")
        .Set(static_cast<int64_t>(rep.flagged_cycles));
    m.gauge("analysis.proven_cycles")
        .Set(static_cast<int64_t>(rep.proven_cycles));
  }
  m.gauge("engine.instances").Set(static_cast<int64_t>(instances));
  m.gauge("evaluator.live_nodes").Set(static_cast<int64_t>(live));
  m.gauge("evaluator.store_nodes").Set(static_cast<int64_t>(store));
  m.gauge("evaluator.collections").Set(static_cast<int64_t>(collections));
  m.gauge("evaluator.prune_hits").Set(static_cast<int64_t>(prune_hits));
  m.gauge("evaluator.subsume_hits").Set(static_cast<int64_t>(subsume_hits));
  m.gauge("evaluator.mask_skips").Set(static_cast<int64_t>(mask_skips));
  m.gauge("evaluator.subst_cache_hits").Set(static_cast<int64_t>(subst_hits));
  m.gauge("evaluator.subst_cache_misses")
      .Set(static_cast<int64_t>(subst_misses));
  if (query_history_enabled_ || !query_history_.empty()) {
    size_t intervals = 0, dict = 0;
    uint64_t trimmed = 0, probes = 0;
    for (const auto& [spec, series] : query_history_) {
      intervals += series.num_intervals();
      dict += series.dict_size();
      trimmed += series.intervals_trimmed();
      probes += series.asof_probes();
    }
    m.gauge("aux.query_history.series")
        .Set(static_cast<int64_t>(query_history_.size()));
    m.gauge("aux.query_history.intervals").Set(static_cast<int64_t>(intervals));
    m.gauge("aux.query_history.dict").Set(static_cast<int64_t>(dict));
    m.gauge("aux.query_history.trimmed").Set(static_cast<int64_t>(trimmed));
    m.gauge("aux.query_history.asof_probes").Set(static_cast<int64_t>(probes));
    m.gauge("aux.query_history.bytes")
        .Set(static_cast<int64_t>(QueryHistoryBytes()));
  }
}

// ---- Firing-provenance tracing ----------------------------------------------

json::Json RuleEngine::MakeUpdateRecord(const Rule& rule,
                                        const Instance& instance,
                                        const ptl::StateSnapshot& snapshot,
                                        uint64_t step_no, bool satisfied,
                                        bool was_satisfied, bool fired) {
  json::Json rec = json::Json::Object();
  rec.Set("kind", json::Json::Str("update"));
  rec.Set("rule", json::Json::Str(rule.name));
  if (!instance.params_key.empty()) {
    rec.Set("params", json::Json::Str(instance.params_key));
  }
  // The grounded condition re-parses and re-analyzes to the same query-slot
  // order, which is what lets TraceReplay line the recorded values back up.
  rec.Set("condition",
          json::Json::Str(instance.ev.analysis().root->ToString()));
  rec.Set("step", json::Json::UInt(step_no));
  rec.Set("seq", json::Json::Int(static_cast<int64_t>(snapshot.seq)));
  rec.Set("time", json::Json::Int(snapshot.time));
  rec.Set("events", EncodeSnapshotEvents(snapshot));
  rec.Set("query_values", EncodeSnapshotQueryValues(snapshot));
  rec.Set("satisfied", json::Json::Bool(satisfied));
  rec.Set("was_satisfied", json::Json::Bool(was_satisfied));
  rec.Set("fired", json::Json::Bool(fired));
  return rec;
}

void RuleEngine::EmitRecurrenceSpans(const eval::IncrementalEvaluator& ev) {
  for (const auto& flip : ev.last_step_trace().flips) {
    trace::Span span;
    span.kind = trace::SpanKind::kRecurrence;
    span.instant = true;
    span.start_ns = trace::Recorder::NowNs();
    span.seq = flip.seq;
    span.name = flip.subformula;
    span.detail = StrCat(flip.op, " -> ", flip.transition);
    trace_->RecordSpan(std::move(span));
  }
}

void RuleEngine::CaptureWitness(
    Rule* rule, const Instance& instance, const ptl::StateSnapshot& snapshot,
    std::vector<eval::IncrementalEvaluator::WitnessLink> chain) {
  Witness w;
  w.rule = rule->name;
  w.params = instance.params_key;
  w.condition = instance.ev.analysis().root->ToString();
  w.seq = static_cast<int64_t>(snapshot.seq);
  w.time = snapshot.time;
  w.chain = std::move(chain);
  rule->last_witness = std::move(w);
}

Result<std::string> RuleEngine::Why(const std::string& name) const {
  auto it = rule_index_.find(name);
  if (it == rule_index_.end()) {
    return Status::NotFound(StrCat("no rule named '", name, "'"));
  }
  const Rule& rule = *rules_[it->second];
  if (rule.fires == 0) {
    return Status::NotFound(
        StrCat("rule '", name, "' has never fired",
               rule.is_ic ? " (no commit has violated it)" : ""));
  }
  if (!rule.last_witness.has_value()) {
    return StrCat("rule '", name, "' has fired ", rule.fires,
                  " time(s), but no witness was captured — enable tracing "
                  "before the next firing to record one");
  }
  return WitnessSummary(*rule.last_witness);
}

// ---- Registration -----------------------------------------------------------

Status RuleEngine::AddTrigger(const std::string& name,
                              std::string_view condition, ActionFn action,
                              RuleOptions options) {
  PTLDB_ASSIGN_OR_RETURN(ptl::FormulaPtr f, ptl::ParseFormula(condition));
  return AddRuleInternal(name, std::move(f), std::move(action), options,
                         /*is_ic=*/false, /*is_family=*/false, "", {},
                         std::string(condition));
}

Status RuleEngine::AddTriggerFormula(const std::string& name,
                                     ptl::FormulaPtr condition, ActionFn action,
                                     RuleOptions options) {
  return AddRuleInternal(name, std::move(condition), std::move(action), options,
                         /*is_ic=*/false, /*is_family=*/false, "", {});
}

Status RuleEngine::AddIntegrityConstraint(const std::string& name,
                                          std::string_view constraint) {
  PTLDB_ASSIGN_OR_RETURN(ptl::FormulaPtr c, ptl::ParseFormula(constraint));
  // The negation wrapper is synthesized (no span); inner spans still point
  // into the constraint text, so diagnostics render against it.
  return AddRuleInternal(name, ptl::Not(std::move(c)), nullptr, RuleOptions{},
                         /*is_ic=*/true, /*is_family=*/false, "", {},
                         std::string(constraint));
}

Status RuleEngine::AddIntegrityConstraintFormula(const std::string& name,
                                                 ptl::FormulaPtr constraint) {
  // The rule's condition is the *negation* of the constraint; its action is
  // abort(X), realized by the commit-attempt veto.
  return AddRuleInternal(name, ptl::Not(std::move(constraint)), nullptr,
                         RuleOptions{}, /*is_ic=*/true, /*is_family=*/false,
                         "", {});
}

Status RuleEngine::AddTriggerFamily(const std::string& name,
                                    std::string_view domain_sql,
                                    std::vector<std::string> param_names,
                                    std::string_view condition, ActionFn action,
                                    RuleOptions options) {
  if (param_names.empty()) {
    return Status::InvalidArgument("rule family needs at least one parameter");
  }
  PTLDB_ASSIGN_OR_RETURN(ptl::FormulaPtr f, ptl::ParseFormula(condition));
  return AddRuleInternal(name, std::move(f), std::move(action), options,
                         /*is_ic=*/false, /*is_family=*/true, domain_sql,
                         std::move(param_names), std::string(condition));
}

Status RuleEngine::AddTriggerFamilyFormula(const std::string& name,
                                           std::string_view domain_sql,
                                           std::vector<std::string> param_names,
                                           ptl::FormulaPtr condition,
                                           ActionFn action,
                                           RuleOptions options) {
  if (param_names.empty()) {
    return Status::InvalidArgument("rule family needs at least one parameter");
  }
  return AddRuleInternal(name, std::move(condition), std::move(action), options,
                         /*is_ic=*/false, /*is_family=*/true, domain_sql,
                         std::move(param_names));
}

Status RuleEngine::AddRuleInternal(std::string name, ptl::FormulaPtr condition,
                                   ActionFn action, RuleOptions options,
                                   bool is_ic, bool is_family,
                                   std::string_view domain_sql,
                                   std::vector<std::string> param_names,
                                   std::string source) {
  if (dispatch_depth_ > 0) {
    return Status::InvalidArgument(
        "rules cannot be added from within rule actions");
  }
  if (rule_index_.count(name) > 0) {
    return Status::AlreadyExists(StrCat("rule '", name, "' already exists"));
  }
  // Any mutation attempt invalidates the cached rule-set analysis, even on
  // failure paths (the aggregate rewrite may have registered system rules
  // before a later step failed).
  set_report_dirty_ = true;

  // Static analysis runs before the aggregate rewrite, so strict rejection
  // leaves no generated system rules or auxiliary tables behind, and folding
  // shrinks what both the rewriter and the evaluator see.
  ptl::LintOptions lint_opts;
  lint_opts.fold = lint_folding_;
  ptl::LintReport lint = ptl::LintFormula(condition, lint_opts);
  if (strict_registration_ &&
      (lint.has_errors() ||
       lint.boundedness == ptl::Boundedness::kUnbounded)) {
    std::string rendered = lint.Render(source);
    return Status::InvalidArgument(
        StrCat("rule '", name, "' rejected by strict registration "
               "(retained state: ",
               ptl::BoundednessToString(lint.boundedness), ")",
               rendered.empty() ? "" : "\n", rendered));
  }
  if (lint_folding_ && lint.folded != nullptr) condition = lint.folded;

  if (options.aggregate_mode == AggregateMode::kRewrite) {
    if (is_family) {
      return Status::NotImplemented(
          "aggregate rewriting for rule families is not supported; use "
          "AggregateMode::kDirect (indexed aggregate items are evaluated "
          "per instance there)");
    }
    PTLDB_ASSIGN_OR_RETURN(agg::RewriteResult rewrite,
                           agg::RewriteAggregates(condition, name));
    PTLDB_RETURN_IF_ERROR(MaterializeRewrite(name, rewrite));
    condition = rewrite.condition;
  }

  auto rule = std::make_unique<Rule>();
  rule->name = name;
  rule->condition = std::move(condition);
  rule->action = std::move(action);
  rule->options = options;
  rule->source = std::move(source);
  rule->lint = std::move(lint);
  rule->is_ic = is_ic;
  rule->is_family = is_family;
  rule->param_names = std::move(param_names);
  rule->registration_order = next_registration_order_++;
  CollectConditionMeta(rule->condition, &rule->event_names,
                       &rule->uses_lasttime);
  if (rule->options.event_filtered && rule->uses_lasttime) {
    return Status::InvalidArgument(
        StrCat("rule '", name,
               "': event_filtered cannot be combined with Lasttime (the "
               "filter would shift its frame of reference)"));
  }
  if (is_family) {
    PTLDB_ASSIGN_OR_RETURN(rule->domain, db::ParseSql(domain_sql));
  } else {
    // Plain rules and ICs have a single parameterless instance; build it now
    // so malformed conditions are rejected at registration.
    PTLDB_ASSIGN_OR_RETURN(Instance * unused, MakeInstance(rule.get(), {}));
    (void)unused;
  }
  rule_index_.emplace(rule->name, rules_.size());
  rules_.push_back(std::move(rule));
  RebuildEventIndex();

  // Strict registration, rule-set tier: reject a rule whose addition closes
  // a triggering cycle the termination analysis cannot prove finite. The
  // rule (and any system rules its rewrite generated) is rolled back so
  // strict mode never leaves a flagged population behind.
  if (strict_registration_) {
    const analysis::SetReport& report = AnalyzeRuleSet();
    const analysis::RuleReport* rr = report.Find(name);
    if (rr != nullptr && rr->in_flagged_cycle) {
      std::vector<std::string> rendered;
      for (const ptl::Diagnostic& d : rr->diagnostics) {
        if (d.code == ptl::DiagCode::kRuleCycle) rendered.push_back(d.message);
      }
      PTLDB_CHECK_OK(RemoveRule(name));
      return Status::InvalidArgument(StrCat(
          "rule '", name, "' rejected by strict registration (",
          ptl::DiagCodeName(ptl::DiagCode::kRuleCycle),
          " unproven triggering cycle): ", Join(rendered, "; ")));
    }
  }
  return Status::OK();
}

void RuleEngine::RebuildEventIndex() {
  event_index_.clear();
  for (const auto& rule : rules_) {
    if (rule->is_system || !rule->options.event_filtered ||
        rule->event_names.empty()) {
      continue;
    }
    for (const std::string& name : rule->event_names) {
      event_index_[name].push_back(rule.get());
    }
  }
}

Status RuleEngine::MaterializeRewrite(const std::string& rule_name,
                                      const agg::RewriteResult& rewrite) {
  (void)rule_name;  // the generated names are already namespaced by the rewriter
  for (const agg::AuxItem& item : rewrite.items) {
    PTLDB_RETURN_IF_ERROR(database_->CreateTable(item.name, AggItemSchema()));
    PTLDB_ASSIGN_OR_RETURN(db::Table * table,
                           database_->catalog().GetTable(item.name));
    PTLDB_RETURN_IF_ERROR(table->Insert(InitialAggRow()));
    // The computed query derives the aggregate's current value from the row.
    ptl::TemporalAggFn fn = item.fn;
    std::string table_name = item.name;
    db::Database* db = database_;
    PTLDB_RETURN_IF_ERROR(registry_.RegisterComputed(
        item.name,
        [db, table_name, fn](const std::vector<Value>& args) -> Result<Value> {
          if (!args.empty()) {
            return Status::InvalidArgument("aggregate item takes no arguments");
          }
          PTLDB_ASSIGN_OR_RETURN(const db::Table* t,
                                 static_cast<const db::Database*>(db)
                                     ->catalog()
                                     .GetTable(table_name));
          const db::Tuple& row = t->rows()[0];
          const Value& sum = row[1];
          const Value& cnt = row[2];
          switch (fn) {
            case ptl::TemporalAggFn::kSum:
              return sum;
            case ptl::TemporalAggFn::kCount:
              return cnt;
            case ptl::TemporalAggFn::kAvg:
              if (cnt.AsInt() == 0) return Value::Null();
              return Value::Real(sum.AsDouble() /
                                 static_cast<double>(cnt.AsInt()));
            case ptl::TemporalAggFn::kMin:
              return row[3];
            case ptl::TemporalAggFn::kMax:
              return row[4];
          }
          return Status::Internal("unknown aggregate fn");
        }));
  }
  for (const agg::SystemRule& sys : rewrite.system_rules) {
    auto rule = std::make_unique<Rule>();
    rule->name = sys.name;
    rule->condition = sys.condition;
    // Classify (but never fold or reject) generated conditions so the
    // boundedness gauges account for them too.
    ptl::LintOptions lint_opts;
    lint_opts.fold = false;
    rule->lint = ptl::LintFormula(rule->condition, lint_opts);
    rule->is_system = true;
    rule->sys_op = sys.op;
    rule->sys_item = sys.item;
    rule->sys_source = sys.source;
    rule->registration_order = next_registration_order_++;
    PTLDB_ASSIGN_OR_RETURN(Instance * unused, MakeInstance(rule.get(), {}));
    (void)unused;
    rule_index_.emplace(rule->name, rules_.size());
    rules_.push_back(std::move(rule));
  }
  return Status::OK();
}

Result<RuleEngine::Instance*> RuleEngine::MakeInstance(
    Rule* rule, std::map<std::string, Value> params) {
  ptl::FormulaPtr grounded = ptl::SubstituteParams(rule->condition, params);
  PTLDB_ASSIGN_OR_RETURN(ptl::Analysis analysis, ptl::Analyze(grounded));
  // Make sure every query the condition mentions is resolvable now.
  for (const ptl::QuerySpec& spec : analysis.slots) {
    if (!registry_.Has(spec.name)) {
      return Status::NotFound(
          StrCat("rule '", rule->name, "': no query registered for function "
                 "symbol '", spec.name, "'"));
    }
  }
  PTLDB_ASSIGN_OR_RETURN(eval::IncrementalEvaluator ev,
                         eval::IncrementalEvaluator::Make(std::move(analysis)));
  std::string key = ParamsKey(params);
  auto instance = std::make_unique<Instance>(std::move(params), key,
                                             std::move(ev));
  Instance* ptr = instance.get();
  rule->instance_index.emplace(ptr->params_key, rule->instances.size());
  rule->instances.push_back(std::move(instance));
  ++stats_.instances_created;
  MetricAdd(ins_.instances_created);
  return ptr;
}

Status RuleEngine::RemoveRule(const std::string& name) {
  if (dispatch_depth_ > 0) {
    return Status::InvalidArgument(
        "rules cannot be removed from within rule actions");
  }
  // Deferred steps hold instance pointers; evaluate them before removal.
  PTLDB_RETURN_IF_ERROR(Flush());
  set_report_dirty_ = true;
  auto it = rule_index_.find(name);
  if (it == rule_index_.end()) {
    return Status::NotFound(StrCat("no rule named '", name, "'"));
  }
  rules_.erase(rules_.begin() + static_cast<ptrdiff_t>(it->second));
  // Also drop system rules generated for this rule's aggregates (their names
  // are namespaced "__agg_<rule>_..."). Their auxiliary tables stay behind as
  // inert single-row tables.
  std::string prefix = StrCat("__agg_", name, "_");
  rules_.erase(std::remove_if(rules_.begin(), rules_.end(),
                              [&prefix](const std::unique_ptr<Rule>& r) {
                                return StartsWith(r->name, prefix);
                              }),
               rules_.end());
  rule_index_.clear();
  for (size_t i = 0; i < rules_.size(); ++i) {
    rule_index_.emplace(rules_[i]->name, i);
  }
  RebuildEventIndex();
  return Status::OK();
}

// ---- Whole-rule-set static analysis -----------------------------------------

std::vector<analysis::RuleDecl> RuleEngine::BuildRuleDecls() const {
  std::vector<analysis::RuleDecl> decls;
  decls.reserve(rules_.size());
  for (const auto& rule : rules_) {
    analysis::RuleDecl d;
    d.name = rule->name;
    d.condition = rule->condition;
    d.source = rule->source;
    d.is_ic = rule->is_ic;
    d.is_system = rule->is_system;
    d.level_triggered = rule->options.level_triggered;
    d.priority = rule->options.priority;
    d.boundedness = rule->lint.boundedness;
    // Execution is only recorded for actions that actually run.
    d.record_execution = !rule->is_ic && !rule->is_system &&
                         rule->action != nullptr &&
                         rule->options.record_execution;
    if (rule->is_system) {
      // Generated reset/accumulate rules write exactly their aggregate item.
      d.effects.writes.insert(rule->sys_item);
      d.effects_declared = true;
    } else if (rule->options.effects.has_value()) {
      d.effects = *rule->options.effects;
      d.effects_declared = true;
    } else if (rule->action == nullptr) {
      // No action at all (ICs, observe-only triggers): provably effect-free.
      d.effects_declared = true;
    }
    decls.push_back(std::move(d));
  }
  return decls;
}

const analysis::SetReport& RuleEngine::AnalyzeRuleSet() const {
  if (set_report_dirty_ || !set_report_.has_value()) {
    analysis::AnalyzeOptions opts;
    opts.tables_of = [this](const std::string& query) {
      return registry_.ScannedTables(query);
    };
    set_report_ = analysis::AnalyzeRuleSet(BuildRuleDecls(), opts);
    set_report_dirty_ = false;
  }
  return *set_report_;
}

std::vector<std::pair<std::string, std::string>> RuleEngine::TakeCascades() {
  std::vector<std::pair<std::string, std::string>> out;
  out.swap(cascades_);
  return out;
}

void RuleEngine::AttributeStateToAction(const event::SystemState& state) {
  analysis::EffectSet& observed = action_frames_.back().observed;
  for (const event::Event& e : state.events) {
    if (e.name == event::kInsertEvent || e.name == event::kDeleteEvent ||
        e.name == event::kUpdateEvent) {
      if (!e.params.empty() && e.params[0].is_string()) {
        const std::string table = e.params[0].AsString();
        // The __executed append is the engine's own (derived) effect.
        if (table != kExecutedTable) observed.writes.insert(table);
      }
    } else if (e.name == event::kRuleExecutedEvent ||
               e.name == event::kBeginEvent ||
               e.name == event::kAttemptsToCommitEvent ||
               e.name == event::kCommitEvent || e.name == event::kAbortEvent) {
      // Derived (@executed) or transaction control — not action effects.
    } else {
      observed.raises.insert(e.name);
    }
  }
}

std::vector<Firing> RuleEngine::TakeFirings() {
  std::vector<Firing> out;
  out.swap(firings_);
  return out;
}

std::vector<Status> RuleEngine::TakeErrors() {
  std::vector<Status> out;
  out.swap(errors_);
  return out;
}

std::vector<std::string> RuleEngine::RuleNames() const {
  std::vector<std::string> names;
  names.reserve(rules_.size());
  for (const auto& rule : rules_) names.push_back(rule->name);
  return names;
}

void RuleEngine::ReportError(Status status) {
  MetricAdd(ins_.errors);
  errors_.push_back(std::move(status));
}

// ---- Evaluation -------------------------------------------------------------

Status RuleEngine::RefreshFamily(Rule* rule) {
  PTLDB_ASSIGN_OR_RETURN(db::Relation domain, database_->Query(rule->domain));
  ++stats_.queries_evaluated;
  MetricAdd(ins_.query_evals);
  if (domain.schema().num_columns() < rule->param_names.size()) {
    return Status::InvalidArgument(
        StrCat("rule '", rule->name, "': domain query returns ",
               domain.schema().num_columns(), " column(s) but the family has ",
               rule->param_names.size(), " parameter(s)"));
  }
  for (const db::Tuple& row : domain.rows()) {
    std::map<std::string, Value> params;
    for (size_t i = 0; i < rule->param_names.size(); ++i) {
      params.emplace(rule->param_names[i], row[i]);
    }
    std::string key = ParamsKey(params);
    if (rule->instance_index.count(key) > 0) continue;
    PTLDB_ASSIGN_OR_RETURN(Instance * unused,
                           MakeInstance(rule, std::move(params)));
    (void)unused;
  }
  return Status::OK();
}

namespace {
size_t SlotFingerprint(const std::vector<ptl::QuerySpec>& slots) {
  size_t seed = slots.size();
  ptl::QuerySpecHash h;
  for (const ptl::QuerySpec& s : slots) seed = HashCombine(seed, h(s));
  return seed;
}
}  // namespace

Result<ptl::StateSnapshot> RuleEngine::BuildSnapshot(
    const Instance& instance, const event::SystemState& state,
    QueryMemo* memo) {
  ptl::StateSnapshot snapshot;
  snapshot.seq = state.seq;
  snapshot.time = state.time;
  snapshot.events = state.events;
  const ptl::Analysis& analysis = instance.ev.analysis();
  // Layout tier: another instance in this pass with an identical slot vector
  // already computed the whole query_values vector — reuse it outright.
  size_t fingerprint = 0;
  std::vector<QueryMemo::Layout>* bucket = nullptr;
  if (memo != nullptr && !analysis.slots.empty()) {
    fingerprint = SlotFingerprint(analysis.slots);
    bucket = &memo->layouts[fingerprint];
    for (const QueryMemo::Layout& layout : *bucket) {
      if (*layout.slots == analysis.slots) {
        ++stats_.snapshot_layout_hits;
        MetricAdd(ins_.snapshot_layout_hits);
        // A layout hit answers every slot from the memo at once.
        stats_.query_memo_hits += analysis.slots.size();
        MetricAdd(ins_.query_memo_hits, analysis.slots.size());
        snapshot.query_values = layout.query_values;
        return snapshot;
      }
    }
  }
  snapshot.query_values.reserve(analysis.slots.size());
  for (const ptl::QuerySpec& spec : analysis.slots) {
    if (memo != nullptr) {
      auto it = memo->values.find(spec);
      if (it != memo->values.end()) {
        ++stats_.query_memo_hits;
        MetricAdd(ins_.query_memo_hits);
        snapshot.query_values.push_back(it->second);
        continue;
      }
    }
    PTLDB_ASSIGN_OR_RETURN(Value v, registry_.Eval(spec));
    ++stats_.queries_evaluated;
    MetricAdd(ins_.query_evals);
    if (memo != nullptr) memo->values.emplace(spec, v);
    snapshot.query_values.push_back(std::move(v));
  }
  if (bucket != nullptr) {
    bucket->push_back(
        QueryMemo::Layout{&analysis.slots, snapshot.query_values});
  }
  return snapshot;
}

void RuleEngine::RecordQueryHistory(Timestamp t, const QueryMemo& memo) {
  for (const auto& [spec, value] : memo.values) {
    eval::ScalarSeries& series = query_history_[spec];
    Status s = series.Record(t, value);
    if (!s.ok()) {
      // Out-of-order state times (valid-time retroactive replay) cannot be
      // appended to an interval history; skip rather than poison the pass.
      continue;
    }
    ++stats_.query_history_records;
    MetricAdd(ins_.query_history_records);
  }
  if (query_history_retention_ > 0 && t >= query_history_retention_) {
    const Timestamp horizon = t - query_history_retention_;
    for (auto& [spec, series] : query_history_) series.TrimBefore(horizon);
  }
}

Result<Value> RuleEngine::QueryValueAsOf(const ptl::QuerySpec& spec,
                                         Timestamp t) const {
  auto it = query_history_.find(spec);
  if (it == query_history_.end()) {
    return Status::NotFound(
        StrCat("no recorded history for query ", spec.ToString(),
               query_history_enabled_
                   ? ""
                   : " (query history is disabled; SetQueryHistory(true))"));
  }
  return it->second.AsOf(t);
}

Status RuleEngine::GatherQueryValuesAsOf(const ptl::QuerySpec& spec,
                                         const std::vector<Timestamp>& ts,
                                         std::vector<Value>* out) const {
  auto it = query_history_.find(spec);
  if (it == query_history_.end()) {
    return Status::NotFound(
        StrCat("no recorded history for query ", spec.ToString()));
  }
  return it->second.GatherAsOf(ts, out);
}

std::vector<std::string> RuleEngine::QueryHistoryKeys() const {
  std::vector<std::string> keys;
  keys.reserve(query_history_.size());
  for (const auto& [spec, series] : query_history_) {
    keys.push_back(spec.ToString());
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

size_t RuleEngine::QueryHistoryBytes() const {
  size_t total = 0;
  for (const auto& [spec, series] : query_history_) {
    total += series.EstimateBytes();
  }
  return total;
}

Result<bool> RuleEngine::StepInstance(Rule* rule, Instance* instance,
                                      const event::SystemState& state,
                                      bool allow_collect) {
  (void)rule;
  if (instance->last_seq == state.seq) {
    // Already advanced over this state (hypothetical IC check at commit).
    return instance->ev.last_fired();
  }
  PTLDB_ASSIGN_OR_RETURN(ptl::StateSnapshot snapshot,
                         BuildSnapshot(*instance, state));
  PTLDB_ASSIGN_OR_RETURN(bool fired, instance->ev.Step(snapshot));
  instance->last_seq = state.seq;
  ++stats_.rule_steps;
  MetricAdd(ins_.rule_steps);
  // Collection invalidates checkpoints, so the hypothetical IC path defers it.
  if (allow_collect && instance->ev.MaybeCollect(collect_threshold_)) {
    ++stats_.collections;
    MetricAdd(ins_.collections);
  }
  return fired;
}

Result<RuleEngine::StepTask> RuleEngine::GatherStepTask(
    Rule* rule, Instance* instance, const event::SystemState& state,
    bool allow_collect, QueryMemo* memo) {
  StepTask task;
  task.rule = rule;
  task.instance = instance;
  task.allow_collect = allow_collect;
  if (instance->last_seq == state.seq) {
    // Already advanced over this state (hypothetical IC check at commit);
    // no snapshot needed, the outputs are the evaluator's current verdict.
    task.resolved = true;
    task.fired = instance->ev.last_fired();
    task.was_satisfied = task.fired && instance->ev.steps() > 0;
    // This is the only path a constraint's evaluator routinely takes after
    // its commit-time probe (which defers collection to keep its checkpoint
    // valid), so collect here or the IC's node store grows without bound.
    // Safe: gather runs serially and no checkpoint is outstanding once the
    // probed state has committed.
    if (allow_collect && instance->ev.MaybeCollect(collect_threshold_)) {
      task.collected = true;
    }
    return task;
  }
  PTLDB_ASSIGN_OR_RETURN(task.snapshot, BuildSnapshot(*instance, state, memo));
  return task;
}

void RuleEngine::RunStepTasks(std::vector<StepTask>* tasks) {
  const bool tracing = trace_ != nullptr && trace_->enabled();
  auto run_one = [this, tasks, tracing](size_t i) {
    StepTask& t = (*tasks)[i];
    if (t.resolved) return;
    eval::IncrementalEvaluator& ev = t.instance->ev;
    trace::ScopedSpan step_span(
        trace_, trace::SpanKind::kRuleStep,
        tracing ? StrCat(t.rule->name,
                         t.instance->params_key.empty() ? "" : "[",
                         t.instance->params_key,
                         t.instance->params_key.empty() ? "" : "]")
                : std::string(),
        static_cast<int64_t>(t.snapshot.seq));
    t.was_satisfied = ev.last_fired() && ev.steps() > 0;
    Result<bool> fired = ev.Step(t.snapshot);
    if (!fired.ok()) {
      t.status = fired.status();
      return;
    }
    t.instance->last_seq = t.snapshot.seq;
    t.stepped = true;
    t.fired = *fired;
    if (tracing) EmitRecurrenceSpans(ev);
    if (t.allow_collect &&
        t.instance->ev.MaybeCollect(collect_threshold_)) {
      t.collected = true;
    }
  };
  if (pool_ != nullptr && tasks->size() > 1) {
    ++stats_.parallel_dispatches;
    MetricAdd(ins_.parallel_dispatches);
    pool_->ParallelFor(tasks->size(), run_one);
  } else {
    for (size_t i = 0; i < tasks->size(); ++i) run_one(i);
  }
}

Status RuleEngine::SetThreads(size_t n) {
  if (dispatch_depth_ > 0) {
    return Status::InvalidArgument(
        "thread count cannot be changed from within rule actions");
  }
  if (n == 0) n = 1;
  if (n == num_threads_) return Status::OK();
  num_threads_ = n;
  pool_ = n > 1 ? std::make_unique<ThreadPool>(n) : nullptr;
  return Status::OK();
}

Status RuleEngine::ApplySystemOp(const Rule& rule) {
  PTLDB_ASSIGN_OR_RETURN(db::Table * table,
                         database_->catalog().GetTable(rule.sys_item));
  db::Tuple row = table->rows()[0];
  if (rule.sys_op == agg::SystemRule::Op::kReset) {
    db::Tuple fresh = InitialAggRow();
    fresh[0] = Value::Bool(true);  // started
    PTLDB_RETURN_IF_ERROR(table->ReplaceOne(row, fresh));
    return Status::OK();
  }
  // Accumulate: only once started (samples before the first start point do
  // not count — the direct machines behave identically).
  if (!row[0].AsBool()) return Status::OK();
  PTLDB_ASSIGN_OR_RETURN(Value v, registry_.Eval(rule.sys_source));
  db::Tuple next = row;
  if (v.is_numeric()) {
    PTLDB_ASSIGN_OR_RETURN(next[1], Value::Add(row[1], v));
  }
  PTLDB_ASSIGN_OR_RETURN(next[2], Value::Add(row[2], Value::Int(1)));
  if (!v.is_null()) {
    if (next[3].is_null()) {
      next[3] = v;
    } else {
      PTLDB_ASSIGN_OR_RETURN(int c, Value::Compare(v, next[3]));
      if (c < 0) next[3] = v;
    }
    if (next[4].is_null()) {
      next[4] = v;
    } else {
      PTLDB_ASSIGN_OR_RETURN(int c, Value::Compare(v, next[4]));
      if (c > 0) next[4] = v;
    }
  }
  return table->ReplaceOne(row, next);
}

Status RuleEngine::RecordExecution(const Rule& rule, const Instance& instance,
                                   Timestamp time) {
  PTLDB_ASSIGN_OR_RETURN(db::Table * table,
                         database_->catalog().GetTable(kExecutedTable));
  PTLDB_RETURN_IF_ERROR(table->Insert(
      {Value::Str(rule.name), Value::Str(instance.params_key),
       Value::Time(time)}));
  if (database_->wal_sink() != nullptr) {
    // The insert bypasses the transaction path, so its redo delta is buffered
    // by hand; it rides with the @executed state's WAL record.
    database_->wal_sink()->BufferDelta(db::RedoDelta{
        db::RedoDelta::Kind::kInsert, kExecutedTable,
        {Value::Str(rule.name), Value::Str(instance.params_key),
         Value::Time(time)},
        {}});
  }
  firings_.push_back(Firing{rule.name, instance.params_key, time});
  // Announce: `@executed(rule)` drives §7 composite/temporal actions. The
  // event appends a new system state, which recursively dispatches rules.
  return database_->RaiseEvent(
      event::Event{event::kRuleExecutedEvent,
                   {Value::Str(rule.name), Value::Time(time)}});
}

void RuleEngine::ProcessState(const event::SystemState& state) {
  if (dispatch_depth_ >= kMaxDispatchDepth) {
    ReportError(Status::Internal(
        StrCat("rule dispatch depth exceeded ", kMaxDispatchDepth,
               " at state #", state.seq,
               " — a rule's action is probably retriggering itself")));
    return;
  }
  ++dispatch_depth_;
  ++stats_.states_processed;
  MetricAdd(ins_.states_processed);
  // Effect recorder: a state appended while an action is on the dispatch
  // stack is that action's doing — charge its row events and raised events
  // to the innermost frame for validation against the declaration.
  if (validate_effects_ && !action_frames_.empty()) {
    AttributeStateToAction(state);
  }
  const bool tracing = trace_ != nullptr && trace_->enabled();
  trace::ScopedSpan update_span(
      trace_, trace::SpanKind::kUpdate,
      tracing ? StrCat("state#", state.seq) : std::string(),
      static_cast<int64_t>(state.seq));

  // Phase 1: system rules (aggregate reset/accumulate), in registration
  // order, actions applied inline so user conditions at this state already
  // observe the updated items.
  for (const auto& rule : rules_) {
    if (!rule->is_system) continue;
    auto fired = StepInstance(rule.get(), rule->instances[0].get(), state);
    if (!fired.ok()) {
      ReportError(fired.status());
      continue;
    }
    if (*fired) {
      Status s = ApplySystemOp(*rule);
      if (!s.ok()) ReportError(std::move(s));
    }
  }

  // Phase 2: user rules — evaluate all conditions first, collecting fired
  // actions, so one rule's action cannot affect a sibling's view of this
  // state. The §8 relevance index picks the rules to step: unfiltered rules
  // always, filtered rules only when one of their events is present.
  std::set<Rule*> relevant;
  for (const event::Event& e : state.events) {
    auto it = event_index_.find(e.name);
    if (it == event_index_.end()) continue;
    for (Rule* r : it->second) relevant.insert(r);
  }
  const bool batching = batch_size_ > 1;
  // Gather (serial): snapshots are captured single-threaded so conditions
  // observe the database exactly as in the serial engine, and tasks line up
  // in canonical (registration order, instance-creation order). Ground query
  // values are memoized across instances — the database cannot change within
  // the gather pass (phase 1's aggregate mutations already happened).
  QueryMemo memo;
  std::vector<StepTask> tasks;
  {
    ScopedTimer gather_timer(ins_.gather_ns);
    trace::ScopedSpan gather_span(trace_, trace::SpanKind::kGather, "gather",
                                  static_cast<int64_t>(state.seq));
  for (const auto& rule : rules_) {
    if (rule->is_system) continue;
    if (rule->options.event_filtered && !rule->event_names.empty() &&
        relevant.count(rule.get()) == 0) {
      stats_.steps_skipped_by_filter += rule->instances.size();
      MetricAdd(ins_.steps_skipped_by_filter, rule->instances.size());
      continue;
    }
    if (rule->is_family) {
      Status s = RefreshFamily(rule.get());
      if (!s.ok()) {
        ReportError(std::move(s));
        continue;
      }
    }
    for (const auto& instance : rule->instances) {
      instance->ev.set_tracing(tracing);
      if (batching && !rule->is_ic) {
        // §8 batched invocation: capture the snapshot now (conditions must
        // observe this state's query values), defer stepping to Flush().
        auto snapshot = BuildSnapshot(*instance, state, &memo);
        if (!snapshot.ok()) {
          ReportError(snapshot.status());
          continue;
        }
        batch_queue_.push_back(
            QueuedStep{rule.get(), instance.get(), std::move(*snapshot)});
        continue;
      }
      auto task = GatherStepTask(rule.get(), instance.get(), state,
                                 /*allow_collect=*/true, &memo);
      if (!task.ok()) {
        ReportError(task.status());
        continue;
      }
      tasks.push_back(std::move(*task));
    }
  }
  }  // gather_timer

  // §5 aux relations: persist every ground query value this pass observed.
  // Runs only for real states — hypothetical IC probes (OnCommitAttempt)
  // never record, so a vetoed commit leaves no trace in the history.
  if (query_history_enabled_) RecordQueryHistory(state.time, memo);

  // Step (sharded): pure evaluator work, fanned out when a pool is set.
  {
    ScopedTimer step_timer(ins_.step_ns);
    trace::ScopedSpan step_span(trace_, trace::SpanKind::kStep, "step",
                                static_cast<int64_t>(state.seq));
    RunStepTasks(&tasks);
  }

  // Merge (serial, canonical order): identical decisions and error reporting
  // regardless of thread count.
  std::vector<PendingAction> pending;
  {
    ScopedTimer merge_timer(ins_.merge_ns);
    trace::ScopedSpan merge_span(trace_, trace::SpanKind::kMerge, "merge",
                                 static_cast<int64_t>(state.seq));
  for (StepTask& task : tasks) {
    if (task.stepped) {
      ++stats_.rule_steps;
      MetricAdd(ins_.rule_steps);
    }
    if (task.collected) {
      ++stats_.collections;
      MetricAdd(ins_.collections);
    }
    if (!task.status.ok()) {
      ReportError(std::move(task.status));
      continue;
    }
    bool run_action = task.fired && (task.rule->options.level_triggered ||
                                     !task.was_satisfied);
    bool acts = run_action && !task.rule->is_ic &&
                task.rule->action != nullptr;
    if (tracing && task.stepped && !task.rule->is_system) {
      // Each instance stepped at most once this pass, so its evaluator still
      // holds this state's step count and witness anchors. System rules are
      // skipped: their generated conditions use internal binder names that
      // do not re-parse, so a replay could never consume them.
      if (acts) {
        CaptureWitness(task.rule, *task.instance, task.snapshot,
                       task.instance->ev.WitnessChain());
      }
      json::Json rec = MakeUpdateRecord(
          *task.rule, *task.instance, task.snapshot,
          task.instance->ev.steps(), task.fired, task.was_satisfied, acts);
      if (acts) {
        rec.Set("witness", WitnessToJson(*task.rule->last_witness));
      }
      trace_->RecordUpdate(std::move(rec));
    }
    if (acts) {
      pending.push_back(
          PendingAction{task.rule, task.instance, state.time});
    }
  }
  }  // merge_timer

  // Phase 3: run actions, ascending (priority, registration order).
  RunPendingActions(std::move(pending));
  if (batching) {
    ++batched_states_;
    if (batched_states_ >= batch_size_) {
      Status s = Flush();
      if (!s.ok()) ReportError(std::move(s));
    }
  }
  --dispatch_depth_;
  // Top-level update complete: safe point for durability work (checkpoints
  // must never capture a half-stepped engine).
  if (dispatch_depth_ == 0 && post_update_hook_ != nullptr) post_update_hook_();
}

void RuleEngine::RunPendingActions(std::vector<PendingAction> pending) {
  std::stable_sort(pending.begin(), pending.end(),
                   [](const PendingAction& a, const PendingAction& b) {
                     if (a.rule->options.priority != b.rule->options.priority) {
                       return a.rule->options.priority < b.rule->options.priority;
                     }
                     return a.rule->registration_order <
                            b.rule->registration_order;
                   });
  for (const PendingAction& pa : pending) {
    if (firing_observer_ != nullptr) {
      // The decision is persisted *before* the action runs, so its database
      // effects land in the WAL after the record recovery compares against.
      firing_observer_->OnFiring(
          Firing{pa.rule->name, pa.instance->params_key, pa.fired_at});
    }
    ++stats_.actions_executed;
    MetricAdd(ins_.actions_executed);
    ++pa.rule->fires;
    if (replay_mode_) {
      // Replay recomputes the firing decision only: the action's database
      // effects arrive as logged states/deltas from the WAL, and external
      // side effects must not repeat across a recovery (exactly-once).
      if (pa.rule->options.record_execution) {
        firings_.push_back(
            Firing{pa.rule->name, pa.instance->params_key, pa.fired_at});
      }
      continue;
    }
    // Cascade ground truth: this action was reached while another rule's
    // action was still running — the static triggering graph must carry the
    // corresponding edge (property-tested against TakeCascades()).
    if (track_cascades_ && !action_frames_.empty()) {
      cascades_.emplace_back(action_frames_.back().rule->name, pa.rule->name);
    }
    const bool recording = validate_effects_ || track_cascades_;
    if (recording) action_frames_.push_back(ActionFrame{pa.rule, {}});
    ActionContext ctx(database_, pa.rule->name, &pa.instance->params,
                      pa.fired_at);
    Status s;
    {
      ScopedTimer action_timer(ins_.action_ns);
      trace::ScopedSpan action_span(trace_, trace::SpanKind::kAction,
                                    pa.rule->name);
      s = pa.rule->action(ctx);
    }
    if (s.ok() && pa.rule->options.record_execution) {
      Status rec = RecordExecution(*pa.rule, *pa.instance, pa.fired_at);
      if (!rec.ok()) ReportError(std::move(rec));
    }
    if (recording) {
      analysis::EffectSet observed = std::move(action_frames_.back().observed);
      action_frames_.pop_back();
      if (validate_effects_ && s.ok() &&
          pa.rule->options.effects.has_value() &&
          !pa.rule->options.effects->Covers(observed)) {
        internal::CheckFailed(
            __FILE__, __LINE__,
            StrCat("rule '", pa.rule->name,
                   "': action exceeded its declared effects: declared ",
                   pa.rule->options.effects->ToString(), ", observed ",
                   observed.ToString()));
      }
    }
    if (!s.ok()) {
      ReportError(Status(s.code(), StrCat("action of rule '", pa.rule->name,
                                          "' failed: ", s.message())));
    }
  }
}

Status RuleEngine::Flush() {
  if (flushing_) return Status::OK();  // outer drain loop will pick it up
  flushing_ = true;
  const bool tracing = trace_ != nullptr && trace_->enabled();
  trace::ScopedSpan flush_span(trace_, trace::SpanKind::kFlush, "flush");
  while (!batch_queue_.empty()) {
    std::vector<QueuedStep> queue;
    queue.swap(batch_queue_);
    batched_states_ = 0;

    // Group the queue per instance, preserving each instance's state order:
    // one shard replays an instance's whole snapshot sequence, so the same
    // evaluator is never touched by two threads and the steps apply in
    // history order.
    struct StepOut {
      bool stepped = false;
      bool fired = false;
      bool was_satisfied = false;
      bool collected = false;
      Status status = Status::OK();
      // Captured at step time — an instance steps several times per drain,
      // so the evaluator's state at merge time belongs to its *last* step.
      uint64_t step_no = 0;
      std::vector<eval::IncrementalEvaluator::WitnessLink> witness_chain;
    };
    std::vector<StepOut> outs(queue.size());
    std::vector<std::vector<size_t>> groups;  // queue indices per instance
    {
      std::map<Instance*, size_t> group_of;
      for (size_t i = 0; i < queue.size(); ++i) {
        auto [it, inserted] =
            group_of.emplace(queue[i].instance, groups.size());
        if (inserted) groups.emplace_back();
        groups[it->second].push_back(i);
      }
    }
    auto run_group = [this, &queue, &outs, &groups, tracing](size_t g) {
      for (size_t i : groups[g]) {
        QueuedStep& qs = queue[i];
        StepOut& out = outs[i];
        if (qs.instance->last_seq == qs.snapshot.seq) continue;
        eval::IncrementalEvaluator& ev = qs.instance->ev;
        trace::ScopedSpan step_span(
            trace_, trace::SpanKind::kRuleStep,
            tracing ? qs.rule->name : std::string(),
            static_cast<int64_t>(qs.snapshot.seq));
        out.was_satisfied = ev.last_fired() && ev.steps() > 0;
        Result<bool> fired = ev.Step(qs.snapshot);
        if (!fired.ok()) {
          out.status = fired.status();
          continue;
        }
        qs.instance->last_seq = qs.snapshot.seq;
        out.stepped = true;
        out.fired = *fired;
        if (tracing) {
          EmitRecurrenceSpans(ev);
          out.step_no = ev.steps();
          bool run_action = out.fired && (qs.rule->options.level_triggered ||
                                          !out.was_satisfied);
          if (run_action && qs.rule->action != nullptr) {
            out.witness_chain = ev.WitnessChain();
          }
        }
        if (ev.MaybeCollect(collect_threshold_)) {
          out.collected = true;
        }
      }
    };
    if (pool_ != nullptr && groups.size() > 1) {
      ++stats_.parallel_dispatches;
      MetricAdd(ins_.parallel_dispatches);
      pool_->ParallelFor(groups.size(), run_group);
    } else {
      for (size_t g = 0; g < groups.size(); ++g) run_group(g);
    }

    // Merge in queue order (states in append order, rules in registration
    // order within a state) — identical to the serial drain.
    std::vector<PendingAction> pending;
    for (size_t i = 0; i < queue.size(); ++i) {
      QueuedStep& qs = queue[i];
      StepOut& out = outs[i];
      if (out.stepped) {
        ++stats_.rule_steps;
        MetricAdd(ins_.rule_steps);
      }
      if (out.collected) {
        ++stats_.collections;
        MetricAdd(ins_.collections);
      }
      if (!out.status.ok()) {
        ReportError(std::move(out.status));
        continue;
      }
      bool run_action = out.fired && (qs.rule->options.level_triggered ||
                                      !out.was_satisfied);
      bool acts = out.stepped && run_action && qs.rule->action != nullptr;
      if (tracing && out.stepped && !qs.rule->is_system) {
        if (acts) {
          CaptureWitness(qs.rule, *qs.instance, qs.snapshot,
                         std::move(out.witness_chain));
        }
        json::Json rec =
            MakeUpdateRecord(*qs.rule, *qs.instance, qs.snapshot, out.step_no,
                             out.fired, out.was_satisfied, acts);
        if (acts) {
          rec.Set("witness", WitnessToJson(*qs.rule->last_witness));
        }
        trace_->RecordUpdate(std::move(rec));
      }
      if (acts) {
        pending.push_back(
            PendingAction{qs.rule, qs.instance, qs.snapshot.time});
      }
    }
    // Actions may append new states, refilling the queue; the while loop
    // drains them.
    RunPendingActions(std::move(pending));
  }
  flushing_ = false;
  return Status::OK();
}

Result<std::string> RuleEngine::Lint(const std::string& name) const {
  auto it = rule_index_.find(name);
  if (it == rule_index_.end()) {
    return Status::NotFound(StrCat("no rule named '", name, "'"));
  }
  const Rule& rule = *rules_[it->second];
  std::ostringstream out;
  out << "rule " << rule.name << "\n";
  out << "boundedness: " << ptl::BoundednessToString(rule.lint.boundedness)
      << "\n";
  out << "folded nodes: " << rule.lint.folded_nodes << "\n";
  if (rule.lint.diagnostics.empty()) {
    out << "no diagnostics\n";
  } else {
    out << rule.lint.Render(rule.source) << "\n";
  }
  return out.str();
}

Result<RuleEngine::RuleInfo> RuleEngine::Describe(const std::string& name) const {
  auto it = rule_index_.find(name);
  if (it == rule_index_.end()) {
    return Status::NotFound(StrCat("no rule named '", name, "'"));
  }
  const Rule& rule = *rules_[it->second];
  RuleInfo info;
  info.name = rule.name;
  info.condition = rule.condition->ToString();
  info.is_ic = rule.is_ic;
  info.is_system = rule.is_system;
  info.is_family = rule.is_family;
  info.level_triggered = rule.options.level_triggered;
  info.num_instances = rule.instances.size();
  info.event_names.assign(rule.event_names.begin(), rule.event_names.end());
  info.fires = rule.fires;
  info.boundedness = rule.lint.boundedness;
  info.lint_diagnostics = rule.lint.diagnostics.size();
  info.folded_nodes = rule.lint.folded_nodes;
  for (const auto& instance : rule.instances) {
    info.retained_nodes += instance->ev.LiveNodeCount();
    info.store_nodes += instance->ev.StoreNodeCount();
    info.steps += instance->ev.steps();
    info.collections += instance->ev.collections();
  }
  return info;
}

Result<std::string> RuleEngine::Explain(const std::string& name) const {
  auto it = rule_index_.find(name);
  if (it == rule_index_.end()) {
    return Status::NotFound(StrCat("no rule named '", name, "'"));
  }
  const Rule& rule = *rules_[it->second];
  std::ostringstream out;
  out << "rule " << rule.name;
  if (rule.is_ic) out << "  [integrity constraint]";
  if (rule.is_system) out << "  [system]";
  if (rule.is_family) out << "  [family over " << Join(rule.param_names, ", ")
                          << "]";
  out << "\ncondition: " << rule.condition->ToString() << "\n";
  out << "boundedness: " << ptl::BoundednessToString(rule.lint.boundedness)
      << "  lint: " << rule.lint.diagnostics.size() << " diagnostic"
      << (rule.lint.diagnostics.size() == 1 ? "" : "s") << ", "
      << rule.lint.folded_nodes << " nodes folded\n";
  const analysis::SetReport& report = AnalyzeRuleSet();
  const analysis::RuleReport* rr = report.Find(rule.name);
  if (rr != nullptr) {
    out << "effects: "
        << (rr->effects_declared ? rr->effects.ToString() : "undeclared")
        << "\n";
    out << "confluence: partition " << rr->partition;
    if (rr->commutative) {
      out << "  [certified batching-commutative]";
    } else if (!rr->commutative_reason.empty()) {
      out << "  (not commutative: " << rr->commutative_reason << ")";
    }
    out << "\n";
    if (rr->in_flagged_cycle) {
      out << "termination: member of an UNPROVEN triggering cycle (PTL200)\n";
    }
  }
  out << "fires: " << rule.fires
      << "  instances: " << rule.instances.size() << "\n";
  for (const auto& instance : rule.instances) {
    out << "\ninstance";
    if (!instance->params_key.empty()) out << " [" << instance->params_key
                                           << "]";
    out << ": steps=" << instance->ev.steps()
        << " live_nodes=" << instance->ev.LiveNodeCount()
        << " store_nodes=" << instance->ev.StoreNodeCount()
        << " collections=" << instance->ev.collections() << "\n";
    // The retained F_{g,i} formula per temporal subformula, one per line.
    out << instance->ev.DebugString();
  }
  return out.str();
}

// ---- Durability -------------------------------------------------------------

void RuleEngine::NoteReplayedIcVeto(
    const std::vector<std::string>& violated_rules) {
  for (const std::string& name : violated_rules) {
    auto it = rule_index_.find(name);
    if (it != rule_index_.end()) ++rules_[it->second]->fires;
  }
  ++stats_.ic_violations;
  MetricAdd(ins_.ic_violations);
}

Status RuleEngine::SerializeRetainedState(codec::Writer* w) const {
  if (dispatch_depth_ > 0) {
    return Status::InvalidArgument(
        "cannot serialize retained state from within rule dispatch");
  }
  if (!batch_queue_.empty() || flushing_) {
    return Status::InvalidArgument(
        "cannot serialize retained state with batched states pending; call "
        "Flush() first");
  }
  w->U32(static_cast<uint32_t>(rules_.size()));
  for (const auto& rule : rules_) {
    w->Str(rule->name);
    w->Str(rule->condition->ToString());
    w->Bool(rule->is_family);
    w->U64(rule->fires);
    // The registration-time lint report travels with the retained state:
    // the restoring process re-registers the *folded* condition (that is
    // what the dump validates against), so re-linting there would lose the
    // diagnostics and fold accounting of the original registration.
    // Lint/Describe/Explain must not change their answers across a restore.
    w->U8(static_cast<uint8_t>(rule->lint.boundedness));
    w->U64(rule->lint.folded_nodes);
    w->Str(rule->source);
    w->U32(static_cast<uint32_t>(rule->lint.diagnostics.size()));
    for (const ptl::Diagnostic& d : rule->lint.diagnostics) {
      w->U32(static_cast<uint32_t>(d.code));
      w->U8(static_cast<uint8_t>(d.severity));
      w->Str(d.message);
      w->U64(d.span.begin);
      w->U64(d.span.end);
    }
    w->U32(static_cast<uint32_t>(rule->instances.size()));
    for (const auto& instance : rule->instances) {
      w->Str(instance->params_key);
      w->U32(static_cast<uint32_t>(instance->params.size()));
      for (const auto& [pname, pvalue] : instance->params) {
        w->Str(pname);
        w->Val(pvalue);
      }
      instance->ev.SerializeState(w);
    }
  }
  w->U64(stats_.states_processed);
  w->U64(stats_.rule_steps);
  w->U64(stats_.steps_skipped_by_filter);
  w->U64(stats_.queries_evaluated);
  w->U64(stats_.actions_executed);
  w->U64(stats_.ic_checks);
  w->U64(stats_.ic_violations);
  w->U64(stats_.instances_created);
  w->U64(stats_.parallel_dispatches);
  w->U64(stats_.query_memo_hits);
  w->U64(stats_.collections);
  return Status::OK();
}

Status RuleEngine::RestoreRetainedState(codec::Reader* r) {
  if (dispatch_depth_ > 0) {
    return Status::InvalidArgument(
        "cannot restore retained state from within rule dispatch");
  }
  if (!batch_queue_.empty() || flushing_) {
    return Status::InvalidArgument(
        "cannot restore retained state with batched states pending");
  }
  PTLDB_ASSIGN_OR_RETURN(uint32_t num_rules, r->U32());
  for (uint32_t i = 0; i < num_rules; ++i) {
    PTLDB_ASSIGN_OR_RETURN(std::string name, r->Str());
    PTLDB_ASSIGN_OR_RETURN(std::string condition, r->Str());
    PTLDB_ASSIGN_OR_RETURN(bool is_family, r->Bool());
    PTLDB_ASSIGN_OR_RETURN(uint64_t fires, r->U64());
    PTLDB_ASSIGN_OR_RETURN(uint8_t boundedness, r->U8());
    if (boundedness > static_cast<uint8_t>(ptl::Boundedness::kUnbounded)) {
      return Status::ParseError(
          StrCat("rule '", name, "': bad boundedness class in checkpoint"));
    }
    PTLDB_ASSIGN_OR_RETURN(uint64_t folded_nodes, r->U64());
    PTLDB_ASSIGN_OR_RETURN(std::string source, r->Str());
    PTLDB_ASSIGN_OR_RETURN(uint32_t num_diags, r->U32());
    std::vector<ptl::Diagnostic> diagnostics;
    diagnostics.reserve(num_diags);
    for (uint32_t d = 0; d < num_diags; ++d) {
      ptl::Diagnostic diag;
      PTLDB_ASSIGN_OR_RETURN(uint32_t code, r->U32());
      diag.code = static_cast<ptl::DiagCode>(code);
      PTLDB_ASSIGN_OR_RETURN(uint8_t severity, r->U8());
      if (severity > static_cast<uint8_t>(ptl::Severity::kError)) {
        return Status::ParseError(
            StrCat("rule '", name, "': bad diagnostic severity in checkpoint"));
      }
      diag.severity = static_cast<ptl::Severity>(severity);
      PTLDB_ASSIGN_OR_RETURN(diag.message, r->Str());
      PTLDB_ASSIGN_OR_RETURN(diag.span.begin, r->U64());
      PTLDB_ASSIGN_OR_RETURN(diag.span.end, r->U64());
      diagnostics.push_back(std::move(diag));
    }
    PTLDB_ASSIGN_OR_RETURN(uint32_t num_instances, r->U32());
    auto it = rule_index_.find(name);
    if (it == rule_index_.end()) {
      return Status::NotFound(
          StrCat("checkpoint holds retained state for rule '", name,
                 "', which is not registered — re-register every rule before "
                 "restoring"));
    }
    Rule* rule = rules_[it->second].get();
    if (rule->is_family != is_family) {
      return Status::InvalidArgument(
          StrCat("rule '", name,
                 "': family/plain shape differs from the checkpoint"));
    }
    if (rule->condition->ToString() != condition) {
      return Status::InvalidArgument(
          StrCat("rule '", name, "': registered condition `",
                 rule->condition->ToString(),
                 "` differs from the checkpointed condition `", condition,
                 "`"));
    }
    rule->fires = fires;
    // Reinstate the original registration's lint verdict and source text
    // (the folded condition registered here lints clean — see the
    // serialization comment). `lint.folded` stays as registered: it is the
    // live condition, not a report artifact.
    rule->lint.boundedness = static_cast<ptl::Boundedness>(boundedness);
    rule->lint.folded_nodes = folded_nodes;
    rule->lint.diagnostics = std::move(diagnostics);
    rule->source = std::move(source);
    for (uint32_t j = 0; j < num_instances; ++j) {
      PTLDB_ASSIGN_OR_RETURN(std::string params_key, r->Str());
      PTLDB_ASSIGN_OR_RETURN(uint32_t num_params, r->U32());
      std::map<std::string, Value> params;
      for (uint32_t k = 0; k < num_params; ++k) {
        PTLDB_ASSIGN_OR_RETURN(std::string pname, r->Str());
        PTLDB_ASSIGN_OR_RETURN(Value pvalue, r->Val());
        params.emplace(std::move(pname), std::move(pvalue));
      }
      Instance* instance = nullptr;
      auto iit = rule->instance_index.find(params_key);
      if (iit != rule->instance_index.end()) {
        instance = rule->instances[iit->second].get();
      } else if (rule->is_family) {
        // Family instances are created lazily; materialize the checkpointed
        // one now so its retained history survives the restart.
        PTLDB_ASSIGN_OR_RETURN(instance, MakeInstance(rule, std::move(params)));
      } else {
        return Status::InvalidArgument(
            StrCat("rule '", name, "': checkpoint instance '", params_key,
                   "' does not exist and the rule is not a family"));
      }
      PTLDB_RETURN_IF_ERROR(instance->ev.RestoreState(r));
      instance->last_seq = SIZE_MAX;
    }
  }
  PTLDB_ASSIGN_OR_RETURN(stats_.states_processed, r->U64());
  PTLDB_ASSIGN_OR_RETURN(stats_.rule_steps, r->U64());
  PTLDB_ASSIGN_OR_RETURN(stats_.steps_skipped_by_filter, r->U64());
  PTLDB_ASSIGN_OR_RETURN(stats_.queries_evaluated, r->U64());
  PTLDB_ASSIGN_OR_RETURN(stats_.actions_executed, r->U64());
  PTLDB_ASSIGN_OR_RETURN(stats_.ic_checks, r->U64());
  PTLDB_ASSIGN_OR_RETURN(stats_.ic_violations, r->U64());
  PTLDB_ASSIGN_OR_RETURN(stats_.instances_created, r->U64());
  PTLDB_ASSIGN_OR_RETURN(stats_.parallel_dispatches, r->U64());
  PTLDB_ASSIGN_OR_RETURN(stats_.query_memo_hits, r->U64());
  PTLDB_ASSIGN_OR_RETURN(stats_.collections, r->U64());
  return Status::OK();
}

void RuleEngine::OnStateAppended(const event::SystemState& state) {
  ProcessState(state);
}

Status RuleEngine::OnCommitAttempt(const event::SystemState& prospective,
                                   int64_t txn) {
  // Probe every integrity constraint against the prospective commit state.
  // The database already reflects the transaction; on violation we restore
  // the evaluators and veto (the paper's abort(X) action).
  struct Probe {
    Rule* rule;
    Instance* instance;
    eval::IncrementalEvaluator::Checkpoint checkpoint;
  };
  std::vector<Probe> probes;
  std::vector<std::string> violated;
  Status failure = Status::OK();
  const bool tracing = trace_ != nullptr && trace_->enabled();
  trace::ScopedSpan probe_span(trace_, trace::SpanKind::kIcProbe,
                               tracing ? StrCat("txn#", txn) : std::string(),
                               static_cast<int64_t>(prospective.seq));

  // Gather (serial): checkpoint every constraint's evaluator and capture its
  // snapshot of the prospective commit state. Query values are memoized
  // across constraints — they all probe the same prospective database.
  QueryMemo memo;
  std::vector<StepTask> tasks;
  for (const auto& rule : rules_) {
    if (!rule->is_ic) continue;
    Instance* instance = rule->instances[0].get();
    instance->ev.set_tracing(tracing);
    probes.push_back(Probe{rule.get(), instance, instance->ev.Save()});
    // Collection would invalidate the checkpoints just saved, so the
    // hypothetical probe defers it.
    auto task = GatherStepTask(rule.get(), instance, prospective,
                               /*allow_collect=*/false, &memo);
    if (!task.ok()) {
      ++stats_.ic_checks;
      MetricAdd(ins_.ic_checks);
      failure = task.status();
      break;
    }
    tasks.push_back(std::move(*task));
  }

  // Probe (sharded): constraints step independently — each evaluator owns
  // its graph and its saved checkpoint references only that graph.
  if (failure.ok()) RunStepTasks(&tasks);

  // Merge (serial, registration order): the violated list, the firing
  // verdicts, and the first reported failure come out identical to the
  // serial engine.
  std::vector<json::Json> probe_records;  // held until the verdict is known
  for (StepTask& task : tasks) {
    ++stats_.ic_checks;
    MetricAdd(ins_.ic_checks);
    if (task.stepped) {
      ++stats_.rule_steps;
      MetricAdd(ins_.rule_steps);
    }
    if (!task.status.ok()) {
      failure = std::move(task.status);
      break;
    }
    if (task.fired) {
      violated.push_back(task.rule->name);
      ++task.rule->fires;  // an IC "fires" by vetoing the commit
      if (tracing && task.stepped) {
        // Capture the veto's witness now — the rollback below rewinds the
        // evaluator (and its anchors) to the pre-probe state.
        CaptureWitness(task.rule, *task.instance, task.snapshot,
                       task.instance->ev.WitnessChain());
      }
    }
    if (tracing && task.stepped) {
      json::Json rec = MakeUpdateRecord(
          *task.rule, *task.instance, task.snapshot,
          task.instance->ev.steps(), task.fired, task.was_satisfied,
          /*fired=*/task.fired);
      if (task.fired && task.rule->last_witness.has_value()) {
        rec.Set("witness", WitnessToJson(*task.rule->last_witness));
      }
      probe_records.push_back(std::move(rec));
    }
  }

  if (violated.empty() && failure.ok()) {
    // The commit stands: the probed steps are now these constraints' real
    // history, so their provenance records enter the replayable stream.
    for (json::Json& rec : probe_records) trace_->RecordUpdate(std::move(rec));
    return Status::OK();
  }

  // Roll the constraints back: the commit state will not materialize. The
  // probe records are dropped with it (the vetoed state is not history); an
  // informational veto record — which TraceReplay ignores — marks the event.
  for (Probe& probe : probes) {
    Status s = probe.instance->ev.Restore(probe.checkpoint);
    PTLDB_CHECK(s.ok() && "checkpoint restore must succeed (no GC ran)");
    probe.instance->last_seq = SIZE_MAX;
  }
  if (!failure.ok()) return failure;
  ++stats_.ic_violations;
  MetricAdd(ins_.ic_violations);
  if (firing_observer_ != nullptr) {
    firing_observer_->OnIcVeto(txn, prospective.time, violated);
  }
  if (tracing) {
    json::Json veto = json::Json::Object();
    veto.Set("kind", json::Json::Str("ic_veto"));
    veto.Set("txn", json::Json::Int(txn));
    veto.Set("seq", json::Json::Int(static_cast<int64_t>(prospective.seq)));
    veto.Set("time", json::Json::Int(prospective.time));
    json::Json names = json::Json::Array();
    for (const std::string& name : violated) names.Add(json::Json::Str(name));
    veto.Set("violated", std::move(names));
    trace_->RecordUpdate(std::move(veto));
  }
  return Status::ConstraintViolation(
      StrCat("integrity constraint(s) violated by transaction ", txn, ": ",
             Join(violated, ", ")));
}

}  // namespace ptldb::rules
