// The rule engine — the paper's "temporal component".
//
// Implements the CA rule model of §3 on top of the database substrate:
//
//   * Triggers: PTL condition + action. The engine listens to every appended
//     system state (§8: "whenever an event occurs the DBMS invokes the
//     temporal component"), evaluates each rule's condition incrementally,
//     and runs the actions of fired rules.
//   * Integrity constraints: rules whose action is abort(X), evaluated at
//     attempts-to-commit (TCA coupling). The engine probes the constraint
//     against the prospective commit state using evaluator checkpoints and
//     vetoes the commit on violation.
//   * Rule families (the paper's free-variable rules): a domain query
//     enumerates parameter tuples; the engine lazily instantiates one
//     incremental evaluator per tuple — the §6.1.1 "multiple database items,
//     indexed with different values for the free variables" generalized to
//     whole rules. Fired actions receive their instance's parameters.
//   * The §7 `executed` machinery: every completed action is recorded in the
//     queryable `__executed` table and announced with an `@executed(rule)`
//     event, so composite/temporal actions are programmed as ordinary rules
//     over that relation (see examples/composite_actions.cc).
//   * The §8 event-relevance filter: a rule marked `event_filtered` is only
//     stepped on states carrying one of the events its condition mentions.
//     This is the paper's ECA-efficiency recovery; like the paper's, it is an
//     approximation — conditions that must observe every state (Lasttime, or
//     time-window formulas that expire silently) should leave it off, and the
//     engine refuses it for conditions using Lasttime.
//   * §6 aggregates: evaluated directly by default (in-evaluator machines) or
//     via the §6.1.1 rewriting (`AggregateMode::kRewrite`), which materializes
//     auxiliary items as real single-row tables and generated reset/accumulate
//     system rules. Both modes observe identical values at every state.

#ifndef PTLDB_RULES_ENGINE_H_
#define PTLDB_RULES_ENGINE_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "agg/rewriter.h"
#include "analysis/ruleset.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "db/database.h"
#include "eval/aux_store.h"
#include "eval/incremental.h"
#include "ptl/analyzer.h"
#include "ptl/lint.h"
#include "ptl/parser.h"
#include "rules/provenance.h"
#include "rules/query_registry.h"

namespace ptldb::rules {

/// How temporal aggregates in a condition are processed.
enum class AggregateMode {
  kDirect,   // in-evaluator accumulator machines (default)
  kRewrite,  // §6.1.1 auxiliary items + reset/accumulate rules
};

struct RuleOptions {
  /// §8 relevance filter: step this rule only on states carrying one of the
  /// events its condition mentions. Off by default (see header caveat).
  bool event_filtered = false;

  AggregateMode aggregate_mode = AggregateMode::kDirect;

  /// Actions of rules fired at the same state run in ascending priority
  /// (ties: registration order).
  int priority = 0;

  /// Record fired actions in `__executed` and raise `@executed(name)`.
  /// On by default; heavy-traffic rules may opt out.
  bool record_execution = true;

  /// When false (default) the action runs only on a false->true transition of
  /// the condition (edge-triggered). When true it runs at *every* state where
  /// the condition is satisfied — beware: combined with record_execution this
  /// re-enters the rule at the @executed state and loops if the condition is
  /// still true (the engine cuts such loops off at a depth limit and reports
  /// an error). Integrity constraints always veto at every violating commit.
  bool level_triggered = false;

  /// Declared action effects (analysis/ruleset.h): the relations the action
  /// writes, the events it raises. Feeds the whole-rule-set triggering graph
  /// — an undeclared action is analyzed as a worst-case writer (PTL202) that
  /// edges into every rule. Declarations are trusted by the analyzer and
  /// therefore validated at runtime while effect validation is on (debug
  /// default): an action observed writing or raising outside its declaration
  /// aborts the process. The `__executed` write and `@executed` raise of
  /// record_execution are derived automatically — do not declare them.
  std::optional<analysis::EffectSet> effects = std::nullopt;
};

/// Everything an action may consult when it runs.
class ActionContext {
 public:
  ActionContext(db::Database* database, std::string rule,
                const std::map<std::string, Value>* params, Timestamp fired_at)
      : database_(database),
        rule_(std::move(rule)),
        params_(params),
        fired_at_(fired_at) {}

  db::Database& database() const { return *database_; }
  const std::string& rule() const { return rule_; }
  /// Family parameters (empty for plain rules).
  const std::map<std::string, Value>& params() const { return *params_; }
  /// Binding for one parameter; Null when absent.
  Value param(const std::string& name) const {
    auto it = params_->find(name);
    return it == params_->end() ? Value::Null() : it->second;
  }
  /// Timestamp of the state at which the condition was satisfied.
  Timestamp fired_at() const { return fired_at_; }

 private:
  db::Database* database_;
  std::string rule_;
  const std::map<std::string, Value>* params_;
  Timestamp fired_at_;
};

using ActionFn = std::function<Status(ActionContext&)>;

/// One fired-rule record (also the shape of `__executed` rows).
struct Firing {
  std::string rule;
  std::string params;  // canonical rendering, "" for plain rules
  Timestamp time = 0;
};

struct EngineStats {
  uint64_t states_processed = 0;
  uint64_t rule_steps = 0;
  uint64_t steps_skipped_by_filter = 0;
  uint64_t queries_evaluated = 0;
  uint64_t actions_executed = 0;
  uint64_t ic_checks = 0;
  uint64_t ic_violations = 0;
  uint64_t instances_created = 0;
  /// Parallel regions actually fanned out over the shard pool.
  uint64_t parallel_dispatches = 0;
  /// Ground-query evaluations answered from the per-pass memo.
  uint64_t query_memo_hits = 0;
  /// Whole query_values vectors reused because another instance in the same
  /// pass had an identical slot layout (cross-rule snapshot sharing).
  uint64_t snapshot_layout_hits = 0;
  /// Ground query values recorded into the §5 query-history aux store.
  uint64_t query_history_records = 0;
  /// Node-store collections across all rule instances (proves the
  /// bounded-state policy engages on long runs).
  uint64_t collections = 0;
};

class RuleEngine : public db::Database::Listener {
 public:
  /// Attaches to `database` (becomes its listener) and creates the
  /// `__executed` table. The database must outlive the engine.
  explicit RuleEngine(db::Database* database);
  ~RuleEngine() override;

  RuleEngine(const RuleEngine&) = delete;
  RuleEngine& operator=(const RuleEngine&) = delete;

  QueryRegistry& queries() { return registry_; }
  const QueryRegistry& queries() const { return registry_; }

  // ---- Rule registration ----

  /// Adds a trigger with a PTL condition given as text.
  Status AddTrigger(const std::string& name, std::string_view condition,
                    ActionFn action, RuleOptions options = {});

  /// Adds a trigger with an already-built condition.
  Status AddTriggerFormula(const std::string& name, ptl::FormulaPtr condition,
                           ActionFn action, RuleOptions options = {});

  /// Adds a temporal integrity constraint: `constraint` must hold at every
  /// commit point; a violating transaction is aborted (§3: a rule with
  /// condition attempts_to_commit(X) AND NOT constraint, action abort(X)).
  Status AddIntegrityConstraint(const std::string& name,
                                std::string_view constraint);

  /// Adds an integrity constraint with an already-built formula.
  Status AddIntegrityConstraintFormula(const std::string& name,
                                       ptl::FormulaPtr constraint);

  /// Adds a rule family: `domain_sql` enumerates parameter tuples; its i-th
  /// output column binds the parameter `param_names[i]` in `condition` (and
  /// is visible to the action via ActionContext::params()). An instance's
  /// history begins at the state where its tuple first appears in the domain.
  Status AddTriggerFamily(const std::string& name, std::string_view domain_sql,
                          std::vector<std::string> param_names,
                          std::string_view condition, ActionFn action,
                          RuleOptions options = {});

  /// Adds a rule family with an already-built condition.
  Status AddTriggerFamilyFormula(const std::string& name,
                                 std::string_view domain_sql,
                                 std::vector<std::string> param_names,
                                 ptl::FormulaPtr condition, ActionFn action,
                                 RuleOptions options = {});

  /// Removes a rule (and its instances / generated system rules).
  Status RemoveRule(const std::string& name);

  // ---- §8 batched invocation ----

  /// With `batch_size` > 1, trigger evaluation is deferred: each state's
  /// query slots are captured immediately (so conditions still observe the
  /// correct database states) but evaluator stepping and action execution
  /// happen once `batch_size` states have accumulated, or at Flush(). The
  /// paper: "the temporal component invocation can be executed for multiple
  /// events at the same time... trigger firing may be delayed, but not go
  /// unrecognized." Integrity constraints are unaffected (they must veto the
  /// committing transaction synchronously).
  void SetBatching(size_t batch_size) { batch_size_ = batch_size; }

  /// Evaluates all buffered states now. No-op when nothing is buffered.
  Status Flush();

  // ---- Sharded evaluation ----

  /// Shards rule-instance stepping across `n` threads (1 = serial, the
  /// default; 0 is treated as 1). Query snapshots are always captured
  /// serially — conditions observe the database single-threaded — and only
  /// evaluator stepping fans out: every instance's evaluator owns a private
  /// and-or Graph, so a shard (the set of instances one pool thread claims)
  /// never shares hash-consed nodes with another. Step results merge back in
  /// canonical (registration order, instance-creation order), so an N-thread
  /// engine produces the identical action sequence, `__executed` contents,
  /// and IC commit/abort verdicts as the serial one. This also parallelizes
  /// TCA probing (integrity constraints at commit attempts) and batched
  /// Flush(), where each instance's buffered snapshots replay in state order
  /// on a single shard. Cannot be called from within a rule action.
  Status SetThreads(size_t n);
  size_t threads() const { return num_threads_; }

  // ---- Static analysis at registration ----

  /// Strict registration: a rule whose lint report carries an error-severity
  /// diagnostic (PTL000/PTL005) or whose retained state is classified
  /// `unbounded` (PTL001) is rejected with InvalidArgument; the message
  /// embeds the rendered report. Off by default. Only affects rules added
  /// while the mode is on.
  void SetStrictRegistration(bool on) { strict_registration_ = on; }
  bool strict_registration() const { return strict_registration_; }

  /// Constant folding of registered conditions: provably-constant
  /// subformulas (decided time bounds, ground comparisons, degenerate
  /// temporal operators) are rewritten out before the evaluator sees the
  /// condition. On by default; turn off to evaluate conditions verbatim
  /// (diagnostics are still produced either way). Only affects rules added
  /// while the mode is set.
  void SetLintFolding(bool on) { lint_folding_ = on; }
  bool lint_folding() const { return lint_folding_; }

  /// The registration-time lint report of one rule, rendered with carets
  /// into the rule's source text (when it was registered from text).
  /// RestoreRetainedState overwrites the stored report with the one
  /// persisted at original registration, so the rendering is stable across
  /// a checkpoint/restore even when the restoring process registered an
  /// already-folded condition.
  Result<std::string> Lint(const std::string& name) const;

  // ---- Whole-rule-set static analysis (analysis/ruleset.h) ----

  /// Analyzes the registered population: declared/derived action effects,
  /// the triggering graph (edges where one rule's effects intersect
  /// another's condition read set), termination verdicts over its cycles
  /// (PTL200 flagged / PTL201 proven), and the confluence partition with
  /// batching-commutativity certificates. Query symbols resolve to the
  /// relations their registered plans scan; family conditions are analyzed
  /// with their parameters free (the read-set walk ignores them). The
  /// report is cached and recomputed after the rule set changes.
  ///
  /// Under strict registration (SetStrictRegistration) a rule whose
  /// addition creates a flagged cycle — one the termination analysis cannot
  /// prove finite — is rolled back and rejected with InvalidArgument, in
  /// addition to the per-rule lint bar.
  const analysis::SetReport& AnalyzeRuleSet() const;

  /// Runtime validation of declared action effects: while on, every state
  /// appended during an action is attributed to the innermost running
  /// action, and when a rule that declared effects finishes, the observed
  /// writes/raises are CHECKed against the declaration — the process aborts
  /// on a lie, because a wrong declaration silently poisons the triggering
  /// graph. On by default in debug builds (assert-style), off in NDEBUG.
  void SetEffectValidation(bool on) { validate_effects_ = on; }
  bool effect_validation() const { return validate_effects_; }

  /// Cascade tracking: while on, records a (triggering rule, fired rule)
  /// pair whenever an action runs with another rule's action on the
  /// dispatch stack — the runtime ground truth the triggering graph must
  /// over-approximate (property-tested). Off by default.
  void SetCascadeTracking(bool on) { track_cascades_ = on; }
  /// Recorded cascade pairs since the last call.
  std::vector<std::pair<std::string, std::string>> TakeCascades();

  // ---- §5 query history (auxiliary relations) ----

  /// Enables recording of every ground query value the engine evaluates
  /// during update processing into per-query interval-stamped histories —
  /// the paper's auxiliary relation R_q, backed by the columnar
  /// eval::ScalarSeries. Recording is read-only with respect to rule
  /// evaluation: firing decisions, action order, and IC verdicts are
  /// unchanged (hypothetical IC probes are never recorded). Off by default.
  void SetQueryHistory(bool on) { query_history_enabled_ = on; }
  bool query_history() const { return query_history_enabled_; }

  /// Retention window for recorded histories: after each update at time t,
  /// intervals that ended at or before t - `window` are trimmed (the
  /// bounded-operator GC of §5). 0 (the default) retains everything.
  void SetQueryHistoryRetention(Timestamp window) {
    query_history_retention_ = window;
  }
  Timestamp query_history_retention() const { return query_history_retention_; }

  /// Value the ground query `spec` had at time `t`, answered from the
  /// recorded history by binary search over its interval columns (the §5
  /// retrieval). NotFound when the query has no history or `t` precedes it;
  /// OutOfRange when the covering interval was trimmed.
  Result<Value> QueryValueAsOf(const ptl::QuerySpec& spec, Timestamp t) const;

  /// Batched retrieval over an ascending timestamp vector: one merge pass
  /// over the columnar history instead of per-timestamp searches.
  Status GatherQueryValuesAsOf(const ptl::QuerySpec& spec,
                               const std::vector<Timestamp>& ts,
                               std::vector<Value>* out) const;

  /// Rendered specs with recorded history, sorted (introspection).
  std::vector<std::string> QueryHistoryKeys() const;

  /// Deep retained bytes across all recorded histories.
  size_t QueryHistoryBytes() const;

  // ---- Retained-state collection policy ----

  /// Node-store size above which an instance's and-or graph is compacted
  /// after stepping. Collections run post-merge on paths where no evaluator
  /// checkpoint is outstanding (the hypothetical IC probe defers; the commit
  /// of the probed state collects instead). Lower values trade collection
  /// work for a tighter memory bound.
  void SetCollectThreshold(size_t nodes) { collect_threshold_ = nodes; }
  size_t collect_threshold() const { return collect_threshold_; }

  // ---- Observability ----

  /// Attaches a metrics registry (nullptr detaches). The engine publishes
  /// counters/histograms as it runs and registers a provider that refreshes
  /// derived gauges (per-rule retained nodes, pool/queue state, evaluator
  /// totals) whenever `metrics->ToJson()` snapshots. The registry must
  /// outlive the engine or be detached first.
  void SetMetrics(Metrics* metrics);
  Metrics* metrics() const { return metrics_; }

  /// Multi-line EXPLAIN of one rule: per instance, the retained F_{g,i}
  /// formula of every temporal subformula (built on the evaluator's
  /// DebugString) plus node/step/collection accounting.
  Result<std::string> Explain(const std::string& name) const;

  /// Attaches a trace recorder (nullptr detaches). While the recorder is
  /// enabled the engine emits phase/rule-step/recurrence spans, one JSONL
  /// update record per stepped instance (the replayable provenance stream),
  /// and captures a firing witness per rule for `Why`. With the recorder
  /// detached or disabled the per-update cost is a handful of branches. The
  /// recorder must outlive the engine or be detached first.
  void SetTrace(trace::Recorder* recorder) { trace_ = recorder; }
  trace::Recorder* trace() const { return trace_; }

  /// Human-readable account of the most recent firing of `name`: the state
  /// it fired at and the witness chain through its temporal subformulas.
  /// NotFound when no such rule exists or it has never fired; if it fired
  /// without tracing enabled, explains how to capture a witness.
  Result<std::string> Why(const std::string& name) const;

  // ---- Introspection ----

  /// A point-in-time description of one rule.
  struct RuleInfo {
    std::string name;
    std::string condition;
    bool is_ic = false;
    bool is_system = false;
    bool is_family = false;
    /// The rule's RuleOptions::level_triggered (offline checker semantics).
    bool level_triggered = false;
    size_t num_instances = 0;
    std::vector<std::string> event_names;
    /// Sum of retained graph nodes over instances (the §5 state).
    size_t retained_nodes = 0;
    /// Sum of backing node-store sizes over instances (>= retained_nodes;
    /// the gap is what a collection reclaims).
    size_t store_nodes = 0;
    /// Total evaluator steps over instances.
    uint64_t steps = 0;
    /// Node-store collections over instances.
    uint64_t collections = 0;
    /// Times this rule's action ran (ICs: times it vetoed a commit).
    uint64_t fires = 0;
    /// Registration-time lint results (see ptl/lint.h).
    ptl::Boundedness boundedness = ptl::Boundedness::kConstant;
    size_t lint_diagnostics = 0;
    /// AST nodes the registration-time fold removed from the condition.
    size_t folded_nodes = 0;
  };

  Result<RuleInfo> Describe(const std::string& name) const;

  // ---- Durability (src/storage) ----

  /// Observer of firing decisions. OnFiring is invoked for every action the
  /// engine decides to run (before the action executes) and OnIcVeto for
  /// every vetoed commit, both in execution order — the decision stream the
  /// WAL persists and recovery compares against as a differential oracle.
  class FiringObserver {
   public:
    virtual ~FiringObserver() = default;
    virtual void OnFiring(const Firing& firing) = 0;
    virtual void OnIcVeto(int64_t txn, Timestamp time,
                          const std::vector<std::string>& violated_rules) = 0;
  };
  void SetFiringObserver(FiringObserver* observer) {
    firing_observer_ = observer;
  }

  /// WAL replay mode: conditions are evaluated and firing decisions are
  /// recorded exactly as live (observer, counters, TakeFirings), but actions
  /// do not run and executions are not re-recorded — their database effects
  /// arrive as logged states/deltas from the WAL, and external side effects
  /// must not repeat across a recovery (exactly-once actions).
  void SetReplayMode(bool on) { replay_mode_ = on; }
  bool replay_mode() const { return replay_mode_; }

  /// Accounting for an IC veto observed in the WAL during replay (no commit
  /// attempt is re-issued, so Describe/stats fidelity needs the bump).
  void NoteReplayedIcVeto(const std::vector<std::string>& violated_rules);

  /// Invoked after every top-level update completes (dispatch depth back at
  /// zero). The durability manager schedules checkpoint-every-N here —
  /// serializing mid-dispatch would capture a half-stepped engine.
  void SetPostUpdateHook(std::function<void()> hook) {
    post_update_hook_ = std::move(hook);
  }

  /// Serializes every rule's retained evaluation state — per-instance
  /// F_{g,i} graphs, aggregate machines, firing counters — keyed by rule
  /// name and instance parameters. Rules themselves are code: the
  /// application re-registers them before RestoreRetainedState, which
  /// validates each rule's condition against the dump. Fails mid-dispatch
  /// or with batched states pending (Flush first).
  Status SerializeRetainedState(codec::Writer* w) const;
  Status RestoreRetainedState(codec::Reader* r);

  const EngineStats& stats() const { return stats_; }
  /// Firings since the last call (actions that ran, in execution order).
  std::vector<Firing> TakeFirings();
  /// Action and internal errors since the last call.
  std::vector<Status> TakeErrors();
  /// Name of every registered rule (including generated system rules).
  std::vector<std::string> RuleNames() const;

  // ---- db::Database::Listener ----

  Status OnCommitAttempt(const event::SystemState& prospective,
                         int64_t txn) override;
  void OnStateAppended(const event::SystemState& state) override;

  /// Name of the §7 execution-log table.
  static constexpr const char* kExecutedTable = "__executed";

 private:
  struct Instance {
    std::map<std::string, Value> params;
    std::string params_key;  // canonical rendering
    eval::IncrementalEvaluator ev;
    size_t last_seq = SIZE_MAX;

    Instance(std::map<std::string, Value> p, std::string key,
             eval::IncrementalEvaluator e)
        : params(std::move(p)), params_key(std::move(key)), ev(std::move(e)) {}
  };

  struct Rule {
    std::string name;
    ptl::FormulaPtr condition;  // post-fold/rewrite, pre-param-substitution
    ActionFn action;            // null for ICs and system rules
    RuleOptions options;
    // Condition source text when registered from text ("" for built ASTs);
    // lint diagnostics render their carets into it.
    std::string source;
    // Registration-time static analysis of the (pre-rewrite) condition.
    ptl::LintReport lint;
    // Event names the condition mentions (drives the §8 relevance index).
    std::set<std::string> event_names;
    bool uses_lasttime = false;
    bool is_ic = false;
    bool is_system = false;
    agg::SystemRule::Op sys_op{};
    std::string sys_item;
    ptl::QuerySpec sys_source;
    bool is_family = false;
    db::QueryPtr domain;
    std::vector<std::string> param_names;
    std::vector<std::unique_ptr<Instance>> instances;
    std::map<std::string, size_t> instance_index;  // params_key -> index
    size_t registration_order = 0;
    // Per-rule accounting, published through the metrics provider. Mutated
    // only on the serial merge/action paths.
    uint64_t fires = 0;
    // Most recent firing's provenance; captured only while tracing (`Why`).
    std::optional<Witness> last_witness;
  };

  struct PendingAction {
    Rule* rule;
    Instance* instance;
    Timestamp fired_at;
  };

  // One deferred evaluation step (batched mode): the snapshot was captured
  // when the state was appended.
  struct QueuedStep {
    Rule* rule;
    Instance* instance;
    ptl::StateSnapshot snapshot;
  };

  // One instance-step prepared for sharded execution. The snapshot is built
  // serially; Step runs on whichever shard claims the task (safe: each
  // evaluator owns its graph); outputs merge back in task order, which the
  // gather loops keep canonical — registration order, then instance-creation
  // order — so firing decisions, action order, and error reporting are
  // byte-identical to the serial engine regardless of thread count.
  struct StepTask {
    Rule* rule = nullptr;
    Instance* instance = nullptr;
    ptl::StateSnapshot snapshot;
    bool allow_collect = true;
    bool resolved = false;  // dedupe hit: outputs were filled at gather time
    // Outputs:
    bool stepped = false;
    bool fired = false;
    bool was_satisfied = false;
    bool collected = false;  // the post-step collection policy engaged
    Status status = Status::OK();
  };

  Status AddRuleInternal(std::string name, ptl::FormulaPtr condition,
                         ActionFn action, RuleOptions options, bool is_ic,
                         bool is_family, std::string_view domain_sql,
                         std::vector<std::string> param_names,
                         std::string source = {});
  Status MaterializeRewrite(const std::string& rule_name,
                            const agg::RewriteResult& rewrite);
  Result<Instance*> MakeInstance(Rule* rule,
                                 std::map<std::string, Value> params);
  Status RefreshFamily(Rule* rule);
  /// Memo for ground query values within one gather pass. Valid only while
  /// the database is not mutated — gather loops never run actions, but phase 1
  /// system rules do mutate aggregate tables, so each pass uses a fresh memo
  /// created after phase 1. Two tiers: per-spec values, and whole snapshot
  /// layouts shared across instances whose analyses resolve to an identical
  /// slot vector (family instances, structurally equal rules).
  struct QueryMemo {
    std::unordered_map<ptl::QuerySpec, Value, ptl::QuerySpecHash> values;
    struct Layout {
      const std::vector<ptl::QuerySpec>* slots;  // points into an Analysis
      std::vector<Value> query_values;
    };
    // Keyed on a fingerprint of the slot vector; candidates are verified by
    // full equality before reuse, so a fingerprint collision costs a compare,
    // never a wrong snapshot.
    std::unordered_map<size_t, std::vector<Layout>> layouts;
  };
  Result<ptl::StateSnapshot> BuildSnapshot(const Instance& instance,
                                           const event::SystemState& state,
                                           QueryMemo* memo = nullptr);
  /// Steps one instance over `state`; returns whether it fired.
  Result<bool> StepInstance(Rule* rule, Instance* instance,
                            const event::SystemState& state,
                            bool allow_collect = true);
  /// Builds a dedupe-resolved or steppable task for one instance at `state`.
  Result<StepTask> GatherStepTask(Rule* rule, Instance* instance,
                                  const event::SystemState& state,
                                  bool allow_collect = true,
                                  QueryMemo* memo = nullptr);
  /// Executes every unresolved task — across the shard pool when one is
  /// configured, serially otherwise. Mutates only task outputs and the
  /// tasks' own evaluators; engine-wide stats are updated by the caller.
  void RunStepTasks(std::vector<StepTask>* tasks);
  void ProcessState(const event::SystemState& state);
  Status ApplySystemOp(const Rule& rule);
  Status RecordExecution(const Rule& rule, const Instance& instance,
                         Timestamp time);
  void ReportError(Status status);

  void RebuildEventIndex();

  /// Provider callback: refreshes derived gauges at snapshot time.
  void RefreshDerivedMetrics(Metrics& m);

  /// Maps the registered population to analyzer inputs (AnalyzeRuleSet).
  std::vector<analysis::RuleDecl> BuildRuleDecls() const;
  /// Charges `state`'s events to the innermost running action's observed
  /// effect set (effect validation / cascade attribution).
  void AttributeStateToAction(const event::SystemState& state);

  db::Database* database_;
  QueryRegistry registry_;
  std::vector<std::unique_ptr<Rule>> rules_;  // registration order
  std::map<std::string, size_t> rule_index_;
  // §8 relevance index: event name -> filtered rules mentioning it. Rules
  // not subject to filtering are stepped on every state.
  std::map<std::string, std::vector<Rule*>> event_index_;
  EngineStats stats_;
  std::vector<Firing> firings_;
  std::vector<Status> errors_;
  int dispatch_depth_ = 0;
  size_t next_registration_order_ = 0;

  // Durability wiring (see SetFiringObserver/SetReplayMode).
  FiringObserver* firing_observer_ = nullptr;
  bool replay_mode_ = false;
  std::function<void()> post_update_hook_;

  // Sharded evaluation (1 = serial; pool_ is null then).
  size_t num_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;

  // Retained-state collection policy (see SetCollectThreshold).
  size_t collect_threshold_ = 65536;

  // §5 query-history substrate (see SetQueryHistory). Mutated only on the
  // serial post-gather path of ProcessState.
  bool query_history_enabled_ = false;
  Timestamp query_history_retention_ = 0;
  std::unordered_map<ptl::QuerySpec, eval::ScalarSeries, ptl::QuerySpecHash>
      query_history_;
  /// Records every memoized query value of the pass at time `t`, then
  /// applies the retention window.
  void RecordQueryHistory(Timestamp t, const QueryMemo& memo);

  // Static analysis at registration (see SetStrictRegistration).
  bool strict_registration_ = false;
  bool lint_folding_ = true;

  // Whole-rule-set analysis cache; dirtied by registration changes and
  // rebuilt lazily on AnalyzeRuleSet() (also from const paths: Explain,
  // the metrics provider).
  mutable std::optional<analysis::SetReport> set_report_;
  mutable bool set_report_dirty_ = true;

  // Runtime effect recorder (see SetEffectValidation/SetCascadeTracking).
  // One frame per action currently on the dispatch stack; states appended
  // while a frame is live are attributed to the innermost one.
  struct ActionFrame {
    const Rule* rule;
    analysis::EffectSet observed;
  };
  std::vector<ActionFrame> action_frames_;
#ifdef NDEBUG
  bool validate_effects_ = false;
#else
  bool validate_effects_ = true;
#endif
  bool track_cascades_ = false;
  std::vector<std::pair<std::string, std::string>> cascades_;

  /// Builds the JSONL provenance record for one stepped instance. `fired` is
  /// the post-edge-trigger verdict (whether the action actually runs);
  /// `step_no`/`witness_chain` must be captured at step time when an
  /// instance steps more than once per pass (batched Flush).
  json::Json MakeUpdateRecord(const Rule& rule, const Instance& instance,
                              const ptl::StateSnapshot& snapshot,
                              uint64_t step_no, bool satisfied,
                              bool was_satisfied, bool fired);
  /// Emits one instant span per recurrence flip of the instance's last Step.
  void EmitRecurrenceSpans(const eval::IncrementalEvaluator& ev);
  /// Captures a Witness for a firing and stores it on the rule for `Why`.
  void CaptureWitness(Rule* rule, const Instance& instance,
                      const ptl::StateSnapshot& snapshot,
                      std::vector<eval::IncrementalEvaluator::WitnessLink>
                          chain);

  // Observability: cached instrument pointers, null when detached, so the
  // hot path pays one branch per update and nothing else.
  trace::Recorder* trace_ = nullptr;
  Metrics* metrics_ = nullptr;
  uint64_t metrics_provider_id_ = 0;
  struct MetricSet {
    Metrics::Counter* states_processed = nullptr;
    Metrics::Counter* rule_steps = nullptr;
    Metrics::Counter* steps_skipped_by_filter = nullptr;
    Metrics::Counter* actions_executed = nullptr;
    Metrics::Counter* ic_checks = nullptr;
    Metrics::Counter* ic_violations = nullptr;
    Metrics::Counter* instances_created = nullptr;
    Metrics::Counter* parallel_dispatches = nullptr;
    Metrics::Counter* collections = nullptr;
    Metrics::Counter* errors = nullptr;
    Metrics::Counter* query_evals = nullptr;
    Metrics::Counter* query_memo_hits = nullptr;
    Metrics::Counter* snapshot_layout_hits = nullptr;
    Metrics::Counter* query_history_records = nullptr;
    Metrics::Histogram* gather_ns = nullptr;
    Metrics::Histogram* step_ns = nullptr;
    Metrics::Histogram* merge_ns = nullptr;
    Metrics::Histogram* action_ns = nullptr;
  };
  MetricSet ins_;

  // §8 batching (1 = synchronous).
  size_t batch_size_ = 1;
  size_t batched_states_ = 0;
  bool flushing_ = false;
  std::vector<QueuedStep> batch_queue_;

  void RunPendingActions(std::vector<PendingAction> pending);
};

}  // namespace ptldb::rules

#endif  // PTLDB_RULES_ENGINE_H_
