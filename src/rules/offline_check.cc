#include "rules/offline_check.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "common/strings.h"
#include "event/event.h"
#include "ptl/analyzer.h"
#include "ptl/naive_eval.h"
#include "ptl/parser.h"
#include "ptl/snapshot.h"

namespace ptldb::rules {

namespace {

bool TermHasAggregate(const ptl::TermPtr& t);

bool FormulaHasAggregate(const ptl::FormulaPtr& f) {
  if (f == nullptr) return false;
  if (TermHasAggregate(f->lhs_term) || TermHasAggregate(f->rhs_term) ||
      TermHasAggregate(f->bind_term)) {
    return true;
  }
  return FormulaHasAggregate(f->left) || FormulaHasAggregate(f->right);
}

bool TermHasAggregate(const ptl::TermPtr& t) {
  if (t == nullptr) return false;
  if (t->kind == ptl::Term::Kind::kAgg ||
      t->kind == ptl::Term::Kind::kWindowAgg) {
    return true;
  }
  for (const ptl::TermPtr& op : t->operands) {
    if (TermHasAggregate(op)) return true;
  }
  return false;
}

/// True when some event atom occurs under an odd number of negations.
/// (ThroughoutPast f == NOT Previously NOT f cancels out; Since and the other
/// operators preserve the polarity of both operands.)
bool HasNegatedEventAtom(const ptl::FormulaPtr& f, bool negated) {
  if (f == nullptr) return false;
  switch (f->kind) {
    case ptl::Formula::Kind::kEvent:
      return negated;
    case ptl::Formula::Kind::kNot:
      return HasNegatedEventAtom(f->left, !negated);
    default:
      return HasNegatedEventAtom(f->left, negated) ||
             HasNegatedEventAtom(f->right, negated);
  }
}

/// Eligibility that needs only the rule descriptor — checked before the
/// condition is re-parsed (a family's condition has free parameters and does
/// not even analyze standalone). Empty string = eligible so far.
std::string IneligibleBeforeAnalysis(const RuleEngine::RuleInfo& info) {
  if (info.is_system) return "generated system rule";
  if (info.is_family) return "rule family: free variables are unbound offline";
  return "";
}

/// Eligibility under Theorem 2; empty string = eligible.
std::string IneligibleReason(const ptl::Analysis& analysis,
                             const QueryRegistry& registry) {
  if (analysis.uses_lasttime) {
    return "Lasttime must observe every state, including dropped ones";
  }
  if (!analysis.time_vars.empty()) {
    return "real-time bound: satisfaction can change at dropped states";
  }
  for (const std::string& ev : analysis.event_names) {
    if (ev == event::kBeginEvent || ev == event::kAbortEvent ||
        ev == event::kAttemptsToCommitEvent) {
      return StrCat("transaction-control event atom @", ev,
                    " is invisible in the collapsed history");
    }
  }
  if (FormulaHasAggregate(analysis.root)) {
    return "temporal aggregate sums over all states, dropped ones included";
  }
  for (const ptl::QuerySpec& spec : analysis.slots) {
    if (registry.IsComputed(spec.name)) {
      return StrCat("computed query '", spec.name,
                    "' has no historical reconstruction");
    }
  }
  return "";
}

void Disagree(OfflineRuleReport* rep, uint64_t* total, std::string msg) {
  rep->disagreements.push_back(std::move(msg));
  ++*total;
}

}  // namespace

std::string OfflineCheckReport::ToString() const {
  std::ostringstream out;
  out << "offline check over " << retained_states << " retained state(s) ("
      << commit_points << " commit point(s)): " << rules_checked
      << " rule(s) checked, " << rules_skipped << " skipped, " << disagreements
      << " disagreement(s)\n";
  for (const OfflineRuleReport& r : rules) {
    out << "  " << (r.is_ic ? "ic " : "rule ") << r.rule << ": ";
    if (!r.checked) {
      out << "skipped (" << r.skip_reason << ")\n";
      continue;
    }
    out << r.offline_satisfied << "/" << r.points_evaluated
        << " state(s) satisfied, offline predicts " << r.offline_firings
        << " firing(s), online recorded " << r.online_firings;
    if (r.partial) out << " [partial: negated event atom]";
    out << (r.disagreements.empty() ? " — agree" : " — DISAGREE") << "\n";
    for (const std::string& d : r.disagreements) {
      out << "    " << d << "\n";
    }
  }
  return out.str();
}

Result<OfflineCheckReport> OfflineCheck(
    const temporal::VersionStore& store, const RuleEngine& engine,
    const std::vector<Firing>& online_firings) {
  const std::vector<temporal::CommitPoint>& log = store.commit_log();
  OfflineCheckReport report;
  report.retained_states = log.size();
  for (const temporal::CommitPoint& p : log) {
    if (p.is_commit) ++report.commit_points;
  }

  for (const std::string& name : engine.RuleNames()) {
    PTLDB_ASSIGN_OR_RETURN(RuleEngine::RuleInfo info, engine.Describe(name));
    OfflineRuleReport rep;
    rep.rule = name;
    rep.is_ic = info.is_ic;

    rep.skip_reason = IneligibleBeforeAnalysis(info);
    if (!rep.skip_reason.empty()) {
      ++report.rules_skipped;
      report.rules.push_back(std::move(rep));
      continue;
    }

    // Conditions round-trip through their canonical rendering: the engine
    // stores the post-fold AST, whose ToString re-parses to the same formula.
    auto parsed = ptl::ParseFormula(info.condition);
    if (!parsed.ok()) {
      return Status::Internal(StrCat("condition of rule '", name,
                                     "' failed to re-parse: ",
                                     parsed.status().message()));
    }
    auto analyzed = ptl::Analyze(std::move(parsed).value());
    if (!analyzed.ok()) {
      return Status::Internal(StrCat("condition of rule '", name,
                                     "' failed to re-analyze: ",
                                     analyzed.status().message()));
    }
    const ptl::Analysis analysis = std::move(analyzed).value();

    rep.skip_reason = IneligibleReason(analysis, engine.queries());
    if (!rep.skip_reason.empty()) {
      ++report.rules_skipped;
      report.rules.push_back(std::move(rep));
      continue;
    }

    // Re-evaluate the condition over the collapsed history, with every query
    // slot answered from the version store at the retained state's instant.
    //
    // The collapsed log names only commit points and user-event states, but
    // the online engine also stepped the states *before* the first commit —
    // the initial, pre-transaction contents — and past operators latch on
    // them (PREVIOUSLY q(...) stays true forever once true). So the
    // evaluator is seeded with a synthetic initial state one tick before the
    // first retained instant, answered from the archive like any retained
    // read. If trimming made that instant unanswerable the seed is skipped
    // and the first retained state is treated as the beginning of time.
    ptl::NaiveEvaluator nev(&analysis);
    std::vector<bool> sat;  // extended sequence: [synthetic initial,] log...
    sat.reserve(log.size() + 1);
    size_t base = 0;  // 1 when sat[0] is the synthetic initial state
    Timestamp t_init = 0;
    Status eval_error = Status::OK();
    if (!log.empty()) {
      t_init = log.front().time - 1;
      ptl::StateSnapshot snap;
      snap.seq = 0;
      snap.time = t_init;
      snap.query_values.reserve(analysis.slots.size());
      bool answerable = true;
      for (const ptl::QuerySpec& spec : analysis.slots) {
        auto v = engine.queries().EvalAsOf(spec, t_init);
        if (!v.ok()) {
          answerable = false;
          break;
        }
        snap.query_values.push_back(std::move(v).value());
      }
      if (answerable) {
        nev.Observe(std::move(snap));
        auto s = nev.SatisfiedAt(0);
        if (!s.ok()) {
          eval_error = s.status();
        } else {
          sat.push_back(s.value());
          base = 1;
        }
      }
    }
    for (size_t i = 0; i < log.size() && eval_error.ok(); ++i) {
      ptl::StateSnapshot snap;
      snap.seq = base + i;
      snap.time = log[i].time;
      snap.events = log[i].events;
      snap.query_values.reserve(analysis.slots.size());
      for (const ptl::QuerySpec& spec : analysis.slots) {
        auto v = engine.queries().EvalAsOf(spec, log[i].time);
        if (!v.ok()) {
          eval_error = v.status();
          break;
        }
        snap.query_values.push_back(std::move(v).value());
      }
      if (!eval_error.ok()) break;
      nev.Observe(std::move(snap));
      auto s = nev.SatisfiedAt(base + i);
      if (!s.ok()) {
        eval_error = s.status();
        break;
      }
      sat.push_back(s.value());
      ++rep.points_evaluated;
      if (sat[base + i]) ++rep.offline_satisfied;
    }
    if (!eval_error.ok()) {
      rep.skip_reason = StrCat("evaluation failed: ", eval_error.message());
      rep.points_evaluated = 0;
      ++report.rules_skipped;
      report.rules.push_back(std::move(rep));
      continue;
    }

    if (info.is_ic) {
      // An IC is stored as its violation form (the engine negates the
      // constraint so it can fire on @attempts_to_commit), so `sat[i]` here
      // means "violated at state i". The online engine vetoed every violating
      // transaction, so no retained commit point may satisfy the violation.
      for (size_t i = 0; i < log.size(); ++i) {
        if (log[i].is_commit && sat[base + i]) {
          Disagree(&rep, &report.disagreements,
                   StrCat("constraint violated at committed state seq=",
                          log[i].seq, " time=", log[i].time,
                          " — the online engine let this commit through"));
        }
      }
      ++report.rules_checked;
      rep.checked = true;
      report.rules.push_back(std::move(rep));
      continue;
    }

    // Trigger: diff predicted firings against the recorded stream. The
    // online engine stepped *every* state — the begin/abort/attempt states
    // the collapsed history drops included — so its stream can carry firings
    // at timestamps no retained state owns. Those are handled per semantics
    // below, not blindly flagged.
    std::map<Timestamp, int64_t> online;  // time -> count
    for (const Firing& f : online_firings) {
      if (f.rule == name && f.params.empty()) {
        ++online[f.time];
        ++rep.online_firings;
      }
    }
    // Predicted firings at retained states. For edges the synthetic initial
    // state participates as the baseline (index base-1) and, when satisfied,
    // as its own predicted firing covering the pre-first-commit prefix; for
    // level rules it stands for *many* online states and is not comparable,
    // so it contributes nothing.
    std::map<Timestamp, int64_t> offline;
    for (size_t i = 0; i < log.size(); ++i) {
      const size_t e = base + i;
      bool fires = info.level_triggered ? sat[e] : (sat[e] && (e == 0 || !sat[e - 1]));
      if (fires) {
        ++offline[log[i].time];
        ++rep.offline_firings;
      }
    }
    rep.partial = !info.level_triggered &&
                  HasNegatedEventAtom(analysis.root, /*negated=*/false);

    std::map<Timestamp, size_t> retained;  // time -> log index (times unique)
    for (size_t i = 0; i < log.size(); ++i) retained[log[i].time] = i;

    if (info.level_triggered) {
      // Exact count equality at every retained time. Firings at dropped
      // states are invisible to the collapsed history by construction and
      // are not comparable — Theorem 2 speaks only to the retained states.
      for (const auto& [t, n] : online) {
        if (retained.find(t) == retained.end()) continue;  // dropped state
        int64_t want = offline.count(t) ? offline.at(t) : 0;
        if (n != want) {
          Disagree(&rep, &report.disagreements,
                   StrCat("online fired ", n, "x at time=", t,
                          " but offline predicts ", want));
        }
      }
      for (const auto& [t, n] : offline) {
        if (online.find(t) != online.end()) continue;  // compared above
        Disagree(&rep, &report.disagreements,
                 StrCat("offline predicts ", n, " firing(s) at time=", t,
                        " but online recorded 0"));
      }
    } else {
      // Edge-triggered: an online edge may land on a dropped state just
      // before the retained state whose offline verdict flipped (PREVIOUSLY
      // shifts satisfaction by one state, and the collapsed sequence has
      // fewer states). So each offline edge at retained state i is matched
      // against one online firing anywhere in the window (T_{i-1}, T_i] —
      // the span of full-history states that collapse onto state i.
      std::vector<Timestamp> pool;  // unmatched online firing times, sorted
      for (const auto& [t, n] : online) {
        for (int64_t k = 0; k < n; ++k) pool.push_back(t);
      }
      for (size_t e = 0; e < sat.size(); ++e) {
        bool edge = sat[e] && (e == 0 || !sat[e - 1]);
        if (!edge) continue;
        // The synthetic initial state's window is the whole prefix up to and
        // including its own instant.
        const Timestamp hi = (e < base) ? t_init : log[e - base].time;
        const bool open_low = (e == 0);
        Timestamp lo = 0;  // exclusive
        if (!open_low) lo = (e - 1 < base) ? t_init : log[e - 1 - base].time;
        if (e < base) ++rep.offline_firings;  // synthetic edge, counted here
        // Latest unmatched online firing in the window.
        auto it = std::upper_bound(pool.begin(), pool.end(), hi);
        if (it != pool.begin() && (open_low || *(it - 1) > lo)) {
          pool.erase(it - 1);
        } else if (!rep.partial) {
          Disagree(&rep, &report.disagreements,
                   StrCat("offline edge at time=", hi,
                          " with no online firing in (",
                          open_low ? "-inf" : StrCat(lo), ", ", hi, "]"));
        }
      }
      // Leftover online firings: on a retained state they are consistent as
      // long as the state satisfies the condition (the online edge structure
      // can differ when satisfaction flipped at a dropped state in between);
      // on a dropped state with no offline edge to absorb them they are a
      // disagreement — unless the rule is only partially checkable.
      for (Timestamp t : pool) {
        auto it = retained.find(t);
        if (it != retained.end()) {
          if (!sat[base + it->second]) {
            Disagree(&rep, &report.disagreements,
                     StrCat("online fired at time=", t, " but the retained ",
                            "state there does not satisfy the condition"));
          }
        } else if (!rep.partial) {
          Disagree(&rep, &report.disagreements,
                   StrCat("online fired at dropped-state time=", t,
                          " with no matching offline edge"));
        }
      }
    }

    ++report.rules_checked;
    rep.checked = true;
    report.rules.push_back(std::move(rep));
  }
  return report;
}

}  // namespace ptldb::rules
