// Maps PTL function symbols to executable database queries.
//
// The paper treats n-ary function symbols as queries on the database (§4.1,
// the OVERPRICED example). The registry resolves a ground QuerySpec —
// `price("IBM")` — to a value of the *current* database state, either via a
// registered SQL statement with named parameters or via a computed function
// (used by the §6.1.1 rewriting for derived aggregate items).
//
// Result shaping: a 1x1 relation yields its value; an empty single-column
// relation yields NULL (so "no such row" is representable in conditions);
// anything else is an error — conditions compare scalars.

#ifndef PTLDB_RULES_QUERY_REGISTRY_H_
#define PTLDB_RULES_QUERY_REGISTRY_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "db/database.h"
#include "ptl/snapshot.h"

namespace ptldb::rules {

/// Computed query: receives the ground argument values, returns a scalar.
using ComputedQueryFn =
    std::function<Result<Value>(const std::vector<Value>& args)>;

class QueryRegistry {
 public:
  explicit QueryRegistry(db::Database* database) : database_(database) {}

  /// Registers `name` as the SQL statement `sql`; the i-th PTL argument is
  /// bound to the SQL parameter `$<param_names[i]>`. E.g.
  ///   Register("price", "SELECT price FROM stock WHERE name = $sym", {"sym"})
  /// makes `price('IBM')` usable in conditions.
  Status Register(const std::string& name, std::string_view sql,
                  std::vector<std::string> param_names = {});

  /// Registers a computed scalar function of the argument values.
  Status RegisterComputed(const std::string& name, ComputedQueryFn fn);

  bool Has(const std::string& name) const;

  /// Evaluates one ground query instance against the current database state.
  Result<Value> Eval(const ptl::QuerySpec& spec) const;

  /// Evaluates one ground query instance against the database *as of* `t`:
  /// every table the query scans is read from the attached version store at
  /// that instant (db::Database::TemporalSink). The offline integrity checker
  /// (rules/offline_check.h) uses this to re-create the query values each
  /// condition observed at historical commit points. Fails when the database
  /// has no version store or a scanned table is not versioned; computed
  /// queries are NotImplemented (they close over live state).
  Result<Value> EvalAsOf(const ptl::QuerySpec& spec, Timestamp t) const;

  /// True when `name` is a computed (non-SQL) query, which EvalAsOf cannot
  /// reconstruct historically.
  bool IsComputed(const std::string& name) const {
    return computed_.count(name) > 0;
  }

  /// Evaluates the full relation of a registered SQL query (used for rule
  /// family domains and diagnostics). Computed queries are not relational.
  Result<db::Relation> EvalRelation(const std::string& name,
                                    const std::vector<Value>& args) const;

  /// The tables a registered SQL query's plan scans (sorted, deduplicated) —
  /// the read footprint the rule-set analyzer charges to conditions using
  /// the symbol. A computed query closes over live state the registry cannot
  /// see into; its own name is returned as an opaque resource label (the
  /// aggregate-rewrite items follow this convention: the computed query
  /// `__agg_r_0` reads the single-row table `__agg_r_0`). Unknown names
  /// yield an empty vector.
  std::vector<std::string> ScannedTables(const std::string& name) const;

 private:
  struct SqlQuery {
    db::QueryPtr plan;
    std::vector<std::string> param_names;
  };

  Result<db::ParamMap> BindArgs(const SqlQuery& q,
                                const std::vector<Value>& args,
                                const std::string& name) const;

  db::Database* database_;
  std::unordered_map<std::string, SqlQuery> sql_queries_;
  std::unordered_map<std::string, ComputedQueryFn> computed_;
};

}  // namespace ptldb::rules

#endif  // PTLDB_RULES_QUERY_REGISTRY_H_
