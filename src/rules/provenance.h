// Firing provenance: the witness a fired rule reports, and the differential
// replay of a trace dump.
//
// A `Witness` explains one firing: the state at which the grounded condition
// was satisfied, plus one link per temporal subformula giving its retained
// F_{g,i} formula and the *anchor* — the most recent state at which that
// recurrence became satisfied, with the `[x := q]` values bound there. The
// chain reaches back through Since/Lasttime history without replaying it:
// the anchors are maintained incrementally by the evaluator while tracing.
//
// `TraceReplay` is the independent check: it re-reads a JSONL trace dump
// (trace.h format), reconstructs each rule instance's snapshot history from
// the recorded update documents, re-evaluates the recorded condition with the
// naive (§4.2-literal) evaluator, and compares its verdict at every state
// with what the engine recorded. A mismatch means either the incremental
// evaluator or the trace itself is wrong — exactly the property Theorem 1
// promises, checked from the outside on a production artifact.

#ifndef PTLDB_RULES_PROVENANCE_H_
#define PTLDB_RULES_PROVENANCE_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "eval/incremental.h"
#include "ptl/snapshot.h"

namespace ptldb::rules {

/// Why one rule instance fired at one state.
struct Witness {
  std::string rule;
  std::string params;     // canonical params key, "" for plain rules
  std::string condition;  // grounded condition text (re-parseable)
  int64_t seq = -1;
  Timestamp time = 0;
  std::vector<eval::IncrementalEvaluator::WitnessLink> chain;
};

json::Json WitnessToJson(const Witness& w);

/// Multi-line human rendering (the shell's `why <rule>` output).
std::string WitnessSummary(const Witness& w);

/// Lossless encoding of the parts of a snapshot a replay needs (events and
/// query-slot values; seq/time are carried on the enclosing record).
json::Json EncodeSnapshotEvents(const ptl::StateSnapshot& snapshot);
json::Json EncodeSnapshotQueryValues(const ptl::StateSnapshot& snapshot);

// ---- Differential replay ----------------------------------------------------

struct ReplayReport {
  size_t records = 0;            // update records consumed
  size_t ignored = 0;            // non-update lines skipped (header, vetoes…)
  size_t instances = 0;          // (rule, params) groups replayed
  size_t partial_skipped = 0;    // groups whose history start was dropped
  size_t steps = 0;              // states re-evaluated naively
  size_t fired_with_witness = 0; // recorded firings carrying a witness chain
  size_t fired_without_witness = 0;
  size_t mismatches = 0;
  std::vector<std::string> details;  // one line per mismatch (first 32)

  bool ok() const { return mismatches == 0; }
  std::string Summary() const;
};

/// Replays a JSONL trace dump against the naive evaluator. Returns an error
/// only for malformed input; verdict disagreements are reported as
/// `mismatches` so callers can print all of them.
Result<ReplayReport> TraceReplay(std::string_view jsonl);
Result<ReplayReport> TraceReplayFile(const std::string& path);

}  // namespace ptldb::rules

#endif  // PTLDB_RULES_PROVENANCE_H_
