#include "rules/query_registry.h"

#include <set>
#include <utility>

#include "common/strings.h"
#include "db/query.h"
#include "db/sql_parser.h"

namespace ptldb::rules {

Status QueryRegistry::Register(const std::string& name, std::string_view sql,
                               std::vector<std::string> param_names) {
  if (Has(name)) {
    return Status::AlreadyExists(StrCat("query '", name, "' already registered"));
  }
  PTLDB_ASSIGN_OR_RETURN(db::QueryPtr plan, db::ParseSql(sql));
  sql_queries_.emplace(name, SqlQuery{std::move(plan), std::move(param_names)});
  return Status::OK();
}

Status QueryRegistry::RegisterComputed(const std::string& name,
                                       ComputedQueryFn fn) {
  if (Has(name)) {
    return Status::AlreadyExists(StrCat("query '", name, "' already registered"));
  }
  computed_.emplace(name, std::move(fn));
  return Status::OK();
}

bool QueryRegistry::Has(const std::string& name) const {
  return sql_queries_.count(name) > 0 || computed_.count(name) > 0;
}

Result<db::ParamMap> QueryRegistry::BindArgs(const SqlQuery& q,
                                             const std::vector<Value>& args,
                                             const std::string& name) const {
  if (args.size() != q.param_names.size()) {
    return Status::InvalidArgument(
        StrCat("query '", name, "' expects ", q.param_names.size(),
               " argument(s), got ", args.size()));
  }
  db::ParamMap params;
  for (size_t i = 0; i < args.size(); ++i) {
    params.emplace(q.param_names[i], args[i]);
  }
  return params;
}

Result<Value> QueryRegistry::Eval(const ptl::QuerySpec& spec) const {
  auto cit = computed_.find(spec.name);
  if (cit != computed_.end()) return cit->second(spec.args);

  auto it = sql_queries_.find(spec.name);
  if (it == sql_queries_.end()) {
    return Status::NotFound(
        StrCat("no query registered for function symbol '", spec.name, "'"));
  }
  PTLDB_ASSIGN_OR_RETURN(db::ParamMap params,
                         BindArgs(it->second, spec.args, spec.name));
  PTLDB_ASSIGN_OR_RETURN(db::Relation rel,
                         database_->Query(it->second.plan, &params));
  if (rel.schema().num_columns() == 1 && rel.empty()) {
    return Value::Null();  // "no such row"
  }
  auto scalar = rel.ScalarValue();
  if (!scalar.ok()) {
    return Status::TypeMismatch(
        StrCat("query ", spec.ToString(), " used as a scalar but returned ",
               rel.size(), " row(s) x ", rel.schema().num_columns(),
               " column(s)"));
  }
  return scalar;
}

Result<Value> QueryRegistry::EvalAsOf(const ptl::QuerySpec& spec,
                                      Timestamp t) const {
  if (IsComputed(spec.name)) {
    return Status::NotImplemented(
        StrCat("computed query '", spec.name,
               "' cannot be evaluated against a historical state"));
  }
  auto it = sql_queries_.find(spec.name);
  if (it == sql_queries_.end()) {
    return Status::NotFound(
        StrCat("no query registered for function symbol '", spec.name, "'"));
  }
  if (database_->temporal_sink() == nullptr) {
    return Status::InvalidArgument(
        StrCat("AS OF evaluation of '", spec.name,
               "' requires a version store (none attached)"));
  }
  PTLDB_ASSIGN_OR_RETURN(db::ParamMap params,
                         BindArgs(it->second, spec.args, spec.name));
  db::QueryExecutor exec(&std::as_const(*database_).catalog(),
                         database_->temporal_sink(), t);
  PTLDB_ASSIGN_OR_RETURN(db::Relation rel,
                         exec.Execute(it->second.plan, &params));
  if (rel.schema().num_columns() == 1 && rel.empty()) {
    return Value::Null();  // "no such row"
  }
  auto scalar = rel.ScalarValue();
  if (!scalar.ok()) {
    return Status::TypeMismatch(
        StrCat("query ", spec.ToString(), " used as a scalar but returned ",
               rel.size(), " row(s) x ", rel.schema().num_columns(),
               " column(s)"));
  }
  return scalar;
}

Result<db::Relation> QueryRegistry::EvalRelation(
    const std::string& name, const std::vector<Value>& args) const {
  auto it = sql_queries_.find(name);
  if (it == sql_queries_.end()) {
    return Status::NotFound(
        StrCat("no relational query registered under '", name, "'"));
  }
  PTLDB_ASSIGN_OR_RETURN(db::ParamMap params,
                         BindArgs(it->second, args, name));
  return database_->Query(it->second.plan, &params);
}

namespace {
void CollectScans(const db::QueryPtr& q, std::set<std::string>* out) {
  if (q == nullptr) return;
  if (q->kind == db::Query::Kind::kScan) out->insert(q->table);
  CollectScans(q->input, out);
  CollectScans(q->right, out);
}
}  // namespace

std::vector<std::string> QueryRegistry::ScannedTables(
    const std::string& name) const {
  auto it = sql_queries_.find(name);
  if (it != sql_queries_.end()) {
    std::set<std::string> tables;
    CollectScans(it->second.plan, &tables);
    return {tables.begin(), tables.end()};
  }
  if (computed_.count(name) > 0) return {name};
  return {};
}

}  // namespace ptldb::rules
