#include "rules/provenance.h"

#include <cstdio>
#include <map>
#include <sstream>

#include "common/strings.h"
#include "common/trace.h"
#include "ptl/analyzer.h"
#include "ptl/naive_eval.h"
#include "ptl/parser.h"

namespace ptldb::rules {

json::Json WitnessToJson(const Witness& w) {
  json::Json doc = json::Json::Object();
  doc.Set("rule", json::Json::Str(w.rule));
  if (!w.params.empty()) doc.Set("params", json::Json::Str(w.params));
  doc.Set("condition", json::Json::Str(w.condition));
  doc.Set("seq", json::Json::Int(w.seq));
  doc.Set("time", json::Json::Int(w.time));
  json::Json chain = json::Json::Array();
  for (const auto& link : w.chain) {
    json::Json l = json::Json::Object();
    l.Set("op", json::Json::Str(link.op));
    l.Set("subformula", json::Json::Str(link.subformula));
    l.Set("retained", json::Json::Str(link.retained));
    l.Set("anchor_seq", json::Json::Int(link.anchor_seq));
    l.Set("anchor_time", json::Json::Int(link.anchor_time));
    if (!link.bindings.empty()) {
      json::Json binds = json::Json::Array();
      for (const auto& b : link.bindings) {
        json::Json bj = json::Json::Object();
        bj.Set("var", json::Json::Str(b.var));
        bj.Set("value", trace::EncodeValue(b.value));
        binds.Add(std::move(bj));
      }
      l.Set("bindings", std::move(binds));
    }
    chain.Add(std::move(l));
  }
  doc.Set("chain", std::move(chain));
  return doc;
}

std::string WitnessSummary(const Witness& w) {
  std::ostringstream out;
  out << "rule '" << w.rule << "'";
  if (!w.params.empty()) out << " [" << w.params << "]";
  out << " fired at state #" << w.seq << " (t=" << w.time << ")\n";
  out << "condition: " << w.condition << "\n";
  if (w.chain.empty()) {
    out << "no temporal subformulas: the condition held at the firing state "
           "itself\n";
    return out.str();
  }
  for (const auto& link : w.chain) {
    out << "  " << link.op << "  " << link.subformula << "\n";
    if (link.anchor_seq >= 0) {
      out << "    anchored at state #" << link.anchor_seq << " (t="
          << link.anchor_time << ")";
    } else if (link.retained != "false") {
      out << "    open retained formula, satisfied under the firing bindings";
    } else {
      out << "    never satisfied while tracing";
    }
    out << "; retained F = " << link.retained << "\n";
    for (const auto& b : link.bindings) {
      out << "    bound: " << b.var << " = " << b.value.ToString() << "\n";
    }
  }
  return out.str();
}

json::Json EncodeSnapshotEvents(const ptl::StateSnapshot& snapshot) {
  json::Json events = json::Json::Array();
  for (const event::Event& e : snapshot.events) {
    json::Json ej = json::Json::Object();
    ej.Set("name", json::Json::Str(e.name));
    ej.Set("params", trace::EncodeValues(e.params));
    events.Add(std::move(ej));
  }
  return events;
}

json::Json EncodeSnapshotQueryValues(const ptl::StateSnapshot& snapshot) {
  return trace::EncodeValues(snapshot.query_values);
}

// ---- Differential replay ----------------------------------------------------

std::string ReplayReport::Summary() const {
  return StrCat(ok() ? "OK" : "MISMATCH", ": ", records, " update record(s), ",
                instances, " instance(s), ", steps, " state(s) re-evaluated, ",
                mismatches, " mismatch(es), ", partial_skipped,
                " partial group(s) skipped, ", fired_with_witness,
                " firing(s) with witness, ", fired_without_witness,
                " without");
}

namespace {

struct ReplayRecord {
  std::string condition;
  uint64_t step = 0;  // evaluator step count after this state (1-based)
  ptl::StateSnapshot snapshot;
  bool satisfied = false;
  bool fired = false;         // the action actually ran (edge-trigger applied)
  bool has_witness = false;
};

Result<ReplayRecord> ParseUpdateRecord(const json::Json& doc) {
  ReplayRecord rec;
  PTLDB_ASSIGN_OR_RETURN(const json::Json* cond, doc.Get("condition"));
  rec.condition = cond->AsString();
  PTLDB_ASSIGN_OR_RETURN(const json::Json* step, doc.Get("step"));
  PTLDB_ASSIGN_OR_RETURN(int64_t step_v, step->AsInt64());
  rec.step = static_cast<uint64_t>(step_v);
  PTLDB_ASSIGN_OR_RETURN(const json::Json* seq, doc.Get("seq"));
  PTLDB_ASSIGN_OR_RETURN(int64_t seq_v, seq->AsInt64());
  rec.snapshot.seq = static_cast<size_t>(seq_v);
  PTLDB_ASSIGN_OR_RETURN(const json::Json* time, doc.Get("time"));
  PTLDB_ASSIGN_OR_RETURN(int64_t time_v, time->AsInt64());
  rec.snapshot.time = time_v;
  PTLDB_ASSIGN_OR_RETURN(const json::Json* events, doc.Get("events"));
  if (!events->is_array()) {
    return Status::ParseError("update record 'events' is not an array");
  }
  for (const json::Json& ej : events->items()) {
    event::Event e;
    PTLDB_ASSIGN_OR_RETURN(const json::Json* name, ej.Get("name"));
    e.name = name->AsString();
    PTLDB_ASSIGN_OR_RETURN(const json::Json* params, ej.Get("params"));
    PTLDB_ASSIGN_OR_RETURN(e.params, trace::DecodeValues(*params));
    rec.snapshot.events.push_back(std::move(e));
  }
  PTLDB_ASSIGN_OR_RETURN(const json::Json* qv, doc.Get("query_values"));
  PTLDB_ASSIGN_OR_RETURN(rec.snapshot.query_values, trace::DecodeValues(*qv));
  PTLDB_ASSIGN_OR_RETURN(const json::Json* sat, doc.Get("satisfied"));
  rec.satisfied = sat->AsBool();
  if (const json::Json* fired = doc.Find("fired"); fired != nullptr) {
    rec.fired = fired->AsBool();
  }
  rec.has_witness = doc.Find("witness") != nullptr;
  return rec;
}

}  // namespace

Result<ReplayReport> TraceReplay(std::string_view jsonl) {
  ReplayReport report;
  // Group the update records by (rule, params), preserving file order —
  // records are written serially at merge time, so each group's snapshots
  // arrive in state order.
  std::map<std::string, std::vector<ReplayRecord>> groups;
  size_t pos = 0;
  size_t line_no = 0;
  while (pos < jsonl.size()) {
    size_t eol = jsonl.find('\n', pos);
    if (eol == std::string_view::npos) eol = jsonl.size();
    std::string_view line = jsonl.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    PTLDB_ASSIGN_OR_RETURN(json::Json doc, json::Parse(line));
    const json::Json* kind = doc.Find("kind");
    if (kind == nullptr || kind->AsString() != "update") {
      ++report.ignored;
      continue;
    }
    auto rec = ParseUpdateRecord(doc);
    if (!rec.ok()) {
      return Status::ParseError(StrCat("trace line ", line_no, ": ",
                                       rec.status().message()));
    }
    ++report.records;
    if (rec->fired) {
      if (rec->has_witness) {
        ++report.fired_with_witness;
      } else {
        ++report.fired_without_witness;
      }
    }
    PTLDB_ASSIGN_OR_RETURN(const json::Json* rule, doc.Get("rule"));
    std::string key = rule->AsString();
    if (const json::Json* params = doc.Find("params"); params != nullptr) {
      key += '\x1f';
      key += params->AsString();
    }
    groups[key].push_back(std::move(*rec));
  }

  for (auto& [key, records] : groups) {
    std::string label(key.substr(0, key.find('\x1f')));
    if (records.front().step != 1) {
      // The bounded update ring dropped this instance's early history; the
      // naive evaluator cannot reproduce verdicts from a truncated prefix.
      ++report.partial_skipped;
      continue;
    }
    ++report.instances;
    // The recorded condition is the instance's *grounded* condition; parsing
    // and re-analyzing it reproduces the analyzer's slot order, so the
    // recorded query_values land in the right slots.
    PTLDB_ASSIGN_OR_RETURN(ptl::FormulaPtr condition,
                           ptl::ParseFormula(records.front().condition));
    PTLDB_ASSIGN_OR_RETURN(ptl::Analysis analysis,
                           ptl::Analyze(condition));
    ptl::NaiveEvaluator naive(&analysis);
    uint64_t expect_step = 1;
    for (const ReplayRecord& rec : records) {
      if (rec.step != expect_step) {
        ++report.mismatches;
        if (report.details.size() < 32) {
          report.details.push_back(
              StrCat(label, ": history gap — record for step ", rec.step,
                     " follows step ", expect_step - 1));
        }
        break;
      }
      ++expect_step;
      if (analysis.slots.size() != rec.snapshot.query_values.size()) {
        ++report.mismatches;
        if (report.details.size() < 32) {
          report.details.push_back(
              StrCat(label, ": state #", rec.snapshot.seq, " carries ",
                     rec.snapshot.query_values.size(),
                     " query value(s) but the condition has ",
                     analysis.slots.size(), " slot(s)"));
        }
        break;
      }
      naive.Observe(rec.snapshot);
      ++report.steps;
      auto verdict = naive.SatisfiedAtEnd();
      if (!verdict.ok()) {
        ++report.mismatches;
        if (report.details.size() < 32) {
          report.details.push_back(StrCat(label, ": state #",
                                          rec.snapshot.seq, ": naive eval: ",
                                          verdict.status().ToString()));
        }
        break;
      }
      if (*verdict != rec.satisfied) {
        ++report.mismatches;
        if (report.details.size() < 32) {
          report.details.push_back(StrCat(
              label, ": state #", rec.snapshot.seq, ": trace says ",
              rec.satisfied ? "satisfied" : "not satisfied",
              ", naive evaluator says ", *verdict ? "satisfied"
                                                  : "not satisfied"));
        }
      }
    }
  }
  return report;
}

Result<ReplayReport> TraceReplayFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound(StrCat("cannot open trace file '", path, "'"));
  }
  std::string content;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  return TraceReplay(content);
}

}  // namespace ptldb::rules
