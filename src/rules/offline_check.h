// Offline integrity checking over committed history — the §9 experiment.
//
// Theorem 2 of the paper: for conditions that cannot distinguish the states
// an aborted or in-flight transaction contributes (no transaction-control
// event atoms, no real-time bounds, no Lasttime), evaluating over the
// *collapsed committed history* — commit points plus user-event states, with
// begin/abort/attempt-only states dropped — yields the same verdicts as the
// online engine that observed every state as it happened.
//
// `OfflineCheck` re-runs that evaluation after the fact, from durable data
// only: the version store supplies the collapsed state sequence
// (VersionStore::commit_log) and, through `QueryRegistry::EvalAsOf`, the
// value every condition query had at each retained instant (a binary-search
// gather over the columnar histories — no live tables are consulted). Each
// eligible rule's condition is re-parsed and fed to the reference
// ptl::NaiveEvaluator — seeded with a synthetic initial state one tick before
// the first retained instant, because past operators latch on the
// pre-first-commit states the online engine also observed — then the offline
// verdicts are diffed against the online engine's recorded firing stream:
//
//   * Integrity constraints must hold at every retained commit point — the
//     online engine vetoed violating transactions, so a single offline
//     violation is a disagreement. (Vetoed attempts are consistent by
//     absence: they never reached the committed history.)
//   * Level-triggered rules must have fired exactly at the retained states
//     the offline evaluation satisfies. Online firings at *dropped* states
//     (begin/abort/attempt-only) are invisible to the collapsed history by
//     construction and are not comparable, so they are ignored.
//   * Edge-triggered rules: the online edge can land on a dropped state one
//     step before the retained state whose offline verdict flips (PREVIOUSLY
//     shifts satisfaction by one state, and the collapsed sequence is
//     shorter). Each offline false->true edge at retained state T_i is
//     therefore matched against one online firing in the window
//     (T_{i-1}, T_i] — the span of full-history instants that collapse onto
//     state i. An unmatched offline edge is a disagreement; a leftover
//     online firing is consistent on a retained state that satisfies the
//     condition, and a disagreement on a dropped state otherwise. The
//     offline->online direction is skipped (the rule is reported `partial`)
//     when the condition mentions an event atom under negation — such
//     conditions can flip at dropped states, where online edges are
//     invisible to the collapsed history.
//
// Rules the theorem does not cover are skipped, with the reason recorded:
// Lasttime, real-time bounds, begin/abort/attempts_to_commit atoms, temporal
// aggregates (they sum over *all* states, dropped ones included), rule
// families (free variables), generated system rules, and computed queries.

#ifndef PTLDB_RULES_OFFLINE_CHECK_H_
#define PTLDB_RULES_OFFLINE_CHECK_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "rules/engine.h"
#include "temporal/versioning.h"

namespace ptldb::rules {

/// Per-rule outcome of the offline re-evaluation.
struct OfflineRuleReport {
  std::string rule;
  bool is_ic = false;
  bool checked = false;      // false: skipped, see skip_reason
  std::string skip_reason;
  /// Edge-triggered rule with a negated event atom: only the online->offline
  /// direction was verified (see header).
  bool partial = false;
  uint64_t points_evaluated = 0;   // retained states observed
  // Retained states where the stored condition held. For an IC the stored
  // condition is the violation form (the engine negates the constraint), so
  // any nonzero count here is a violation of the constraint itself.
  uint64_t offline_satisfied = 0;
  uint64_t offline_firings = 0;    // firings the offline semantics predicts
  uint64_t online_firings = 0;     // firings the online engine recorded
  std::vector<std::string> disagreements;
};

struct OfflineCheckReport {
  uint64_t retained_states = 0;  // commit points + user-event states
  uint64_t commit_points = 0;
  uint64_t rules_checked = 0;
  uint64_t rules_skipped = 0;
  uint64_t disagreements = 0;
  std::vector<OfflineRuleReport> rules;

  /// Theorem 2 held on this history.
  bool agreed() const { return disagreements == 0; }

  /// Multi-line human-readable rendering (ptldb-top / shell `offline`).
  std::string ToString() const;
};

/// Re-evaluates every registered rule over the collapsed committed history in
/// `store` and diffs the verdicts against `online_firings` (the accumulated
/// Firing stream of `engine`, in execution order). The store must be attached
/// to the same database as the engine and must have been versioning every
/// table the rule conditions query for the whole span of its commit log.
Result<OfflineCheckReport> OfflineCheck(const temporal::VersionStore& store,
                                        const RuleEngine& engine,
                                        const std::vector<Firing>& online_firings);

}  // namespace ptldb::rules

#endif  // PTLDB_RULES_OFFLINE_CHECK_H_
