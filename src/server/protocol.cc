#include "server/protocol.h"

#include <sys/socket.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>

#include "common/codec.h"
#include "common/strings.h"

namespace ptldb::server {

namespace {

void EncodeParamList(const std::vector<std::pair<std::string, Value>>& params,
                     codec::Writer* w) {
  w->U32(static_cast<uint32_t>(params.size()));
  for (const auto& [name, value] : params) {
    w->Str(name);
    w->Val(value);
  }
}

Result<std::vector<std::pair<std::string, Value>>> DecodeParamList(
    codec::Reader* r) {
  PTLDB_ASSIGN_OR_RETURN(uint32_t n, r->U32());
  if (n > r->remaining()) {
    return Status::InvalidArgument("param list arity exceeds payload");
  }
  std::vector<std::pair<std::string, Value>> params;
  params.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    PTLDB_ASSIGN_OR_RETURN(std::string name, r->Str());
    PTLDB_ASSIGN_OR_RETURN(Value value, r->Val());
    params.emplace_back(std::move(name), std::move(value));
  }
  return params;
}

}  // namespace

void EncodeRequest(const Request& req, std::string* out) {
  codec::Writer w(out);
  w.U8(static_cast<uint8_t>(req.type));
  w.U32(req.tag);
  switch (req.type) {
    case MsgType::kHello:
      w.U32(req.version);
      break;
    case MsgType::kPing:
    case MsgType::kTakeFirings:
    case MsgType::kFlush:
    case MsgType::kCheckpoint:
    case MsgType::kStatsDelta:
      break;
    case MsgType::kStats:
      w.U8(static_cast<uint8_t>(req.stats_format));
      break;
    case MsgType::kTraceDump:
      w.U8(static_cast<uint8_t>(req.trace_format));
      w.Bool(req.trace_clear);
      break;
    case MsgType::kTraceCtl:
      w.U8(static_cast<uint8_t>(req.trace_op));
      break;
    case MsgType::kRaiseEvent:
      w.Str(req.event_name);
      w.ValVec(req.event_params);
      break;
    case MsgType::kInsert:
      w.Str(req.table);
      w.ValVec(req.row);
      break;
    case MsgType::kUpdate:
      w.Str(req.table);
      w.U32(static_cast<uint32_t>(req.set.size()));
      for (const auto& [col, expr] : req.set) {
        w.Str(col);
        w.Str(expr);
      }
      w.Str(req.where);
      EncodeParamList(req.params, &w);
      break;
    case MsgType::kDelete:
      w.Str(req.table);
      w.Str(req.where);
      EncodeParamList(req.params, &w);
      break;
    case MsgType::kQuery:
      w.Str(req.sql);
      EncodeParamList(req.params, &w);
      break;
    case MsgType::kQueryAsOf:
      w.Str(req.sql);
      EncodeParamList(req.params, &w);
      w.I64(req.asof_time);
      break;
  }
}

Result<Request> DecodeRequest(std::string_view payload) {
  codec::Reader r(payload);
  Request req;
  PTLDB_ASSIGN_OR_RETURN(uint8_t type_byte, r.U8());
  if (type_byte < static_cast<uint8_t>(MsgType::kHello) ||
      type_byte > static_cast<uint8_t>(MsgType::kQueryAsOf)) {
    return Status::InvalidArgument(
        StrCat("unknown request type ", static_cast<int>(type_byte)));
  }
  req.type = static_cast<MsgType>(type_byte);
  PTLDB_ASSIGN_OR_RETURN(req.tag, r.U32());
  switch (req.type) {
    case MsgType::kHello: {
      PTLDB_ASSIGN_OR_RETURN(req.version, r.U32());
      break;
    }
    case MsgType::kPing:
    case MsgType::kTakeFirings:
    case MsgType::kFlush:
    case MsgType::kCheckpoint:
    case MsgType::kStatsDelta:
      break;
    case MsgType::kStats: {
      PTLDB_ASSIGN_OR_RETURN(uint8_t fmt, r.U8());
      if (fmt > static_cast<uint8_t>(StatsFormat::kPrometheus)) {
        return Status::InvalidArgument(
            StrCat("unknown stats format ", static_cast<int>(fmt)));
      }
      req.stats_format = static_cast<StatsFormat>(fmt);
      break;
    }
    case MsgType::kTraceDump: {
      PTLDB_ASSIGN_OR_RETURN(uint8_t fmt, r.U8());
      if (fmt > static_cast<uint8_t>(TraceFormat::kChrome)) {
        return Status::InvalidArgument(
            StrCat("unknown trace format ", static_cast<int>(fmt)));
      }
      req.trace_format = static_cast<TraceFormat>(fmt);
      PTLDB_ASSIGN_OR_RETURN(uint8_t clear, r.U8());
      if (clear > 1) {
        return Status::InvalidArgument("trace clear flag must be 0 or 1");
      }
      req.trace_clear = clear != 0;
      break;
    }
    case MsgType::kTraceCtl: {
      PTLDB_ASSIGN_OR_RETURN(uint8_t op, r.U8());
      if (op > static_cast<uint8_t>(TraceOp::kClear)) {
        return Status::InvalidArgument(
            StrCat("unknown trace op ", static_cast<int>(op)));
      }
      req.trace_op = static_cast<TraceOp>(op);
      break;
    }
    case MsgType::kRaiseEvent: {
      PTLDB_ASSIGN_OR_RETURN(req.event_name, r.Str());
      PTLDB_ASSIGN_OR_RETURN(req.event_params, r.ValVec());
      break;
    }
    case MsgType::kInsert: {
      PTLDB_ASSIGN_OR_RETURN(req.table, r.Str());
      PTLDB_ASSIGN_OR_RETURN(req.row, r.ValVec());
      break;
    }
    case MsgType::kUpdate: {
      PTLDB_ASSIGN_OR_RETURN(req.table, r.Str());
      PTLDB_ASSIGN_OR_RETURN(uint32_t n, r.U32());
      if (n > r.remaining()) {
        return Status::InvalidArgument("set list arity exceeds payload");
      }
      req.set.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        PTLDB_ASSIGN_OR_RETURN(std::string col, r.Str());
        PTLDB_ASSIGN_OR_RETURN(std::string expr, r.Str());
        req.set.emplace_back(std::move(col), std::move(expr));
      }
      PTLDB_ASSIGN_OR_RETURN(req.where, r.Str());
      PTLDB_ASSIGN_OR_RETURN(req.params, DecodeParamList(&r));
      break;
    }
    case MsgType::kDelete: {
      PTLDB_ASSIGN_OR_RETURN(req.table, r.Str());
      PTLDB_ASSIGN_OR_RETURN(req.where, r.Str());
      PTLDB_ASSIGN_OR_RETURN(req.params, DecodeParamList(&r));
      break;
    }
    case MsgType::kQuery: {
      PTLDB_ASSIGN_OR_RETURN(req.sql, r.Str());
      PTLDB_ASSIGN_OR_RETURN(req.params, DecodeParamList(&r));
      break;
    }
    case MsgType::kQueryAsOf: {
      PTLDB_ASSIGN_OR_RETURN(req.sql, r.Str());
      PTLDB_ASSIGN_OR_RETURN(req.params, DecodeParamList(&r));
      PTLDB_ASSIGN_OR_RETURN(req.asof_time, r.I64());
      break;
    }
  }
  PTLDB_RETURN_IF_ERROR(r.ExpectEnd());
  return req;
}

void EncodeResponse(const Response& resp, std::string* out) {
  codec::Writer w(out);
  w.U32(resp.tag);
  w.U8(static_cast<uint8_t>(resp.code));
  w.Str(resp.message);
  w.U64(resp.applied_seq);
  w.I64(resp.rows);
  w.Str(resp.text);
  w.U32(static_cast<uint32_t>(resp.firings.size()));
  for (const rules::Firing& f : resp.firings) {
    w.Str(f.rule);
    w.Str(f.params);
    w.I64(f.time);
  }
}

Result<Response> DecodeResponse(std::string_view payload) {
  codec::Reader r(payload);
  Response resp;
  PTLDB_ASSIGN_OR_RETURN(resp.tag, r.U32());
  PTLDB_ASSIGN_OR_RETURN(uint8_t code_byte, r.U8());
  if (code_byte > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return Status::InvalidArgument(
        StrCat("unknown status code ", static_cast<int>(code_byte)));
  }
  resp.code = static_cast<StatusCode>(code_byte);
  PTLDB_ASSIGN_OR_RETURN(resp.message, r.Str());
  PTLDB_ASSIGN_OR_RETURN(resp.applied_seq, r.U64());
  PTLDB_ASSIGN_OR_RETURN(resp.rows, r.I64());
  PTLDB_ASSIGN_OR_RETURN(resp.text, r.Str());
  PTLDB_ASSIGN_OR_RETURN(uint32_t n, r.U32());
  if (n > r.remaining()) {
    return Status::InvalidArgument("firing list arity exceeds payload");
  }
  resp.firings.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    rules::Firing f;
    PTLDB_ASSIGN_OR_RETURN(f.rule, r.Str());
    PTLDB_ASSIGN_OR_RETURN(f.params, r.Str());
    PTLDB_ASSIGN_OR_RETURN(f.time, r.I64());
    resp.firings.push_back(std::move(f));
  }
  PTLDB_RETURN_IF_ERROR(r.ExpectEnd());
  return resp;
}

namespace {

/// Reads exactly `n` bytes. Returns the byte count actually read before a
/// clean EOF (so the caller can distinguish boundary EOF from a torn frame)
/// or Internal on a socket error.
Result<size_t> ReadFull(int fd, char* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = recv(fd, buf + got, n - got, 0);
    if (r == 0) return got;
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrCat("recv: ", std::strerror(errno)));
    }
    got += static_cast<size_t>(r);
  }
  return got;
}

}  // namespace

Status ReadFrame(int fd, std::string* payload, uint32_t max_len) {
  char hdr[4];
  PTLDB_ASSIGN_OR_RETURN(size_t got, ReadFull(fd, hdr, sizeof hdr));
  if (got == 0) return Status::NotFound("connection closed");
  if (got < sizeof hdr) {
    return Status::InvalidArgument("torn frame: EOF inside length prefix");
  }
  uint32_t len;
  std::memcpy(&len, hdr, sizeof len);
  if (len == 0) return Status::InvalidArgument("zero-length frame");
  if (len > max_len) {
    return Status::InvalidArgument(
        StrCat("frame length ", len, " exceeds limit ", max_len));
  }
  payload->resize(len);
  PTLDB_ASSIGN_OR_RETURN(got, ReadFull(fd, payload->data(), len));
  if (got < len) {
    return Status::InvalidArgument("torn frame: EOF inside payload");
  }
  return Status::OK();
}

Status WriteFrame(int fd, std::string_view payload, uint32_t max_len) {
  if (payload.empty() || payload.size() > max_len) {
    return Status::InvalidArgument("frame payload size out of range");
  }
  uint32_t len = static_cast<uint32_t>(payload.size());
  std::string buf;
  buf.reserve(sizeof len + payload.size());
  buf.append(reinterpret_cast<const char*>(&len), sizeof len);
  buf.append(payload);
  size_t sent = 0;
  while (sent < buf.size()) {
    ssize_t w = send(fd, buf.data() + sent, buf.size() - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrCat("send: ", std::strerror(errno)));
    }
    sent += static_cast<size_t>(w);
  }
  return Status::OK();
}

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kHello:
      return "hello";
    case MsgType::kPing:
      return "ping";
    case MsgType::kRaiseEvent:
      return "raise_event";
    case MsgType::kInsert:
      return "insert";
    case MsgType::kUpdate:
      return "update";
    case MsgType::kDelete:
      return "delete";
    case MsgType::kQuery:
      return "query";
    case MsgType::kTakeFirings:
      return "take_firings";
    case MsgType::kStats:
      return "stats";
    case MsgType::kFlush:
      return "flush";
    case MsgType::kCheckpoint:
      return "checkpoint";
    case MsgType::kStatsDelta:
      return "stats_delta";
    case MsgType::kTraceDump:
      return "trace_dump";
    case MsgType::kTraceCtl:
      return "trace_ctl";
    case MsgType::kQueryAsOf:
      return "query_asof";
  }
  return "?";
}

}  // namespace ptldb::server
