#include "server/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/json.h"
#include "common/strings.h"
#include "storage/group_commit.h"

namespace ptldb::server {

namespace {

/// Pipeline stamps use the same steady-clock origin as trace spans so the
/// slow-event log and a Chrome trace dump line up on one time axis.
uint64_t NowNs() { return trace::Recorder::NowNs(); }

}  // namespace

Server::Server(ServerOptions options, db::Database* db,
               rules::RuleEngine* engine, storage::DurabilityManager* mgr)
    : options_(std::move(options)), db_(db), engine_(engine), mgr_(mgr) {
  if (options_.max_batch == 0) options_.max_batch = 1;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.slow_threshold_us > 0) {
    slow_threshold_ns_ = options_.slow_threshold_us * 1000;
  }
  // Per-event stamping is one knob: either consumer (stage histograms or the
  // slow-event log) turns it on; with both off the serving path reads no
  // clocks at all (E16 holds observability-off to the PR 7 baseline).
  observe_ = options_.metrics != nullptr || slow_threshold_ns_ > 0;
  if (options_.metrics != nullptr) {
    Metrics& m = *options_.metrics;
    g_queue_depth_ = &m.gauge("server.queue_depth");
    g_sessions_ = &m.gauge("server.sessions_active");
    c_requests_ = &m.counter("server.requests");
    c_batches_ = &m.counter("server.batches");
    c_rejections_ = &m.counter("server.busy_rejections");
    c_acked_ = &m.counter("server.acked");
    c_slow_ = &m.counter("server.slow_events");
    h_batch_size_ = &m.histogram("server.batch_size");
    h_stage_read_ = &m.histogram("server.stage.read_ns");
    h_stage_queue_ = &m.histogram("server.stage.queue_ns");
    h_stage_batch_ = &m.histogram("server.stage.batch_ns");
    h_stage_apply_ = &m.histogram("server.stage.apply_ns");
    h_stage_eval_ = &m.histogram("server.stage.eval_ns");
    h_stage_commit_ = &m.histogram("server.stage.commit_ns");
    h_stage_ack_ = &m.histogram("server.stage.ack_ns");
    h_wire_to_ack_ = &m.histogram("server.wire_to_ack_ns");
  }
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.exchange(true)) {
    return Status::InvalidArgument("server already started");
  }
  if (slow_threshold_ns_ > 0) {
    if (options_.slow_log_path.empty()) {
      slow_log_ = stderr;
    } else {
      slow_log_ = std::fopen(options_.slow_log_path.c_str(), "a");
      if (slow_log_ == nullptr) {
        running_.store(false);
        return Status::InvalidArgument(
            StrCat("cannot open slow-event log '", options_.slow_log_path,
                   "' for appending"));
      }
    }
  }
  start_ns_ = NowNs();
  int lfd = socket(AF_INET, SOCK_STREAM, 0);
  if (lfd < 0) {
    return Status::Internal(StrCat("socket: ", std::strerror(errno)));
  }
  int one = 1;
  setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    close(lfd);
    return Status::Internal(StrCat("bind: ", std::strerror(errno)));
  }
  if (listen(lfd, 64) < 0) {
    close(lfd);
    return Status::Internal(StrCat("listen: ", std::strerror(errno)));
  }
  socklen_t addr_len = sizeof addr;
  if (getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &addr_len) < 0) {
    close(lfd);
    return Status::Internal(StrCat("getsockname: ", std::strerror(errno)));
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_.store(lfd);
  if (options_.max_batch > 1) engine_->SetBatching(options_.max_batch);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  engine_thread_ = std::thread([this] { EngineLoop(); });
  return Status::OK();
}

void Server::Stop() {
  if (!running_.load()) return;
  stopping_.store(true);
  // Wake the accept thread: closing the listening socket fails its accept().
  int lfd = listen_fd_.exchange(-1);
  if (lfd >= 0) {
    shutdown(lfd, SHUT_RDWR);
    close(lfd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Wake readers blocked in recv (or in a blocked response send); those
  // blocked on a full queue see stopping_ via the push predicate.
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& s : sessions_) {
      std::lock_guard<std::mutex> wlock(s->write_mu);
      if (s->fd >= 0) shutdown(s->fd, SHUT_RDWR);
    }
  }
  queue_nonfull_.notify_all();
  for (auto& t : reader_threads_) {
    if (t.joinable()) t.join();
  }
  // The engine thread drains whatever the readers admitted, then exits.
  queue_nonempty_.notify_all();
  if (engine_thread_.joinable()) engine_thread_.join();
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& s : sessions_) CloseSession(s.get());
    sessions_.clear();
  }
  if (slow_log_ != nullptr) {
    if (slow_log_ != stderr) std::fclose(slow_log_);
    slow_log_ = nullptr;
  }
}

std::vector<rules::Firing> Server::TakeFirings() {
  std::lock_guard<std::mutex> lock(firings_mu_);
  std::vector<rules::Firing> out = std::move(firing_log_);
  firing_log_.clear();
  return out;
}

void Server::AcceptLoop() {
  while (!stopping_.load()) {
    int fd = accept(listen_fd_.load(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket closed (Stop) or fatal
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto session = std::make_shared<Session>();
    session->fd = fd;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      if (stopping_.load()) {
        close(fd);
        break;
      }
      session->id = next_session_id_++;
      sessions_.push_back(session);
      reader_threads_.emplace_back(
          [this, session] { ReaderLoop(session); });
      if (g_sessions_ != nullptr) g_sessions_->Add(1);
    }
  }
}

void Server::ReaderLoop(std::shared_ptr<Session> session) {
  std::string payload;
  while (!stopping_.load() && !session->closed.load()) {
    Status s = ReadFrame(session->fd, &payload);
    if (!s.ok()) {
      // Clean close (NotFound), torn stream, or malformed frame: a protocol
      // error is answered best-effort, then the connection dies. The store
      // is untouched — nothing was admitted.
      if (s.code() != StatusCode::kNotFound && !stopping_.load()) {
        Response err;
        err.code = s.code();
        err.message = s.message();
        SendResponse(session.get(), err);
      }
      break;
    }
    // The wire-to-ack clock starts the moment the frame is off the socket:
    // decode cost and admission-control waiting are charged to the read
    // stage, not hidden before it.
    const uint64_t t_read_ns = observe_ ? NowNs() : 0;
    Result<Request> req = DecodeRequest(payload);
    if (!req.ok()) {
      Response err;
      err.code = req.status().code();
      err.message = req.status().message();
      SendResponse(session.get(), err);
      break;
    }
    MetricAdd(c_requests_);
    // Admission: block on the bounded queue (TCP backpressure) or reject.
    // Handshakes are exempt from shedding — a client treats a failed kHello
    // as a failed connection, not a retryable request, so under overload a
    // hello waits (blocking path) rather than being bounced.
    std::unique_lock<std::mutex> lock(queue_mu_);
    if (options_.reject_when_full && queue_.size() >= options_.queue_capacity &&
        req.value().type != MsgType::kHello && !stopping_.load()) {
      lock.unlock();
      rejections_total_.fetch_add(1, std::memory_order_relaxed);
      MetricAdd(c_rejections_);
      Response busy;
      busy.tag = req.value().tag;
      busy.code = StatusCode::kUnavailable;
      busy.message = "server overloaded, retry";
      SendResponse(session.get(), busy);
      continue;
    }
    queue_nonfull_.wait(lock, [&] {
      return queue_.size() < options_.queue_capacity || stopping_.load();
    });
    Work work;
    work.req = std::move(req).value();
    work.session = session;
    work.t_read_ns = t_read_ns;
    work.t_enq_ns = observe_ ? NowNs() : 0;
    queue_.push_back(std::move(work));
    requests_admitted_.fetch_add(1, std::memory_order_relaxed);
    MetricSet(g_queue_depth_, static_cast<int64_t>(queue_.size()));
    lock.unlock();
    queue_nonempty_.notify_one();
  }
  CloseSession(session.get());
}

bool Server::NextBatch(std::vector<Work>* batch) {
  std::unique_lock<std::mutex> lock(queue_mu_);
  queue_nonempty_.wait(lock,
                       [&] { return !queue_.empty() || stopping_.load(); });
  if (queue_.empty()) return false;  // stopping and fully drained
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(options_.batch_delay_us);
  // One dequeue stamp per wakeup, not per item: requests drained in the same
  // burst left the queue at the same moment for latency purposes.
  uint64_t t_deq_ns = observe_ ? NowNs() : 0;
  while (batch->size() < options_.max_batch) {
    if (!queue_.empty()) {
      batch->push_back(std::move(queue_.front()));
      batch->back().t_deq_ns = t_deq_ns;
      queue_.pop_front();
      continue;
    }
    // Queue drained below max_batch: wait out the latency bound for
    // stragglers so group commit has company, but never past the deadline.
    if (options_.batch_delay_us <= 0 || stopping_.load()) break;
    if (!queue_nonempty_.wait_until(lock, deadline, [&] {
          return !queue_.empty() || stopping_.load();
        })) {
      break;  // deadline hit with nothing new
    }
    if (queue_.empty()) break;  // woken by stopping_
    t_deq_ns = observe_ ? NowNs() : 0;
  }
  last_queue_depth_ = queue_.size();
  MetricSet(g_queue_depth_, static_cast<int64_t>(queue_.size()));
  lock.unlock();
  queue_nonfull_.notify_all();
  return true;
}

void Server::EngineLoop() {
  std::vector<Work> batch;
  std::vector<Response> resps;
  while (true) {
    batch.clear();
    resps.clear();
    if (!NextBatch(&batch)) break;
    trace::ScopedSpan batch_span(options_.trace, trace::SpanKind::kServerBatch,
                                 "server_batch");
    const uint64_t t_batch_ns = observe_ ? NowNs() : 0;
    resps.resize(batch.size());
    {
      trace::ScopedSpan apply_span(options_.trace,
                                   trace::SpanKind::kServerApply,
                                   "server_apply");
      for (size_t i = 0; i < batch.size(); ++i) {
        ApplyRequest(batch[i], &resps[i]);
      }
    }
    const uint64_t apply_end_ns = observe_ ? NowNs() : 0;
    uint64_t eval_ns = 0;
    uint64_t commit_ns = 0;
    FinishBatch(&batch, &resps, apply_end_ns, &eval_ns, &commit_ns);
    // By construction (FinishBatch splits against apply_end_ns) this is the
    // exact commit-end boundary, so per-event stages tile [t_read, t_ack].
    const uint64_t commit_end_ns = apply_end_ns + eval_ns + commit_ns;
    MetricAdd(c_batches_);
    MetricObserve(h_batch_size_, batch.size());
    {
      trace::ScopedSpan ack_span(options_.trace, trace::SpanKind::kServerAck,
                                 "server_ack");
      for (size_t i = 0; i < batch.size(); ++i) {
        SendResponse(batch[i].session.get(), resps[i]);
        MetricAdd(c_acked_);
        if (observe_) {
          ObserveRequest(batch[i], resps[i], t_batch_ns, apply_end_ns,
                         eval_ns, commit_ns, commit_end_ns, NowNs(),
                         batch.size());
        }
      }
    }
    if (batch_span.active()) {
      const uint64_t rejections =
          rejections_total_.load(std::memory_order_relaxed);
      batch_span.set_detail(StrCat("batch=", batch.size(),
                                   " queue_depth=", last_queue_depth_,
                                   " shed=",
                                   rejections - last_rejections_seen_));
      last_rejections_seen_ = rejections;
    }
  }
}

void Server::ApplyRequest(Work& work, Response* resp) {
  const Request& req = work.req;
  resp->tag = req.tag;
  Status s = Status::OK();
  switch (req.type) {
    case MsgType::kHello:
      if (req.version != kProtocolVersion) {
        s = Status::InvalidArgument(StrCat("protocol version ", req.version,
                                           " unsupported; server speaks ",
                                           kProtocolVersion));
      }
      break;
    case MsgType::kPing:
      break;  // the batch barrier is the whole point
    case MsgType::kRaiseEvent:
      s = db_->RaiseEvent(event::Event{req.event_name, req.event_params});
      break;
    case MsgType::kInsert:
      s = db_->InsertRow(req.table, req.row);
      break;
    case MsgType::kUpdate:
    case MsgType::kDelete: {
      db::ParamMap params;
      for (const auto& [name, value] : req.params) params[name] = value;
      Result<size_t> n =
          req.type == MsgType::kUpdate
              ? db_->UpdateRows(req.table, req.set, req.where, &params)
              : db_->DeleteRows(req.table, req.where, &params);
      if (n.ok()) {
        resp->rows = static_cast<int64_t>(n.value());
      } else {
        s = n.status();
      }
      break;
    }
    case MsgType::kQuery:
    case MsgType::kQueryAsOf: {
      // Reads observe the engine mid-batch: flush deferred evaluation first
      // so triggered actions' effects are visible, matching the unbatched
      // library semantics request-for-request. (An AS OF read needs the
      // flush too: the target time may be the current commit point, whose
      // history rows materialize only once the batch lands.)
      s = engine_->Flush();
      if (s.ok()) {
        db::ParamMap params;
        for (const auto& [name, value] : req.params) params[name] = value;
        Result<db::Relation> rel =
            req.type == MsgType::kQueryAsOf
                ? db_->QuerySqlAsOf(req.sql, req.asof_time, &params)
                : db_->QuerySql(req.sql, &params);
        if (rel.ok()) {
          resp->rows = static_cast<int64_t>(rel.value().size());
          resp->text = rel.value().ToString();
        } else {
          s = rel.status();
        }
      }
      break;
    }
    case MsgType::kTakeFirings: {
      s = engine_->Flush();
      if (s.ok()) {
        std::lock_guard<std::mutex> lock(firings_mu_);
        auto fresh = engine_->TakeFirings();
        firing_log_.insert(firing_log_.end(),
                           std::make_move_iterator(fresh.begin()),
                           std::make_move_iterator(fresh.end()));
        resp->firings = std::move(firing_log_);
        firing_log_.clear();
      }
      break;
    }
    case MsgType::kStats:
      // Flush first so engine-side counters reflect everything admitted
      // before this request; then snapshot in the requested exposition.
      s = engine_->Flush();
      if (s.ok()) {
        if (options_.metrics == nullptr) {
          resp->text =
              req.stats_format == StatsFormat::kPrometheus ? "" : "{}";
        } else if (req.stats_format == StatsFormat::kPrometheus) {
          resp->text = options_.metrics->ToPrometheus();
        } else {
          resp->text = options_.metrics->ToJson();
        }
      }
      break;
    case MsgType::kStatsDelta:
      s = engine_->Flush();
      if (s.ok()) s = ApplyStatsDelta(work, resp);
      break;
    case MsgType::kTraceDump:
      s = ApplyTraceDump(req, resp);
      break;
    case MsgType::kTraceCtl:
      s = ApplyTraceCtl(req, resp);
      break;
    case MsgType::kFlush:
      s = engine_->Flush();
      break;
    case MsgType::kCheckpoint:
      s = engine_->Flush();
      if (s.ok()) {
        s = mgr_ != nullptr
                ? mgr_->Checkpoint()
                : Status::InvalidArgument("server runs without durability");
      }
      break;
  }
  resp->applied_seq = db_->history().size();
  if (!s.ok()) {
    resp->code = s.code();
    resp->message = s.message();
  }
}

Status Server::ApplyStatsDelta(Work& work, Response* resp) {
  if (options_.metrics == nullptr) {
    resp->text = "{\"window_ns\": 0, \"stats\": {}}";
    return Status::OK();
  }
  Session* session = work.session.get();
  const uint64_t now = NowNs();
  MetricsSnapshot snap = options_.metrics->TakeSnapshot();
  std::string stats_json;
  uint64_t window_ns = 0;
  if (session->last_stats != nullptr) {
    stats_json = snap.DeltaSince(*session->last_stats).ToJson();
    window_ns = now - session->last_stats_ns;
  } else {
    // First poll on this session: the window is the server's whole uptime
    // and the "delta" is the full snapshot.
    stats_json = snap.ToJson();
    window_ns = now - start_ns_;
  }
  session->last_stats = std::make_unique<MetricsSnapshot>(std::move(snap));
  session->last_stats_ns = now;
  resp->text = StrCat("{\"window_ns\": ", window_ns, ", \"stats\": ",
                      stats_json, "}");
  return Status::OK();
}

Status Server::ApplyTraceDump(const Request& req, Response* resp) {
  trace::Recorder* rec = options_.trace;
  if (rec == nullptr) {
    return Status::InvalidArgument("server runs without a trace recorder");
  }
  // The engine thread is the only span writer on a running server, so
  // exporting from here satisfies the recorder's quiescence requirement.
  std::string dump = req.trace_format == TraceFormat::kChrome
                         ? rec->ToChromeTrace()
                         : rec->ToJsonl();
  constexpr size_t kResponseSlack = 4096;  // tag/code/length framing
  if (dump.size() > kMaxResponseFrameLen - kResponseSlack) {
    return Status::Internal(
        StrCat("trace dump of ", dump.size(),
               " bytes exceeds the response frame bound; clear the ring "
               "(TRACE_DUMP clear=1) or shrink its capacity"));
  }
  if (req.trace_clear) rec->Clear();
  resp->text = std::move(dump);
  return Status::OK();
}

Status Server::ApplyTraceCtl(const Request& req, Response* resp) {
  trace::Recorder* rec = options_.trace;
  if (rec == nullptr) {
    return Status::InvalidArgument("server runs without a trace recorder");
  }
  switch (req.trace_op) {
    case TraceOp::kStatus:
      break;
    case TraceOp::kEnable:
      rec->Enable();
      break;
    case TraceOp::kDisable:
      rec->Disable();
      break;
    case TraceOp::kClear:
      rec->Clear();
      break;
  }
  json::Json j = json::Json::Object();
  j.Set("enabled", json::Json::Bool(rec->enabled()));
  j.Set("spans", json::Json::UInt(rec->span_count()));
  j.Set("dropped_spans", json::Json::UInt(rec->dropped_spans()));
  j.Set("updates", json::Json::UInt(rec->update_count()));
  j.Set("dropped_updates", json::Json::UInt(rec->dropped_updates()));
  resp->text = j.Dump();
  return Status::OK();
}

void Server::FinishBatch(std::vector<Work>* batch,
                         std::vector<Response>* resps, uint64_t apply_end_ns,
                         uint64_t* eval_ns, uint64_t* commit_ns) {
  Status s = engine_->Flush();
  if (s.ok()) {
    std::lock_guard<std::mutex> lock(firings_mu_);
    auto fresh = engine_->TakeFirings();
    firing_log_.insert(firing_log_.end(),
                       std::make_move_iterator(fresh.begin()),
                       std::make_move_iterator(fresh.end()));
  }
  // Action errors are per-rule, not per-request (a batched action cannot be
  // attributed to one frame); drain them so they don't accumulate.
  (void)engine_->TakeErrors();
  const uint64_t eval_end_ns = observe_ ? NowNs() : 0;
  if (observe_) *eval_ns = eval_end_ns - apply_end_ns;
  // One barrier retires every commit in the batch (group commit). A barrier
  // failure poisons every OK ack in the batch: those writes applied in
  // memory but their durability is unknown, and acking them would break the
  // acked-implies-durable contract the soak test enforces.
  if (s.ok() && mgr_ != nullptr) {
    storage::GroupCommitter* group = mgr_->group();
    const uint64_t syncs_before =
        group != nullptr ? group->stats().sync_batches : 0;
    trace::ScopedSpan commit_span(options_.trace,
                                  trace::SpanKind::kServerCommit,
                                  "server_commit");
    s = mgr_->WaitWalDurable();
    if (commit_span.active() && group != nullptr) {
      // Leader issued the fsync for this group; a follower found the tail
      // already durable (someone else's sync covered it).
      commit_span.set_detail(group->stats().sync_batches > syncs_before
                                 ? "role=leader"
                                 : "role=follower");
    }
  }
  if (observe_) *commit_ns = NowNs() - eval_end_ns;
  if (!s.ok()) {
    for (size_t i = 0; i < batch->size(); ++i) {
      Response& r = (*resps)[i];
      if (r.code == StatusCode::kOk) {
        r.code = s.code();
        r.message = StrCat("durability barrier failed: ", s.message());
      }
    }
  }
}

void Server::ObserveRequest(const Work& work, const Response& resp,
                            uint64_t t_batch_ns, uint64_t t_apply_end_ns,
                            uint64_t eval_ns, uint64_t commit_ns,
                            uint64_t commit_end_ns, uint64_t t_ack_ns,
                            size_t batch_size) {
  // The seven stages tile [t_read, t_ack] exactly: every boundary is used
  // once as an end and once as the next start, so read+queue+batch+apply+
  // eval+commit+ack == total by construction (observability_test pins it).
  const uint64_t read_ns = work.t_enq_ns - work.t_read_ns;
  const uint64_t queue_ns = work.t_deq_ns - work.t_enq_ns;
  const uint64_t batch_ns = t_batch_ns - work.t_deq_ns;
  const uint64_t apply_ns = t_apply_end_ns - t_batch_ns;
  const uint64_t ack_ns = t_ack_ns - commit_end_ns;
  const uint64_t total_ns = t_ack_ns - work.t_read_ns;
  MetricObserve(h_stage_read_, read_ns);
  MetricObserve(h_stage_queue_, queue_ns);
  MetricObserve(h_stage_batch_, batch_ns);
  MetricObserve(h_stage_apply_, apply_ns);
  MetricObserve(h_stage_eval_, eval_ns);
  MetricObserve(h_stage_commit_, commit_ns);
  MetricObserve(h_stage_ack_, ack_ns);
  MetricObserve(h_wire_to_ack_, total_ns);
  if (slow_threshold_ns_ > 0 && slow_log_ != nullptr &&
      total_ns >= static_cast<uint64_t>(slow_threshold_ns_)) {
    MetricAdd(c_slow_);
    // All fields are integers or fixed enum names — no JSON escaping needed.
    std::string line = StrCat(
        "{\"t_us\": ", (work.t_read_ns - start_ns_) / 1000,
        ", \"session\": ", work.session->id, ", \"tag\": ", work.req.tag,
        ", \"type\": \"", MsgTypeName(work.req.type),
        "\", \"code\": ", static_cast<int>(resp.code),
        ", \"batch\": ", batch_size, ", \"total_ns\": ", total_ns,
        ", \"stages\": {\"read\": ", read_ns, ", \"queue\": ", queue_ns,
        ", \"batch\": ", batch_ns, ", \"apply\": ", apply_ns,
        ", \"eval\": ", eval_ns, ", \"commit\": ", commit_ns,
        ", \"ack\": ", ack_ns, "}}\n");
    std::fwrite(line.data(), 1, line.size(), slow_log_);
    std::fflush(slow_log_);
  }
}

void Server::SendResponse(Session* session, const Response& resp) {
  if (session->closed.load()) return;
  std::string payload;
  EncodeResponse(resp, &payload);
  std::lock_guard<std::mutex> lock(session->write_mu);
  if (session->closed.load()) return;
  // A dead peer (mid-stream disconnect) surfaces here; the session is torn
  // down and remaining responses for it are dropped on the floor. Admin
  // responses (stats, trace dumps) outgrow request frames, hence the bound.
  if (!WriteFrame(session->fd, payload, kMaxResponseFrameLen).ok()) {
    session->closed.store(true);
    shutdown(session->fd, SHUT_RDWR);
  }
}

void Server::CloseSession(Session* session) {
  session->closed.store(true);
  std::lock_guard<std::mutex> lock(session->write_mu);
  if (session->fd >= 0) {
    shutdown(session->fd, SHUT_RDWR);
    close(session->fd);
    session->fd = -1;
    if (g_sessions_ != nullptr) g_sessions_->Add(-1);
  }
}

}  // namespace ptldb::server
