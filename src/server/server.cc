#include "server/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/strings.h"

namespace ptldb::server {

namespace {

/// Observes a value (not a duration) into a histogram — batch sizes reuse
/// the nanosecond buckets as plain power-of-two counts.
void ObserveValue(Metrics::Histogram* h, uint64_t v) {
  if (h != nullptr) h->Observe(v);
}

}  // namespace

Server::Server(ServerOptions options, db::Database* db,
               rules::RuleEngine* engine, storage::DurabilityManager* mgr)
    : options_(std::move(options)), db_(db), engine_(engine), mgr_(mgr) {
  if (options_.max_batch == 0) options_.max_batch = 1;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.metrics != nullptr) {
    Metrics& m = *options_.metrics;
    g_queue_depth_ = &m.gauge("server.queue_depth");
    g_sessions_ = &m.gauge("server.sessions_active");
    c_requests_ = &m.counter("server.requests");
    c_batches_ = &m.counter("server.batches");
    c_rejections_ = &m.counter("server.busy_rejections");
    h_batch_size_ = &m.histogram("server.batch_size");
  }
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.exchange(true)) {
    return Status::InvalidArgument("server already started");
  }
  int lfd = socket(AF_INET, SOCK_STREAM, 0);
  if (lfd < 0) {
    return Status::Internal(StrCat("socket: ", std::strerror(errno)));
  }
  int one = 1;
  setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    close(lfd);
    return Status::Internal(StrCat("bind: ", std::strerror(errno)));
  }
  if (listen(lfd, 64) < 0) {
    close(lfd);
    return Status::Internal(StrCat("listen: ", std::strerror(errno)));
  }
  socklen_t addr_len = sizeof addr;
  if (getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &addr_len) < 0) {
    close(lfd);
    return Status::Internal(StrCat("getsockname: ", std::strerror(errno)));
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_.store(lfd);
  if (options_.max_batch > 1) engine_->SetBatching(options_.max_batch);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  engine_thread_ = std::thread([this] { EngineLoop(); });
  return Status::OK();
}

void Server::Stop() {
  if (!running_.load()) return;
  stopping_.store(true);
  // Wake the accept thread: closing the listening socket fails its accept().
  int lfd = listen_fd_.exchange(-1);
  if (lfd >= 0) {
    shutdown(lfd, SHUT_RDWR);
    close(lfd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Wake readers blocked in recv (or in a blocked response send); those
  // blocked on a full queue see stopping_ via the push predicate.
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& s : sessions_) {
      std::lock_guard<std::mutex> wlock(s->write_mu);
      if (s->fd >= 0) shutdown(s->fd, SHUT_RDWR);
    }
  }
  queue_nonfull_.notify_all();
  for (auto& t : reader_threads_) {
    if (t.joinable()) t.join();
  }
  // The engine thread drains whatever the readers admitted, then exits.
  queue_nonempty_.notify_all();
  if (engine_thread_.joinable()) engine_thread_.join();
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& s : sessions_) CloseSession(s.get());
    sessions_.clear();
  }
}

std::vector<rules::Firing> Server::TakeFirings() {
  std::lock_guard<std::mutex> lock(firings_mu_);
  std::vector<rules::Firing> out = std::move(firing_log_);
  firing_log_.clear();
  return out;
}

void Server::AcceptLoop() {
  while (!stopping_.load()) {
    int fd = accept(listen_fd_.load(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket closed (Stop) or fatal
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto session = std::make_shared<Session>();
    session->fd = fd;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      if (stopping_.load()) {
        close(fd);
        break;
      }
      session->id = next_session_id_++;
      sessions_.push_back(session);
      reader_threads_.emplace_back(
          [this, session] { ReaderLoop(session); });
      if (g_sessions_ != nullptr) g_sessions_->Add(1);
    }
  }
}

void Server::ReaderLoop(std::shared_ptr<Session> session) {
  std::string payload;
  while (!stopping_.load() && !session->closed.load()) {
    Status s = ReadFrame(session->fd, &payload);
    if (!s.ok()) {
      // Clean close (NotFound), torn stream, or malformed frame: a protocol
      // error is answered best-effort, then the connection dies. The store
      // is untouched — nothing was admitted.
      if (s.code() != StatusCode::kNotFound && !stopping_.load()) {
        Response err;
        err.code = s.code();
        err.message = s.message();
        SendResponse(session.get(), err);
      }
      break;
    }
    Result<Request> req = DecodeRequest(payload);
    if (!req.ok()) {
      Response err;
      err.code = req.status().code();
      err.message = req.status().message();
      SendResponse(session.get(), err);
      break;
    }
    MetricAdd(c_requests_);
    // Admission: block on the bounded queue (TCP backpressure) or reject.
    // Handshakes are exempt from shedding — a client treats a failed kHello
    // as a failed connection, not a retryable request, so under overload a
    // hello waits (blocking path) rather than being bounced.
    std::unique_lock<std::mutex> lock(queue_mu_);
    if (options_.reject_when_full && queue_.size() >= options_.queue_capacity &&
        req.value().type != MsgType::kHello && !stopping_.load()) {
      lock.unlock();
      MetricAdd(c_rejections_);
      Response busy;
      busy.tag = req.value().tag;
      busy.code = StatusCode::kUnavailable;
      busy.message = "server overloaded, retry";
      SendResponse(session.get(), busy);
      continue;
    }
    queue_nonfull_.wait(lock, [&] {
      return queue_.size() < options_.queue_capacity || stopping_.load();
    });
    queue_.push_back(Work{std::move(req).value(), session});
    requests_admitted_.fetch_add(1, std::memory_order_relaxed);
    MetricSet(g_queue_depth_, static_cast<int64_t>(queue_.size()));
    lock.unlock();
    queue_nonempty_.notify_one();
  }
  CloseSession(session.get());
}

bool Server::NextBatch(std::vector<Work>* batch) {
  std::unique_lock<std::mutex> lock(queue_mu_);
  queue_nonempty_.wait(lock,
                       [&] { return !queue_.empty() || stopping_.load(); });
  if (queue_.empty()) return false;  // stopping and fully drained
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(options_.batch_delay_us);
  while (batch->size() < options_.max_batch) {
    if (!queue_.empty()) {
      batch->push_back(std::move(queue_.front()));
      queue_.pop_front();
      continue;
    }
    // Queue drained below max_batch: wait out the latency bound for
    // stragglers so group commit has company, but never past the deadline.
    if (options_.batch_delay_us <= 0 || stopping_.load()) break;
    if (!queue_nonempty_.wait_until(lock, deadline, [&] {
          return !queue_.empty() || stopping_.load();
        })) {
      break;  // deadline hit with nothing new
    }
    if (queue_.empty()) break;  // woken by stopping_
  }
  MetricSet(g_queue_depth_, static_cast<int64_t>(queue_.size()));
  lock.unlock();
  queue_nonfull_.notify_all();
  return true;
}

void Server::EngineLoop() {
  std::vector<Work> batch;
  std::vector<Response> resps;
  while (true) {
    batch.clear();
    resps.clear();
    if (!NextBatch(&batch)) break;
    resps.resize(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      ApplyRequest(batch[i].req, &resps[i]);
    }
    FinishBatch(&batch, &resps);
    MetricAdd(c_batches_);
    ObserveValue(h_batch_size_, batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      SendResponse(batch[i].session.get(), resps[i]);
    }
  }
}

void Server::ApplyRequest(const Request& req, Response* resp) {
  resp->tag = req.tag;
  Status s = Status::OK();
  switch (req.type) {
    case MsgType::kHello:
      if (req.version != kProtocolVersion) {
        s = Status::InvalidArgument(StrCat("protocol version ", req.version,
                                           " unsupported; server speaks ",
                                           kProtocolVersion));
      }
      break;
    case MsgType::kPing:
      break;  // the batch barrier is the whole point
    case MsgType::kRaiseEvent:
      s = db_->RaiseEvent(event::Event{req.event_name, req.event_params});
      break;
    case MsgType::kInsert:
      s = db_->InsertRow(req.table, req.row);
      break;
    case MsgType::kUpdate:
    case MsgType::kDelete: {
      db::ParamMap params;
      for (const auto& [name, value] : req.params) params[name] = value;
      Result<size_t> n =
          req.type == MsgType::kUpdate
              ? db_->UpdateRows(req.table, req.set, req.where, &params)
              : db_->DeleteRows(req.table, req.where, &params);
      if (n.ok()) {
        resp->rows = static_cast<int64_t>(n.value());
      } else {
        s = n.status();
      }
      break;
    }
    case MsgType::kQuery: {
      // Reads observe the engine mid-batch: flush deferred evaluation first
      // so triggered actions' effects are visible, matching the unbatched
      // library semantics request-for-request.
      s = engine_->Flush();
      if (s.ok()) {
        db::ParamMap params;
        for (const auto& [name, value] : req.params) params[name] = value;
        Result<db::Relation> rel = db_->QuerySql(req.sql, &params);
        if (rel.ok()) {
          resp->rows = static_cast<int64_t>(rel.value().size());
          resp->text = rel.value().ToString();
        } else {
          s = rel.status();
        }
      }
      break;
    }
    case MsgType::kTakeFirings: {
      s = engine_->Flush();
      if (s.ok()) {
        std::lock_guard<std::mutex> lock(firings_mu_);
        auto fresh = engine_->TakeFirings();
        firing_log_.insert(firing_log_.end(),
                           std::make_move_iterator(fresh.begin()),
                           std::make_move_iterator(fresh.end()));
        resp->firings = std::move(firing_log_);
        firing_log_.clear();
      }
      break;
    }
    case MsgType::kStats:
      s = engine_->Flush();
      if (s.ok()) {
        resp->text =
            options_.metrics != nullptr ? options_.metrics->ToJson() : "{}";
      }
      break;
    case MsgType::kFlush:
      s = engine_->Flush();
      break;
    case MsgType::kCheckpoint:
      s = engine_->Flush();
      if (s.ok()) {
        s = mgr_ != nullptr
                ? mgr_->Checkpoint()
                : Status::InvalidArgument("server runs without durability");
      }
      break;
  }
  resp->applied_seq = db_->history().size();
  if (!s.ok()) {
    resp->code = s.code();
    resp->message = s.message();
  }
}

void Server::FinishBatch(std::vector<Work>* batch,
                         std::vector<Response>* resps) {
  Status s = engine_->Flush();
  if (s.ok()) {
    std::lock_guard<std::mutex> lock(firings_mu_);
    auto fresh = engine_->TakeFirings();
    firing_log_.insert(firing_log_.end(),
                       std::make_move_iterator(fresh.begin()),
                       std::make_move_iterator(fresh.end()));
  }
  // Action errors are per-rule, not per-request (a batched action cannot be
  // attributed to one frame); drain them so they don't accumulate.
  (void)engine_->TakeErrors();
  // One barrier retires every commit in the batch (group commit). A barrier
  // failure poisons every OK ack in the batch: those writes applied in
  // memory but their durability is unknown, and acking them would break the
  // acked-implies-durable contract the soak test enforces.
  if (s.ok() && mgr_ != nullptr) s = mgr_->WaitWalDurable();
  if (!s.ok()) {
    for (size_t i = 0; i < batch->size(); ++i) {
      Response& r = (*resps)[i];
      if (r.code == StatusCode::kOk) {
        r.code = s.code();
        r.message = StrCat("durability barrier failed: ", s.message());
      }
    }
  }
}

void Server::SendResponse(Session* session, const Response& resp) {
  if (session->closed.load()) return;
  std::string payload;
  EncodeResponse(resp, &payload);
  std::lock_guard<std::mutex> lock(session->write_mu);
  if (session->closed.load()) return;
  // A dead peer (mid-stream disconnect) surfaces here; the session is torn
  // down and remaining responses for it are dropped on the floor.
  if (!WriteFrame(session->fd, payload).ok()) {
    session->closed.store(true);
    shutdown(session->fd, SHUT_RDWR);
  }
}

void Server::CloseSession(Session* session) {
  session->closed.store(true);
  std::lock_guard<std::mutex> lock(session->write_mu);
  if (session->fd >= 0) {
    shutdown(session->fd, SHUT_RDWR);
    close(session->fd);
    session->fd = -1;
    if (g_sessions_ != nullptr) g_sessions_->Add(-1);
  }
}

}  // namespace ptldb::server
