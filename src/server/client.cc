#include "server/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strings.h"

namespace ptldb::server {

Status Client::Connect(uint16_t port) {
  if (fd_ >= 0) return Status::InvalidArgument("already connected");
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::Internal(StrCat("socket: ", std::strerror(errno)));
  int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    Status s = Status::Internal(StrCat("connect: ", std::strerror(errno)));
    Close();
    return s;
  }
  Request hello;
  hello.type = MsgType::kHello;
  hello.version = kProtocolVersion;
  PTLDB_ASSIGN_OR_RETURN(Response resp, Call(std::move(hello)));
  if (resp.code != StatusCode::kOk) {
    Close();
    return Status(resp.code, resp.message);
  }
  return Status::OK();
}

Result<uint32_t> Client::Send(Request req) {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  req.tag = next_tag_++;
  std::string payload;
  EncodeRequest(req, &payload);
  PTLDB_RETURN_IF_ERROR(WriteFrame(fd_, payload));
  ++outstanding_;
  return req.tag;
}

Result<Response> Client::Receive() {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  std::string payload;
  // Responses use the looser bound: stats snapshots and trace dumps are
  // larger than any request frame.
  PTLDB_RETURN_IF_ERROR(ReadFrame(fd_, &payload, kMaxResponseFrameLen));
  if (outstanding_ > 0) --outstanding_;
  return DecodeResponse(payload);
}

Result<Response> Client::Call(Request req) {
  if (outstanding_ != 0) {
    return Status::InvalidArgument(
        StrCat(outstanding_, " pipelined responses outstanding; drain with "
                             "Receive() before Call()"));
  }
  PTLDB_ASSIGN_OR_RETURN(uint32_t tag, Send(std::move(req)));
  PTLDB_ASSIGN_OR_RETURN(Response resp, Receive());
  if (resp.tag != tag) {
    return Status::Internal(
        StrCat("response tag ", resp.tag, " does not match request ", tag));
  }
  return resp;
}

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  outstanding_ = 0;
}

}  // namespace ptldb::server
