// Wire protocol of the ptldb event-ingestion server.
//
// The paper's §8 architecture has the DBMS invoke the temporal component
// "whenever an event occurs"; the server front end turns that invocation
// boundary into a network boundary. Clients stream events and updates over a
// byte stream; the server applies them through the normal library path
// (db::Database + rules::RuleEngine) and acknowledges once the effects are
// durable.
//
// Framing (both directions):
//
//   [u32 len][payload]            len = payload byte count, little-endian,
//                                 0 < len <= kMaxFrameLen
//
// Request payload:
//
//   [u8 MsgType][u32 tag][body]   tag is echoed verbatim in the response so
//                                 clients may pipeline arbitrarily deep
//
// Response payload:
//
//   [u32 tag][u8 StatusCode][body]
//
// All multi-byte integers are little-endian via codec::Writer/Reader; strings
// are u32-length-prefixed; Values carry their codec type tag. Decoders are
// strict: every field is bounds-checked and trailing bytes are rejected, so
// torn or fuzzed frames surface as InvalidArgument, never as a crash (the
// server closes the connection, the store stays consistent).

#ifndef PTLDB_SERVER_PROTOCOL_H_
#define PTLDB_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "rules/engine.h"

namespace ptldb::server {

/// Protocol revision; Hello from a client speaking a different revision is
/// rejected before any state is touched. Revision 2 added the admin
/// introspection surface: a format byte on kStats, and the kStatsDelta /
/// kTraceDump / kTraceCtl requests. Revision 3 added kQueryAsOf (time-travel
/// reads against versioned tables).
inline constexpr uint32_t kProtocolVersion = 3;

/// Upper bound on one *request* frame's payload. A length prefix above this
/// is a malformed or hostile frame — reject before allocating.
inline constexpr uint32_t kMaxFrameLen = 1u << 20;

/// Upper bound on one *response* frame's payload. Responses are larger than
/// requests by design — a TRACE_DUMP ships the whole span ring, a STATS
/// snapshot grows with the rule count — and the peer is the server we just
/// chose to talk to, so the anti-hostile bound is looser.
inline constexpr uint32_t kMaxResponseFrameLen = 1u << 26;

enum class MsgType : uint8_t {
  kHello = 1,        // body: u32 protocol version
  kPing = 2,         // empty body; durability barrier + ack
  kRaiseEvent = 3,   // body: str name, valvec params
  kInsert = 4,       // body: str table, valvec row
  kUpdate = 5,       // body: str table, set list, str where, param list
  kDelete = 6,       // body: str table, str where, param list
  kQuery = 7,        // body: str sql, param list
  kTakeFirings = 8,  // empty body; drains the server-side firing log
  kStats = 9,        // body: u8 StatsFormat; metrics snapshot in resp text
  kFlush = 10,       // empty body; force batched evaluation now
  kCheckpoint = 11,  // empty body; checkpoint the durability manager
  kStatsDelta = 12,  // empty body; metrics delta since this session's last
                     // poll as {"window_ns": N, "stats": {...}} in resp text
  kTraceDump = 13,   // body: u8 TraceFormat, u8 clear(0/1); dump in resp text
  kTraceCtl = 14,    // body: u8 TraceOp; recorder status JSON in resp text
  kQueryAsOf = 15,   // body: str sql, param list, i64 asof time; every table
                     // in the statement is read AS OF that time
};

/// Serialization of a kStats response.
enum class StatsFormat : uint8_t {
  kJson = 0,        // Metrics::ToJson()
  kPrometheus = 1,  // Metrics::ToPrometheus() text exposition (scrapers)
};

/// Serialization of a kTraceDump response.
enum class TraceFormat : uint8_t {
  kJsonl = 0,   // trace::Recorder::ToJsonl()
  kChrome = 1,  // trace::Recorder::ToChromeTrace() (chrome://tracing)
};

/// kTraceCtl operations against the server's trace recorder.
enum class TraceOp : uint8_t {
  kStatus = 0,   // report only
  kEnable = 1,   // start recording spans/updates
  kDisable = 2,  // stop recording (ring retained)
  kClear = 3,    // drop recorded data
};

/// One decoded client request. Which fields are meaningful depends on `type`
/// (see MsgType comments); the codec only encodes the relevant ones.
struct Request {
  MsgType type = MsgType::kPing;
  uint32_t tag = 0;

  uint32_t version = 0;                       // kHello
  std::string event_name;                     // kRaiseEvent
  std::vector<Value> event_params;            // kRaiseEvent
  std::string table;                          // kInsert/kUpdate/kDelete
  std::vector<Value> row;                     // kInsert
  std::vector<std::pair<std::string, std::string>> set;  // kUpdate
  std::string where;                          // kUpdate/kDelete
  std::string sql;                            // kQuery/kQueryAsOf
  std::vector<std::pair<std::string, Value>> params;  // kUpdate/kDelete/
                                                      // kQuery/kQueryAsOf
  Timestamp asof_time = 0;                    // kQueryAsOf
  StatsFormat stats_format = StatsFormat::kJson;      // kStats
  TraceFormat trace_format = TraceFormat::kJsonl;     // kTraceDump
  bool trace_clear = false;                   // kTraceDump: drain the ring
  TraceOp trace_op = TraceOp::kStatus;        // kTraceCtl
};

/// One server response. `code` mirrors the Status of applying the request
/// (kOk on success; kUnavailable = admission-control rejection, back off).
struct Response {
  uint32_t tag = 0;
  StatusCode code = StatusCode::kOk;
  std::string message;       // Status message when code != kOk
  uint64_t applied_seq = 0;  // history size after applying (ingest requests)
  int64_t rows = 0;          // rows affected (kUpdate/kDelete), result rows
                             // (kQuery)
  std::string text;          // rendered relation (kQuery), metrics (kStats)
  std::vector<rules::Firing> firings;  // kTakeFirings
};

// ---- Payload codecs (framing excluded) ----

void EncodeRequest(const Request& req, std::string* out);
Result<Request> DecodeRequest(std::string_view payload);

void EncodeResponse(const Response& resp, std::string* out);
Result<Response> DecodeResponse(std::string_view payload);

// ---- Frame I/O over a connected socket (or any byte-stream fd) ----

/// Reads one `[u32 len][payload]` frame. Returns NotFound on clean EOF at a
/// frame boundary (peer closed), InvalidArgument on zero/oversized length or
/// EOF mid-frame (torn stream), Internal on socket errors. `max_len` is the
/// acceptance bound: the server reads requests with the default, clients
/// read responses with kMaxResponseFrameLen.
Status ReadFrame(int fd, std::string* payload,
                 uint32_t max_len = kMaxFrameLen);

/// Writes one frame. Internal on socket errors (EPIPE included — writes
/// never raise SIGPIPE). `max_len` mirrors ReadFrame's bound.
Status WriteFrame(int fd, std::string_view payload,
                  uint32_t max_len = kMaxFrameLen);

/// Human-readable request-type name ("insert", "stats_delta", ...) for logs
/// and the slow-event records.
const char* MsgTypeName(MsgType type);

}  // namespace ptldb::server

#endif  // PTLDB_SERVER_PROTOCOL_H_
