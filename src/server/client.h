// Minimal client for the ptldb wire protocol.
//
// Supports both call-and-wait (`Call`) and deep pipelining (`Send` many,
// then `Receive` the responses in order) — the latter is what makes group
// commit visible: a server fsync can only coalesce commits that are in
// flight concurrently.

#ifndef PTLDB_SERVER_CLIENT_H_
#define PTLDB_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "server/protocol.h"

namespace ptldb::server {

class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to 127.0.0.1:`port` and performs the Hello handshake.
  Status Connect(uint16_t port);

  /// Sends one request without waiting; stamps and returns the tag to match
  /// the response against.
  Result<uint32_t> Send(Request req);

  /// Receives the next response (in send order — the server answers one
  /// session's requests in order).
  Result<Response> Receive();

  /// Send + Receive + verify the tag matches; requires no pipelined
  /// responses outstanding.
  Result<Response> Call(Request req);

  void Close();
  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  uint32_t next_tag_ = 1;
  uint32_t outstanding_ = 0;
};

}  // namespace ptldb::server

#endif  // PTLDB_SERVER_CLIENT_H_
