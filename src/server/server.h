// The event-ingestion server: the paper's §8 asynchronous invocation
// architecture behind a socket.
//
// The paper observes that the DBMS need not invoke the temporal component
// synchronously for every event: "the temporal component invocation can be
// executed for multiple events at the same time... trigger firing may be
// delayed, but not go unrecognized." The server realizes that architecture
// across processes:
//
//   * N connection reader threads decode frames and push requests into one
//     bounded MPSC queue. A full queue blocks the reader (TCP backpressure
//     propagates to the client) or, with `reject_when_full`, answers
//     kUnavailable immediately (admission control).
//   * ONE engine thread owns the database and rule engine — the substrate is
//     single-threaded by design (§2: commits serialize) and the queue is the
//     serialization point. It drains requests into batches (up to
//     `max_batch`, waiting at most `batch_delay_us` for stragglers), applies
//     them through the normal library path with RuleEngine batching, flushes,
//     then issues ONE durability barrier for the whole batch (WAL group
//     commit under FsyncPolicy::kGroup) before acknowledging any of it:
//     ack-after-durable, amortized.
//
// Because every request flows through the same engine APIs in queue order,
// the firing log the server produces is byte-identical to a direct library
// run of the same request sequence at any batch size (rules at default
// priority) — tests/server_equivalence_test.cc holds it to that.

#ifndef PTLDB_SERVER_SERVER_H_
#define PTLDB_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "db/database.h"
#include "rules/engine.h"
#include "server/protocol.h"
#include "storage/durability.h"

namespace ptldb::server {

struct ServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (see port()).
  uint16_t port = 0;

  /// Largest request batch the engine thread applies between durability
  /// barriers; also the RuleEngine batching window (§8). 1 = synchronous.
  size_t max_batch = 64;

  /// Latency bound: after the first request of a batch arrives, wait at most
  /// this long for more before applying a partial batch. 0 = never wait.
  int64_t batch_delay_us = 200;

  /// Bounded request queue: readers pushing past this block (backpressure)
  /// or get rejected (admission control, below).
  size_t queue_capacity = 1024;

  /// Full queue policy: false = block the reader thread, letting TCP flow
  /// control slow the client; true = answer kUnavailable immediately.
  bool reject_when_full = false;

  /// Optional observability registry (not owned; may be null).
  Metrics* metrics = nullptr;
};

/// Ties one engine stack (database + rules + optional durability) to a
/// listening socket. Construction wires, Start() spawns threads, Stop()
/// joins them. The components must outlive the server and must not be
/// driven concurrently from outside while it runs.
class Server {
 public:
  /// `mgr` may be null (no durability; acks mean "applied", not "durable").
  Server(ServerOptions options, db::Database* db, rules::RuleEngine* engine,
         storage::DurabilityManager* mgr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the accept + engine threads.
  Status Start();

  /// Stops accepting, drains the queue (responses for everything admitted
  /// are still written), closes sessions, joins all threads. Idempotent.
  void Stop();

  /// The bound port (valid after Start; resolves port 0).
  uint16_t port() const { return port_; }

  /// Firings drained from the engine so far, in execution order — the
  /// server-side firing log (kTakeFirings serves and clears it).
  std::vector<rules::Firing> TakeFirings();

  /// Total requests admitted into the queue so far.
  uint64_t requests_admitted() const {
    return requests_admitted_.load(std::memory_order_relaxed);
  }

 private:
  /// One connected client. Reader-owned except `write_mu` (the engine
  /// thread writes responses) and `closed`.
  struct Session {
    int fd = -1;
    std::mutex write_mu;
    std::atomic<bool> closed{false};
    uint64_t id = 0;
  };

  struct Work {
    Request req;
    std::shared_ptr<Session> session;
  };

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Session> session);
  void EngineLoop();

  /// Pops up to max_batch requests, honoring the latency bound. Returns
  /// false when the server is stopping and the queue is empty.
  bool NextBatch(std::vector<Work>* batch);

  /// Applies one request against the engine stack (no durability barrier —
  /// the caller batches those). Fills `resp`.
  void ApplyRequest(const Request& req, Response* resp);

  /// Runs Flush + firing-log drain + durability barrier; on barrier failure
  /// rewrites every pending OK response to the barrier error (those commits
  /// are not durable and must not be acked as such).
  void FinishBatch(std::vector<Work>* batch, std::vector<Response>* resps);

  void SendResponse(Session* session, const Response& resp);
  void CloseSession(Session* session);

  ServerOptions options_;
  db::Database* db_;
  rules::RuleEngine* engine_;
  storage::DurabilityManager* mgr_;  // may be null

  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::thread accept_thread_;
  std::thread engine_thread_;
  std::mutex sessions_mu_;
  std::vector<std::shared_ptr<Session>> sessions_;
  std::vector<std::thread> reader_threads_;
  uint64_t next_session_id_ = 1;

  std::mutex queue_mu_;
  std::condition_variable queue_nonempty_;
  std::condition_variable queue_nonfull_;
  std::deque<Work> queue_;

  std::mutex firings_mu_;
  std::vector<rules::Firing> firing_log_;

  std::atomic<uint64_t> requests_admitted_{0};

  // Cached instruments (null when options_.metrics is null).
  Metrics::Gauge* g_queue_depth_ = nullptr;
  Metrics::Gauge* g_sessions_ = nullptr;
  Metrics::Counter* c_requests_ = nullptr;
  Metrics::Counter* c_batches_ = nullptr;
  Metrics::Counter* c_rejections_ = nullptr;
  Metrics::Histogram* h_batch_size_ = nullptr;
};

}  // namespace ptldb::server

#endif  // PTLDB_SERVER_SERVER_H_
