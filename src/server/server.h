// The event-ingestion server: the paper's §8 asynchronous invocation
// architecture behind a socket.
//
// The paper observes that the DBMS need not invoke the temporal component
// synchronously for every event: "the temporal component invocation can be
// executed for multiple events at the same time... trigger firing may be
// delayed, but not go unrecognized." The server realizes that architecture
// across processes:
//
//   * N connection reader threads decode frames and push requests into one
//     bounded MPSC queue. A full queue blocks the reader (TCP backpressure
//     propagates to the client) or, with `reject_when_full`, answers
//     kUnavailable immediately (admission control).
//   * ONE engine thread owns the database and rule engine — the substrate is
//     single-threaded by design (§2: commits serialize) and the queue is the
//     serialization point. It drains requests into batches (up to
//     `max_batch`, waiting at most `batch_delay_us` for stragglers), applies
//     them through the normal library path with RuleEngine batching, flushes,
//     then issues ONE durability barrier for the whole batch (WAL group
//     commit under FsyncPolicy::kGroup) before acknowledging any of it:
//     ack-after-durable, amortized.
//
// Because every request flows through the same engine APIs in queue order,
// the firing log the server produces is byte-identical to a direct library
// run of the same request sequence at any batch size (rules at default
// priority) — tests/server_equivalence_test.cc holds it to that.

#ifndef PTLDB_SERVER_SERVER_H_
#define PTLDB_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/trace.h"
#include "db/database.h"
#include "rules/engine.h"
#include "server/protocol.h"
#include "storage/durability.h"

namespace ptldb::server {

struct ServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (see port()).
  uint16_t port = 0;

  /// Largest request batch the engine thread applies between durability
  /// barriers; also the RuleEngine batching window (§8). 1 = synchronous.
  size_t max_batch = 64;

  /// Latency bound: after the first request of a batch arrives, wait at most
  /// this long for more before applying a partial batch. 0 = never wait.
  int64_t batch_delay_us = 200;

  /// Bounded request queue: readers pushing past this block (backpressure)
  /// or get rejected (admission control, below).
  size_t queue_capacity = 1024;

  /// Full queue policy: false = block the reader thread, letting TCP flow
  /// control slow the client; true = answer kUnavailable immediately.
  bool reject_when_full = false;

  /// Optional observability registry (not owned; may be null). When set, the
  /// serving path stamps every request at frame read and threads the
  /// timestamp through the pipeline, decomposing wire-to-ack latency into
  /// per-stage histograms (`server.stage.*_ns`, DESIGN.md §15).
  Metrics* metrics = nullptr;

  /// Optional trace recorder (not owned; may be null). When attached and
  /// enabled, the engine thread records per-batch spans (batch size, queue
  /// depth at dequeue, admission outcome, group-commit role) alongside
  /// whatever the engine itself records into the same recorder. kTraceDump /
  /// kTraceCtl serve and control this recorder over the wire.
  trace::Recorder* trace = nullptr;

  /// Slow-event log: a request whose wire-to-ack latency reaches this bound
  /// appends one JSONL record with the full stage breakdown to
  /// `slow_log_path`. 0 disables (no clock reads unless metrics are wired).
  int64_t slow_threshold_us = 0;
  std::string slow_log_path;
};

/// Ties one engine stack (database + rules + optional durability) to a
/// listening socket. Construction wires, Start() spawns threads, Stop()
/// joins them. The components must outlive the server and must not be
/// driven concurrently from outside while it runs.
class Server {
 public:
  /// `mgr` may be null (no durability; acks mean "applied", not "durable").
  Server(ServerOptions options, db::Database* db, rules::RuleEngine* engine,
         storage::DurabilityManager* mgr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the accept + engine threads.
  Status Start();

  /// Stops accepting, drains the queue (responses for everything admitted
  /// are still written), closes sessions, joins all threads. Idempotent.
  void Stop();

  /// The bound port (valid after Start; resolves port 0).
  uint16_t port() const { return port_; }

  /// Firings drained from the engine so far, in execution order — the
  /// server-side firing log (kTakeFirings serves and clears it).
  std::vector<rules::Firing> TakeFirings();

  /// Total requests admitted into the queue so far.
  uint64_t requests_admitted() const {
    return requests_admitted_.load(std::memory_order_relaxed);
  }

 private:
  /// One connected client. Reader-owned except `write_mu` (the engine
  /// thread writes responses) and `closed`. `last_stats*` is the session's
  /// STATS_DELTA cursor, touched only by the engine thread.
  struct Session {
    int fd = -1;
    std::mutex write_mu;
    std::atomic<bool> closed{false};
    uint64_t id = 0;
    std::unique_ptr<MetricsSnapshot> last_stats;
    uint64_t last_stats_ns = 0;
  };

  /// One admitted request plus its pipeline timestamps (steady-clock ns; 0
  /// when observability is off — see observe_).
  struct Work {
    Request req;
    std::shared_ptr<Session> session;
    uint64_t t_read_ns = 0;  // stamped right after the frame was read
    uint64_t t_enq_ns = 0;   // after decode + admission (queue push)
    uint64_t t_deq_ns = 0;   // popped by the engine thread
  };

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Session> session);
  void EngineLoop();

  /// Pops up to max_batch requests, honoring the latency bound. Returns
  /// false when the server is stopping and the queue is empty. Stamps each
  /// item's t_deq_ns and records the queue depth left behind in
  /// `queue_depth_after_batch_`.
  bool NextBatch(std::vector<Work>* batch);

  /// Applies one request against the engine stack (no durability barrier —
  /// the caller batches those). Fills `resp`. Takes the whole Work because
  /// the admin requests (STATS_DELTA) keep per-session cursor state.
  void ApplyRequest(Work& work, Response* resp);

  Status ApplyStatsDelta(Work& work, Response* resp);
  Status ApplyTraceDump(const Request& req, Response* resp);
  Status ApplyTraceCtl(const Request& req, Response* resp);

  /// Runs Flush + firing-log drain + durability barrier; on barrier failure
  /// rewrites every pending OK response to the barrier error (those commits
  /// are not durable and must not be acked as such). When observing, splits
  /// its own time against the caller's `apply_end_ns` stamp into `eval_ns`
  /// (engine evaluation) and `commit_ns` (durability barrier) so that
  /// apply_end + eval + commit is exactly the commit-end boundary.
  void FinishBatch(std::vector<Work>* batch, std::vector<Response>* resps,
                   uint64_t apply_end_ns, uint64_t* eval_ns,
                   uint64_t* commit_ns);

  /// Observes one finished request into the stage histograms and, past the
  /// slow threshold, the slow-event log. All boundary stamps are engine-
  /// thread local; the stages tile [t_read, t_ack] exactly.
  void ObserveRequest(const Work& work, const Response& resp,
                      uint64_t t_batch_ns, uint64_t t_apply_end_ns,
                      uint64_t eval_ns, uint64_t commit_ns,
                      uint64_t commit_end_ns, uint64_t t_ack_ns,
                      size_t batch_size);

  void SendResponse(Session* session, const Response& resp);
  void CloseSession(Session* session);

  ServerOptions options_;
  db::Database* db_;
  rules::RuleEngine* engine_;
  storage::DurabilityManager* mgr_;  // may be null

  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::thread accept_thread_;
  std::thread engine_thread_;
  std::mutex sessions_mu_;
  std::vector<std::shared_ptr<Session>> sessions_;
  std::vector<std::thread> reader_threads_;
  uint64_t next_session_id_ = 1;

  std::mutex queue_mu_;
  std::condition_variable queue_nonempty_;
  std::condition_variable queue_nonfull_;
  std::deque<Work> queue_;

  std::mutex firings_mu_;
  std::vector<rules::Firing> firing_log_;

  std::atomic<uint64_t> requests_admitted_{0};

  /// Admission-control rejections, tracked unconditionally (cheap, cold
  /// path) so trace spans can report shed counts without a metrics registry.
  std::atomic<uint64_t> rejections_total_{0};
  uint64_t last_rejections_seen_ = 0;  // engine-thread only

  // Cached instruments (null when options_.metrics is null).
  Metrics::Gauge* g_queue_depth_ = nullptr;
  Metrics::Gauge* g_sessions_ = nullptr;
  Metrics::Counter* c_requests_ = nullptr;
  Metrics::Counter* c_batches_ = nullptr;
  Metrics::Counter* c_rejections_ = nullptr;
  Metrics::Counter* c_acked_ = nullptr;
  Metrics::Counter* c_slow_ = nullptr;
  Metrics::Histogram* h_batch_size_ = nullptr;

  // Wire-to-ack decomposition: the seven stages tile [t_read, t_ack]
  // exactly, so per-event stage sums equal the total (DESIGN.md §15).
  Metrics::Histogram* h_stage_read_ = nullptr;    // frame read -> enqueue
  Metrics::Histogram* h_stage_queue_ = nullptr;   // enqueue -> dequeue
  Metrics::Histogram* h_stage_batch_ = nullptr;   // dequeue -> batch formed
  Metrics::Histogram* h_stage_apply_ = nullptr;   // batch formed -> applied
  Metrics::Histogram* h_stage_eval_ = nullptr;    // flush + firings drain
  Metrics::Histogram* h_stage_commit_ = nullptr;  // durability barrier
  Metrics::Histogram* h_stage_ack_ = nullptr;     // barrier done -> ack sent
  Metrics::Histogram* h_wire_to_ack_ = nullptr;   // t_read -> t_ack

  /// True when any per-event stamping is wanted (metrics wired or a slow
  /// threshold set). When false the serving path makes zero clock reads per
  /// request — observability off must stay within noise of PR 7 (E16).
  bool observe_ = false;

  int64_t slow_threshold_ns_ = 0;
  std::FILE* slow_log_ = nullptr;  // engine-thread only after Start
  uint64_t start_ns_ = 0;          // Start() stamp, slow-log relative times

  /// Queue depth left behind by the latest NextBatch pop (engine-thread
  /// only); feeds the per-batch trace span detail.
  size_t last_queue_depth_ = 0;
};

}  // namespace ptldb::server

#endif  // PTLDB_SERVER_SERVER_H_
