// DurabilityManager: wires the WAL and checkpointer into a live engine.
//
// Off by default — an engine without a manager attached pays only a null
// pointer check per state. With one attached:
//
//   * Every appended system state is logged (events + redo deltas + logical
//     clock) *before* the rule engine sees it — write-ahead discipline: the
//     record is durable before its triggers act.
//   * Every firing decision and IC veto is logged in execution order, giving
//     recovery a differential oracle to verify replay against.
//   * Checkpoints serialize the full retained state and truncate the WAL;
//     they run manually (Checkpoint()) or automatically every N states, at
//     dispatch depth zero only (a mid-dispatch snapshot would capture a
//     half-stepped engine).
//
// Usage:
//
//   DurabilityOptions opts;
//   opts.dir = "/var/lib/ptldb";
//   opts.fsync = FsyncPolicy::kSync;
//   auto mgr = DurabilityManager::Attach(opts, &db, &engine, &clock);
//
// For recovery, construct fresh components, re-register every rule, call
// storage::Recover(dir, targets), then Attach a new manager (which
// checkpoints the recovered state and resets the WAL).

#ifndef PTLDB_STORAGE_DURABILITY_H_
#define PTLDB_STORAGE_DURABILITY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/checkpoint.h"
#include "storage/group_commit.h"
#include "storage/recovery.h"
#include "storage/wal.h"

namespace ptldb::storage {

struct DurabilityOptions {
  /// Directory for CURRENT / checkpoint-<id> / wal.log. Created if absent.
  std::string dir;

  FsyncPolicy fsync = FsyncPolicy::kAsync;

  /// Take a checkpoint automatically after this many appended states
  /// (counted between checkpoints, at dispatch depth zero). 0 = manual only.
  uint64_t checkpoint_every_n_states = 0;

  /// Test seam: all file opens route through this factory (fault injection).
  /// Null uses the default POSIX factory. Not owned; must outlive the
  /// manager.
  FileFactory* file_factory = nullptr;
};

class DurabilityManager : public db::Database::WalSink,
                          public rules::RuleEngine::FiringObserver,
                          public temporal::VersionStore::DdlSink {
 public:
  /// Attaches durability to live components. Writes a checkpoint of the
  /// current state (id 0 on a fresh directory, last+1 on an existing one —
  /// e.g. right after Recover) and starts a fresh WAL.
  /// `vt`/`metrics`/`temporal` in `targets` may be null; `db`, `engine`,
  /// `clock` are required.
  static Result<std::unique_ptr<DurabilityManager>> Attach(
      DurabilityOptions options, CheckpointTargets targets);

  /// Detaches from the database and engine; flushes the WAL best-effort.
  ~DurabilityManager() override;

  DurabilityManager(const DurabilityManager&) = delete;
  DurabilityManager& operator=(const DurabilityManager&) = delete;

  /// Takes a checkpoint now: syncs the WAL, serializes the retained state,
  /// commits checkpoint-<id> + CURRENT, and resets the WAL. Fails
  /// mid-dispatch (call from outside rule actions).
  Status Checkpoint();

  /// Sticky failure: once a WAL append or checkpoint fails, the manager
  /// stops logging and reports the first error here. A durable store must
  /// treat this as fatal (the log no longer covers the live state).
  const Status& status() const { return status_; }

  /// Group commit (FsyncPolicy::kGroup only; null otherwise). Concurrent
  /// sessions append through the manager's normal sink callbacks (engine
  /// thread) and ack durability with WaitWalDurable/group()->WaitDurable.
  GroupCommitter* group() { return group_.get(); }

  /// Durability barrier for acknowledgement: under kGroup, blocks until the
  /// whole WAL tail is on stable storage (one fsync retires every commit
  /// appended since the last barrier). Under kSync it is a no-op (records
  /// are already durable); under kNone/kAsync it is also a no-op — those
  /// policies explicitly trade away the guarantee.
  Status WaitWalDurable();

  /// Aggregate WAL statistics across checkpoints (WAL resets included).
  WalStats wal_stats() const;
  uint64_t last_checkpoint_id() const { return checkpoint_id_; }
  uint64_t checkpoints_taken() const { return checkpoints_taken_; }
  /// States appended since the last checkpoint (the WAL tail length).
  uint64_t states_since_checkpoint() const { return states_since_checkpoint_; }

  const DurabilityOptions& options() const { return options_; }

  // ---- db::Database::WalSink ----
  void BufferDelta(db::RedoDelta delta) override;
  void OnStateAppended(const event::SystemState& state) override;

  // ---- rules::RuleEngine::FiringObserver ----
  void OnFiring(const rules::Firing& firing) override;
  void OnIcVeto(int64_t txn, Timestamp time,
                const std::vector<std::string>& violated_rules) override;

  // ---- temporal::VersionStore::DdlSink ----
  /// Journals a versioning declare/undeclare/trim before it takes effect
  /// (write-ahead, like row deltas). Attach() wires this automatically when
  /// `targets.temporal` is set.
  Status OnTemporalOp(const temporal::TemporalOp& op) override;

 private:
  DurabilityManager(DurabilityOptions options, CheckpointTargets targets)
      : options_(std::move(options)), targets_(targets) {}

  Status OpenFreshWal();
  /// Routes one record append through the group committer when one is
  /// attached (kGroup), directly to the writer otherwise.
  Status AppendRecord(const std::function<Status(WalWriter*)>& append);
  void Fail(Status s);

  DurabilityOptions options_;
  CheckpointTargets targets_;
  FileFactory* factory_ = nullptr;  // options_.file_factory or &posix_
  PosixFileFactory posix_;
  std::unique_ptr<WalWriter> wal_;
  std::unique_ptr<GroupCommitter> group_;  // non-null only under kGroup
  std::vector<db::RedoDelta> pending_deltas_;
  Status status_ = Status::OK();
  uint64_t checkpoint_id_ = 0;       // last committed checkpoint id
  uint64_t next_checkpoint_id_ = 0;  // id the next checkpoint will use
  uint64_t checkpoints_taken_ = 0;
  uint64_t states_since_checkpoint_ = 0;
  bool in_checkpoint_ = false;
  WalStats stats_snapshot_;  // aggregate across WAL resets
};

}  // namespace ptldb::storage

#endif  // PTLDB_STORAGE_DURABILITY_H_
