// Write-ahead log for the active-database engine.
//
// The log is the durable record of everything the engine decided: each
// appended system state (with the row-level redo deltas that produced its S
// component and the logical clock reading), each firing decision, and each
// integrity-constraint veto. Recovery replays the state records through the
// normal rule-engine path and uses the logged decisions as a differential
// oracle — the replayed engine must reproduce them byte for byte.
//
// Framing: the file starts with the 8-byte magic "PTLWAL01"; each record is
//
//   [u32 payload_len][u32 crc32c(payload)][payload]
//
// with the payload's first byte the record type. A crash mid-write leaves a
// torn tail (short record or CRC mismatch); the reader stops at the last
// valid prefix and reports how many bytes it discarded.

#ifndef PTLDB_STORAGE_WAL_H_
#define PTLDB_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/status.h"
#include "common/value.h"
#include "db/transaction.h"
#include "event/event.h"
#include "storage/file.h"
#include "temporal/versioning.h"

namespace ptldb::storage {

inline constexpr char kWalMagic[] = "PTLWAL01";  // 8 bytes on disk
inline constexpr size_t kWalMagicLen = 8;
inline constexpr size_t kWalFrameHeaderLen = 8;  // u32 len + u32 crc

/// When appended records reach stable storage.
enum class FsyncPolicy {
  kNone,   // never fsync (OS decides; fastest, weakest)
  kAsync,  // fsync every kAsyncSyncInterval records
  kSync,   // fsync after every record (strongest)
  kGroup,  // never fsync at append; a GroupCommitter issues batched syncs
           // on behalf of concurrent committers (same guarantee as kSync for
           // acknowledged commits, amortized — see storage/group_commit.h)
};

inline constexpr uint64_t kAsyncSyncInterval = 64;

enum class WalRecordType : uint8_t {
  kState = 1,       // one appended system state + redo deltas + clock reading
  kFiring = 2,      // one firing decision (action about to run)
  kIcVeto = 3,      // one integrity-constraint veto (commit rejected)
  kCheckpoint = 4,  // checkpoint committed (id + history position)
  kTemporal = 5,    // one versioning DDL op (declare/undeclare/trim)
};

struct WalStateRecord {
  uint64_t seq = 0;       // global history sequence number
  Timestamp time = 0;     // state timestamp (replayed exactly)
  Timestamp clock_now = 0;  // clock reading at append (may lag `time`)
  std::vector<event::Event> events;
  std::vector<db::RedoDelta> deltas;
};

struct WalFiringRecord {
  std::string rule;
  std::string params;
  Timestamp time = 0;
};

struct WalIcVetoRecord {
  int64_t txn = 0;
  uint64_t seq = 0;   // seq of the vetoed prospective state
  Timestamp time = 0;
  std::vector<std::string> violated;
};

struct WalCheckpointRecord {
  uint64_t checkpoint_id = 0;
  uint64_t history_size = 0;
};

struct WalTemporalRecord {
  /// History size when the op ran, ordering it against state records:
  /// recovery skips ops a checkpoint already absorbed (seq < restored size;
  /// VersionStore::ApplyOp is idempotent at the boundary).
  uint64_t seq = 0;
  temporal::TemporalOp op;
};

/// One decoded record; `type` selects which member is meaningful.
struct WalRecord {
  WalRecordType type = WalRecordType::kState;
  WalStateRecord state;
  WalFiringRecord firing;
  WalIcVetoRecord veto;
  WalCheckpointRecord checkpoint;
  WalTemporalRecord temporal;
};

struct WalStats {
  uint64_t records_appended = 0;
  uint64_t bytes_appended = 0;
  uint64_t syncs = 0;
  uint64_t state_records = 0;
  uint64_t firing_records = 0;
  uint64_t veto_records = 0;
  uint64_t temporal_records = 0;
};

class WalWriter {
 public:
  /// `file` must be positioned at the end of a valid log (or empty, in which
  /// case the magic is written first). `existing_bytes` is the current file
  /// size, so stats and fault offsets count from the true file position.
  static Result<WalWriter> Create(std::unique_ptr<WritableFile> file,
                                  uint64_t existing_bytes, FsyncPolicy policy);

  Status AppendState(const WalStateRecord& rec);
  Status AppendFiring(const WalFiringRecord& rec);
  Status AppendIcVeto(const WalIcVetoRecord& rec);
  Status AppendCheckpoint(const WalCheckpointRecord& rec);
  Status AppendTemporal(const WalTemporalRecord& rec);

  /// Forces an fsync regardless of policy (checkpoint barrier).
  Status Sync();

  const WalStats& stats() const { return stats_; }
  FsyncPolicy policy() const { return policy_; }

 private:
  WalWriter(std::unique_ptr<WritableFile> file, FsyncPolicy policy)
      : file_(std::move(file)), policy_(policy) {}

  Status AppendFramed(const std::string& payload);

  std::unique_ptr<WritableFile> file_;
  FsyncPolicy policy_;
  WalStats stats_;
  uint64_t records_since_sync_ = 0;
};

/// Reads a WAL from an in-memory image (recovery loads the file once).
class WalReader {
 public:
  /// Fails only when the magic is missing/corrupt (not a WAL at all);
  /// torn record tails are handled record by record.
  static Result<WalReader> Open(std::string contents);

  /// Next record, or nullopt at the end of the valid prefix. After nullopt,
  /// `torn_bytes()` says how many trailing bytes failed framing/CRC and
  /// `valid_prefix_bytes()` is the offset a truncation should cut at.
  Result<std::optional<WalRecord>> Next();

  uint64_t records_read() const { return records_read_; }
  uint64_t valid_prefix_bytes() const { return valid_prefix_; }
  uint64_t torn_bytes() const { return contents_.size() - valid_prefix_; }

 private:
  explicit WalReader(std::string contents) : contents_(std::move(contents)) {}

  std::string contents_;
  size_t pos_ = kWalMagicLen;
  uint64_t valid_prefix_ = kWalMagicLen;
  uint64_t records_read_ = 0;
  bool done_ = false;
};

/// Payload encoding/decoding, shared by writer and reader (and tests).
std::string EncodeWalRecord(const WalRecord& rec);
Result<WalRecord> DecodeWalRecord(std::string_view payload);

}  // namespace ptldb::storage

#endif  // PTLDB_STORAGE_WAL_H_
