#include "storage/wal.h"

#include <cstring>

#include "common/strings.h"

namespace ptldb::storage {

namespace {

void EncodeDelta(const db::RedoDelta& d, codec::Writer* w) {
  w->U8(static_cast<uint8_t>(d.kind));
  w->Str(d.table);
  w->ValVec(d.row);
  w->ValVec(d.new_row);
}

Result<db::RedoDelta> DecodeDelta(codec::Reader* r) {
  db::RedoDelta d;
  PTLDB_ASSIGN_OR_RETURN(uint8_t kind, r->U8());
  if (kind > static_cast<uint8_t>(db::RedoDelta::Kind::kUpdate)) {
    return Status::ParseError(StrCat("bad redo-delta kind ", kind));
  }
  d.kind = static_cast<db::RedoDelta::Kind>(kind);
  PTLDB_ASSIGN_OR_RETURN(d.table, r->Str());
  PTLDB_ASSIGN_OR_RETURN(d.row, r->ValVec());
  PTLDB_ASSIGN_OR_RETURN(d.new_row, r->ValVec());
  return d;
}

}  // namespace

std::string EncodeWalRecord(const WalRecord& rec) {
  std::string payload;
  codec::Writer w(&payload);
  w.U8(static_cast<uint8_t>(rec.type));
  switch (rec.type) {
    case WalRecordType::kState: {
      const WalStateRecord& s = rec.state;
      w.U64(s.seq);
      w.I64(s.time);
      w.I64(s.clock_now);
      w.U32(static_cast<uint32_t>(s.events.size()));
      for (const event::Event& e : s.events) event::SerializeEvent(e, &w);
      w.U32(static_cast<uint32_t>(s.deltas.size()));
      for (const db::RedoDelta& d : s.deltas) EncodeDelta(d, &w);
      break;
    }
    case WalRecordType::kFiring:
      w.Str(rec.firing.rule);
      w.Str(rec.firing.params);
      w.I64(rec.firing.time);
      break;
    case WalRecordType::kIcVeto:
      w.I64(rec.veto.txn);
      w.U64(rec.veto.seq);
      w.I64(rec.veto.time);
      w.U32(static_cast<uint32_t>(rec.veto.violated.size()));
      for (const std::string& name : rec.veto.violated) w.Str(name);
      break;
    case WalRecordType::kCheckpoint:
      w.U64(rec.checkpoint.checkpoint_id);
      w.U64(rec.checkpoint.history_size);
      break;
    case WalRecordType::kTemporal:
      w.U64(rec.temporal.seq);
      temporal::SerializeTemporalOp(rec.temporal.op, &w);
      break;
  }
  return payload;
}

Result<WalRecord> DecodeWalRecord(std::string_view payload) {
  codec::Reader r(payload);
  WalRecord rec;
  PTLDB_ASSIGN_OR_RETURN(uint8_t type, r.U8());
  if (type < static_cast<uint8_t>(WalRecordType::kState) ||
      type > static_cast<uint8_t>(WalRecordType::kTemporal)) {
    return Status::ParseError(StrCat("bad WAL record type ", type));
  }
  rec.type = static_cast<WalRecordType>(type);
  switch (rec.type) {
    case WalRecordType::kState: {
      WalStateRecord& s = rec.state;
      PTLDB_ASSIGN_OR_RETURN(s.seq, r.U64());
      PTLDB_ASSIGN_OR_RETURN(s.time, r.I64());
      PTLDB_ASSIGN_OR_RETURN(s.clock_now, r.I64());
      PTLDB_ASSIGN_OR_RETURN(uint32_t num_events, r.U32());
      for (uint32_t i = 0; i < num_events; ++i) {
        PTLDB_ASSIGN_OR_RETURN(event::Event e, event::DeserializeEvent(&r));
        s.events.push_back(std::move(e));
      }
      PTLDB_ASSIGN_OR_RETURN(uint32_t num_deltas, r.U32());
      for (uint32_t i = 0; i < num_deltas; ++i) {
        PTLDB_ASSIGN_OR_RETURN(db::RedoDelta d, DecodeDelta(&r));
        s.deltas.push_back(std::move(d));
      }
      break;
    }
    case WalRecordType::kFiring: {
      PTLDB_ASSIGN_OR_RETURN(rec.firing.rule, r.Str());
      PTLDB_ASSIGN_OR_RETURN(rec.firing.params, r.Str());
      PTLDB_ASSIGN_OR_RETURN(rec.firing.time, r.I64());
      break;
    }
    case WalRecordType::kIcVeto: {
      PTLDB_ASSIGN_OR_RETURN(rec.veto.txn, r.I64());
      PTLDB_ASSIGN_OR_RETURN(rec.veto.seq, r.U64());
      PTLDB_ASSIGN_OR_RETURN(rec.veto.time, r.I64());
      PTLDB_ASSIGN_OR_RETURN(uint32_t num_violated, r.U32());
      for (uint32_t i = 0; i < num_violated; ++i) {
        PTLDB_ASSIGN_OR_RETURN(std::string name, r.Str());
        rec.veto.violated.push_back(std::move(name));
      }
      break;
    }
    case WalRecordType::kCheckpoint: {
      PTLDB_ASSIGN_OR_RETURN(rec.checkpoint.checkpoint_id, r.U64());
      PTLDB_ASSIGN_OR_RETURN(rec.checkpoint.history_size, r.U64());
      break;
    }
    case WalRecordType::kTemporal: {
      PTLDB_ASSIGN_OR_RETURN(rec.temporal.seq, r.U64());
      PTLDB_ASSIGN_OR_RETURN(rec.temporal.op, temporal::DeserializeTemporalOp(&r));
      break;
    }
  }
  PTLDB_RETURN_IF_ERROR(r.ExpectEnd());
  return rec;
}

// ---- WalWriter --------------------------------------------------------------

Result<WalWriter> WalWriter::Create(std::unique_ptr<WritableFile> file,
                                    uint64_t existing_bytes,
                                    FsyncPolicy policy) {
  WalWriter writer(std::move(file), policy);
  if (existing_bytes == 0) {
    PTLDB_RETURN_IF_ERROR(
        writer.file_->Append(std::string_view(kWalMagic, kWalMagicLen)));
    writer.stats_.bytes_appended += kWalMagicLen;
  }
  return writer;
}

Status WalWriter::AppendFramed(const std::string& payload) {
  std::string frame;
  codec::Writer w(&frame);
  w.U32(static_cast<uint32_t>(payload.size()));
  w.U32(codec::Crc32c(payload.data(), payload.size()));
  frame += payload;
  PTLDB_RETURN_IF_ERROR(file_->Append(frame));
  ++stats_.records_appended;
  stats_.bytes_appended += frame.size();
  ++records_since_sync_;
  if (policy_ == FsyncPolicy::kSync ||
      (policy_ == FsyncPolicy::kAsync &&
       records_since_sync_ >= kAsyncSyncInterval)) {
    PTLDB_RETURN_IF_ERROR(Sync());
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  PTLDB_RETURN_IF_ERROR(file_->Sync());
  ++stats_.syncs;
  records_since_sync_ = 0;
  return Status::OK();
}

Status WalWriter::AppendState(const WalStateRecord& rec) {
  ++stats_.state_records;
  WalRecord r;
  r.type = WalRecordType::kState;
  r.state = rec;
  return AppendFramed(EncodeWalRecord(r));
}

Status WalWriter::AppendFiring(const WalFiringRecord& rec) {
  ++stats_.firing_records;
  WalRecord r;
  r.type = WalRecordType::kFiring;
  r.firing = rec;
  return AppendFramed(EncodeWalRecord(r));
}

Status WalWriter::AppendIcVeto(const WalIcVetoRecord& rec) {
  ++stats_.veto_records;
  WalRecord r;
  r.type = WalRecordType::kIcVeto;
  r.veto = rec;
  return AppendFramed(EncodeWalRecord(r));
}

Status WalWriter::AppendCheckpoint(const WalCheckpointRecord& rec) {
  WalRecord r;
  r.type = WalRecordType::kCheckpoint;
  r.checkpoint = rec;
  return AppendFramed(EncodeWalRecord(r));
}

Status WalWriter::AppendTemporal(const WalTemporalRecord& rec) {
  ++stats_.temporal_records;
  WalRecord r;
  r.type = WalRecordType::kTemporal;
  r.temporal = rec;
  return AppendFramed(EncodeWalRecord(r));
}

// ---- WalReader --------------------------------------------------------------

Result<WalReader> WalReader::Open(std::string contents) {
  if (contents.size() < kWalMagicLen ||
      std::memcmp(contents.data(), kWalMagic, kWalMagicLen) != 0) {
    return Status::ParseError(
        "not a WAL file (bad or truncated magic header)");
  }
  return WalReader(std::move(contents));
}

Result<std::optional<WalRecord>> WalReader::Next() {
  if (done_) return std::optional<WalRecord>();
  // Frame header.
  if (pos_ + kWalFrameHeaderLen > contents_.size()) {
    done_ = true;  // torn header (or clean EOF when pos_ == size)
    return std::optional<WalRecord>();
  }
  codec::Reader header(
      std::string_view(contents_.data() + pos_, kWalFrameHeaderLen));
  PTLDB_ASSIGN_OR_RETURN(uint32_t len, header.U32());
  PTLDB_ASSIGN_OR_RETURN(uint32_t crc, header.U32());
  size_t payload_at = pos_ + kWalFrameHeaderLen;
  if (payload_at + len > contents_.size()) {
    done_ = true;  // torn payload
    return std::optional<WalRecord>();
  }
  std::string_view payload(contents_.data() + payload_at, len);
  if (codec::Crc32c(payload.data(), payload.size()) != crc) {
    done_ = true;  // corrupt record: treat as the start of the torn tail
    return std::optional<WalRecord>();
  }
  auto rec = DecodeWalRecord(payload);
  if (!rec.ok()) {
    done_ = true;  // CRC passed but the payload is malformed — stop here
    return std::optional<WalRecord>();
  }
  pos_ = payload_at + len;
  valid_prefix_ = pos_;
  ++records_read_;
  return std::optional<WalRecord>(std::move(rec).value());
}

}  // namespace ptldb::storage
