#include "storage/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <vector>

#include "common/strings.h"

namespace ptldb::storage {

namespace fs = std::filesystem;

Status EncodeCheckpoint(uint64_t id, const CheckpointTargets& targets,
                        std::string* out) {
  out->clear();
  codec::Writer w(out);
  w.U64(id);
  const db::Database& db = *targets.db;
  w.I64(targets.clock->Now());
  w.U64(db.history().size());
  w.I64(db.history().last_time());
  PTLDB_RETURN_IF_ERROR(db.SerializeContents(&w));
  PTLDB_RETURN_IF_ERROR(targets.engine->SerializeRetainedState(&w));
  w.Bool(targets.vt != nullptr);
  if (targets.vt != nullptr) {
    PTLDB_RETURN_IF_ERROR(targets.vt->SerializeState(&w));
  }
  w.Str(targets.metrics != nullptr ? targets.metrics->ToJson() : std::string());
  // Temporal section last: bodies written before the subsystem existed simply
  // end here, and the restore side treats "no bytes left" as "no store".
  w.Bool(targets.temporal != nullptr);
  if (targets.temporal != nullptr) {
    targets.temporal->Serialize(&w);
  }
  return Status::OK();
}

Status CommitCheckpointFile(const std::string& dir, uint64_t id,
                            const std::string& body, FileFactory* factory) {
  std::string path = StrCat(dir, "/", kCheckpointFilePrefix, id);
  std::string frame;
  codec::Writer w(&frame);
  w.U32(static_cast<uint32_t>(body.size()));
  w.U32(codec::Crc32c(body.data(), body.size()));
  PTLDB_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> f,
                         factory->OpenWritable(path, /*truncate=*/true));
  PTLDB_RETURN_IF_ERROR(
      f->Append(std::string_view(kCheckpointMagic, kCheckpointMagicLen)));
  PTLDB_RETURN_IF_ERROR(f->Append(frame));
  PTLDB_RETURN_IF_ERROR(f->Append(body));
  PTLDB_RETURN_IF_ERROR(f->Sync());
  PTLDB_RETURN_IF_ERROR(f->Close());
  // Only after the checkpoint file is durable does CURRENT move to it.
  return WriteStringToFileAtomic(StrCat(dir, "/", kCurrentFileName),
                                 StrCat(kCheckpointFilePrefix, id), factory);
}

Result<std::string> ExtractCheckpointBody(const std::string& file_contents) {
  if (file_contents.size() < kCheckpointMagicLen + 8 ||
      std::memcmp(file_contents.data(), kCheckpointMagic,
                  kCheckpointMagicLen) != 0) {
    return Status::ParseError("not a checkpoint file (bad magic)");
  }
  codec::Reader header(std::string_view(
      file_contents.data() + kCheckpointMagicLen, 8));
  PTLDB_ASSIGN_OR_RETURN(uint32_t len, header.U32());
  PTLDB_ASSIGN_OR_RETURN(uint32_t crc, header.U32());
  size_t body_at = kCheckpointMagicLen + 8;
  if (body_at + len != file_contents.size()) {
    return Status::ParseError(
        StrCat("checkpoint body truncated: header says ", len, " bytes, file "
               "holds ", file_contents.size() - body_at));
  }
  std::string_view body(file_contents.data() + body_at, len);
  if (codec::Crc32c(body.data(), body.size()) != crc) {
    return Status::ParseError("checkpoint body fails its CRC");
  }
  return std::string(body);
}

namespace {

// Reads and validates one checkpoint file; returns its body.
Result<std::string> LoadCheckpointFile(const std::string& path) {
  std::string contents;
  PTLDB_RETURN_IF_ERROR(ReadFileToString(path, &contents));
  return ExtractCheckpointBody(contents);
}

// Decodes just the header fields of a body (id, clock, history position).
Result<CheckpointInfo> PeekInfo(const std::string& body) {
  codec::Reader r(body);
  CheckpointInfo info;
  PTLDB_ASSIGN_OR_RETURN(info.id, r.U64());
  PTLDB_ASSIGN_OR_RETURN(info.clock_now, r.I64());
  PTLDB_ASSIGN_OR_RETURN(info.history_size, r.U64());
  return info;
}

}  // namespace

Result<CheckpointInfo> ReadLatestValidCheckpoint(const std::string& dir,
                                                 std::string* body_out) {
  // First choice: the file CURRENT names.
  std::string current;
  if (ReadFileToString(StrCat(dir, "/", kCurrentFileName), &current).ok()) {
    // Trim a trailing newline, tolerated for hand-edited manifests.
    while (!current.empty() && (current.back() == '\n' || current.back() == '\r')) {
      current.pop_back();
    }
    auto body = LoadCheckpointFile(StrCat(dir, "/", current));
    if (body.ok()) {
      *body_out = std::move(body).value();
      return PeekInfo(*body_out);
    }
  }
  // Fallback: scan checkpoint-* files, newest id first. A torn CURRENT or a
  // corrupt live checkpoint must not lose the older valid one.
  std::vector<uint64_t> ids;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    std::string name = entry.path().filename().string();
    if (name.rfind(kCheckpointFilePrefix, 0) != 0) continue;
    std::string id_part = name.substr(std::strlen(kCheckpointFilePrefix));
    if (id_part.empty() ||
        id_part.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    ids.push_back(std::stoull(id_part));
  }
  if (ec) {
    return Status::Internal(
        StrCat("cannot list checkpoint directory '", dir, "': ", ec.message()));
  }
  std::sort(ids.rbegin(), ids.rend());
  for (uint64_t id : ids) {
    auto body = LoadCheckpointFile(StrCat(dir, "/", kCheckpointFilePrefix, id));
    if (body.ok()) {
      *body_out = std::move(body).value();
      return PeekInfo(*body_out);
    }
  }
  return Status::NotFound(
      StrCat("no valid checkpoint in directory '", dir, "'"));
}

Result<CheckpointInfo> RestoreCheckpoint(const std::string& body,
                                         const CheckpointTargets& targets) {
  codec::Reader r(body);
  CheckpointInfo info;
  PTLDB_ASSIGN_OR_RETURN(info.id, r.U64());
  PTLDB_ASSIGN_OR_RETURN(info.clock_now, r.I64());
  PTLDB_ASSIGN_OR_RETURN(info.history_size, r.U64());
  Timestamp history_last_time = 0;
  PTLDB_ASSIGN_OR_RETURN(history_last_time, r.I64());
  (void)history_last_time;  // re-read inside RestoreContents
  PTLDB_RETURN_IF_ERROR(targets.clock->Restore(info.clock_now));
  PTLDB_RETURN_IF_ERROR(targets.db->RestoreContents(&r));
  PTLDB_RETURN_IF_ERROR(targets.engine->RestoreRetainedState(&r));
  PTLDB_ASSIGN_OR_RETURN(bool has_vt, r.Bool());
  if (has_vt) {
    if (targets.vt == nullptr) {
      return Status::InvalidArgument(
          "checkpoint holds a valid-time store but none was supplied");
    }
    PTLDB_RETURN_IF_ERROR(targets.vt->RestoreState(&r));
  }
  PTLDB_ASSIGN_OR_RETURN(info.metrics_json, r.Str());
  if (r.remaining() > 0) {  // dumps predating the temporal subsystem end here
    PTLDB_ASSIGN_OR_RETURN(bool has_temporal, r.Bool());
    if (has_temporal) {
      if (targets.temporal == nullptr) {
        return Status::InvalidArgument(
            "checkpoint holds a version store but none was supplied");
      }
      PTLDB_RETURN_IF_ERROR(targets.temporal->Deserialize(&r));
    }
  }
  PTLDB_RETURN_IF_ERROR(r.ExpectEnd());
  return info;
}

}  // namespace ptldb::storage
