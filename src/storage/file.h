// File abstraction for the durability layer.
//
// A thin seam between the WAL/checkpoint writers and the filesystem:
// production code uses PosixWritableFile (buffered write + fsync);
// crash tests wrap it in a FaultInjectingFile that kills the process's
// write stream at an exact byte offset, producing precisely the torn
// tails recovery must cope with.

#ifndef PTLDB_STORAGE_FILE_H_
#define PTLDB_STORAGE_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace ptldb::storage {

/// Append-only output file. Not thread-safe (the engine is single-threaded).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(std::string_view data) = 0;
  /// Flushes application and OS buffers to stable storage (fsync).
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// POSIX implementation. `truncate` clears existing contents; otherwise
/// writes append to the existing file.
class PosixWritableFile : public WritableFile {
 public:
  static Result<std::unique_ptr<PosixWritableFile>> Open(
      const std::string& path, bool truncate);
  ~PosixWritableFile() override;

  Status Append(std::string_view data) override;
  Status Sync() override;
  Status Close() override;

  /// Bytes in the file (pre-existing + appended).
  uint64_t size() const { return size_; }

 private:
  PosixWritableFile(std::string path, int fd, uint64_t size)
      : path_(std::move(path)), fd_(fd), size_(size) {}

  std::string path_;
  int fd_;
  uint64_t size_;
};

/// Creates WritableFiles; the durability manager routes every file open
/// through one of these so tests can substitute fault-injecting files.
class FileFactory {
 public:
  virtual ~FileFactory() = default;
  virtual Result<std::unique_ptr<WritableFile>> OpenWritable(
      const std::string& path, bool truncate) = 0;
};

class PosixFileFactory : public FileFactory {
 public:
  Result<std::unique_ptr<WritableFile>> OpenWritable(const std::string& path,
                                                     bool truncate) override;
};

/// Crash seam: forwards writes to `base` until the total byte count reaches
/// `fail_at_byte`, writes the prefix that fits, then fails every subsequent
/// operation — the on-disk image is exactly what a crash mid-write leaves.
class FaultInjectingFile : public WritableFile {
 public:
  FaultInjectingFile(std::unique_ptr<WritableFile> base, uint64_t fail_at_byte)
      : base_(std::move(base)), fail_at_byte_(fail_at_byte) {}

  Status Append(std::string_view data) override;
  Status Sync() override;
  Status Close() override;

  bool failed() const { return failed_; }
  uint64_t bytes_written() const { return written_; }

 private:
  std::unique_ptr<WritableFile> base_;
  uint64_t fail_at_byte_;
  uint64_t written_ = 0;
  bool failed_ = false;
};

/// Factory producing one FaultInjectingFile for the path matching `suffix`
/// (others open normally) — "kill the WAL at byte k".
class FaultInjectingFileFactory : public FileFactory {
 public:
  FaultInjectingFileFactory(std::string path_suffix, uint64_t fail_at_byte)
      : suffix_(std::move(path_suffix)), fail_at_byte_(fail_at_byte) {}

  Result<std::unique_ptr<WritableFile>> OpenWritable(const std::string& path,
                                                     bool truncate) override;

 private:
  std::string suffix_;
  uint64_t fail_at_byte_;
};

/// Reads a whole file into `out`. NotFound when the file does not exist.
Status ReadFileToString(const std::string& path, std::string* out);

/// Atomic small-file write: write `path`.tmp, fsync, rename over `path`
/// (the LevelDB CURRENT-manifest idiom).
Status WriteStringToFileAtomic(const std::string& path,
                               std::string_view contents, FileFactory* factory);

}  // namespace ptldb::storage

#endif  // PTLDB_STORAGE_FILE_H_
