#include "storage/durability.h"

#include <filesystem>
#include <utility>

#include "common/strings.h"

namespace ptldb::storage {

Result<std::unique_ptr<DurabilityManager>> DurabilityManager::Attach(
    DurabilityOptions options, CheckpointTargets targets) {
  if (targets.db == nullptr || targets.engine == nullptr ||
      targets.clock == nullptr) {
    return Status::InvalidArgument(
        "durability requires a database, an engine and a clock");
  }
  if (options.dir.empty()) {
    return Status::InvalidArgument("durability directory must not be empty");
  }
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    return Status::Internal(StrCat("cannot create durability directory '",
                                   options.dir, "': ", ec.message()));
  }
  std::unique_ptr<DurabilityManager> mgr(
      new DurabilityManager(std::move(options), targets));
  mgr->factory_ = mgr->options_.file_factory != nullptr
                      ? mgr->options_.file_factory
                      : &mgr->posix_;
  // Continue the id sequence of whatever the directory already holds (e.g.
  // attaching right after Recover); a fresh directory starts at 0.
  std::string ignored_body;
  auto latest = ReadLatestValidCheckpoint(mgr->options_.dir, &ignored_body);
  if (latest.ok()) {
    mgr->next_checkpoint_id_ = latest.value().id + 1;
  } else if (latest.status().code() != StatusCode::kNotFound) {
    return latest.status();
  }
  // The attach checkpoint: durability coverage starts from the state the
  // components are in right now, whatever history preceded it.
  PTLDB_RETURN_IF_ERROR(mgr->Checkpoint());
  targets.db->SetWalSink(mgr.get());
  targets.engine->SetFiringObserver(mgr.get());
  if (targets.temporal != nullptr) targets.temporal->SetDdlSink(mgr.get());
  if (mgr->options_.checkpoint_every_n_states > 0) {
    DurabilityManager* self = mgr.get();
    targets.engine->SetPostUpdateHook([self]() {
      if (!self->status_.ok() || self->in_checkpoint_) return;
      if (self->states_since_checkpoint_ <
          self->options_.checkpoint_every_n_states) {
        return;
      }
      // Preconditions (e.g. an open transaction at this state) postpone the
      // checkpoint to a later safe point; IO failures stick via Fail().
      (void)self->Checkpoint();
    });
  }
  return mgr;
}

DurabilityManager::~DurabilityManager() {
  if (targets_.db != nullptr && targets_.db->wal_sink() == this) {
    targets_.db->SetWalSink(nullptr);
  }
  if (targets_.engine != nullptr) {
    targets_.engine->SetFiringObserver(nullptr);
    targets_.engine->SetPostUpdateHook(nullptr);
  }
  if (targets_.temporal != nullptr) targets_.temporal->SetDdlSink(nullptr);
  if (wal_ != nullptr && status_.ok()) {
    if (group_ != nullptr) {
      (void)group_->SyncAll();
    } else {
      (void)wal_->Sync();
    }
  }
}

Status DurabilityManager::AppendRecord(
    const std::function<Status(WalWriter*)>& append) {
  if (group_ != nullptr) return group_->Append(append).status();
  return append(wal_.get());
}

Status DurabilityManager::WaitWalDurable() {
  if (!status_.ok()) return status_;
  if (group_ == nullptr) return Status::OK();
  Status s = group_->SyncAll();
  if (!s.ok()) Fail(s);
  return s;
}

Status DurabilityManager::OpenFreshWal() {
  if (wal_ != nullptr) {
    const WalStats& s = wal_->stats();
    stats_snapshot_.records_appended += s.records_appended;
    stats_snapshot_.bytes_appended += s.bytes_appended;
    stats_snapshot_.syncs += s.syncs;
    stats_snapshot_.state_records += s.state_records;
    stats_snapshot_.firing_records += s.firing_records;
    stats_snapshot_.veto_records += s.veto_records;
    stats_snapshot_.temporal_records += s.temporal_records;
    wal_.reset();
  }
  PTLDB_ASSIGN_OR_RETURN(
      std::unique_ptr<WritableFile> file,
      factory_->OpenWritable(StrCat(options_.dir, "/", kWalFileName),
                             /*truncate=*/true));
  PTLDB_ASSIGN_OR_RETURN(
      WalWriter writer,
      WalWriter::Create(std::move(file), /*existing_bytes=*/0, options_.fsync));
  wal_ = std::make_unique<WalWriter>(std::move(writer));
  if (options_.fsync == FsyncPolicy::kGroup) {
    if (group_ == nullptr) {
      group_ = std::make_unique<GroupCommitter>(wal_.get());
    } else {
      group_->Rebind(wal_.get());
    }
  }
  // First record names the checkpoint this log extends — a reader can tell a
  // stale WAL (from before the crash-recover cycle) from the live one.
  WalCheckpointRecord marker;
  marker.checkpoint_id = checkpoint_id_;
  marker.history_size = targets_.db->history().size();
  return AppendRecord(
      [&marker](WalWriter* wal) { return wal->AppendCheckpoint(marker); });
}

Status DurabilityManager::Checkpoint() {
  if (!status_.ok()) return status_;
  if (in_checkpoint_) {
    return Status::InvalidArgument("checkpoint already in progress");
  }
  in_checkpoint_ = true;
  const uint64_t id = next_checkpoint_id_;
  std::string body;
  // Serialization failures (mid-dispatch, open transactions) are not sticky:
  // the store on disk is still consistent, the caller just picked a bad
  // moment.
  Status s = EncodeCheckpoint(id, targets_, &body);
  if (!s.ok()) {
    in_checkpoint_ = false;
    return s;
  }
  // Everything past this point touches the disk; failures are fatal.
  if (wal_ != nullptr) {
    s = group_ != nullptr ? group_->SyncAll() : wal_->Sync();
    if (!s.ok()) {
      in_checkpoint_ = false;
      Fail(s);
      return s;
    }
  }
  s = CommitCheckpointFile(options_.dir, id, body, factory_);
  if (!s.ok()) {
    in_checkpoint_ = false;
    Fail(s);
    return s;
  }
  ++checkpoints_taken_;
  checkpoint_id_ = id;
  next_checkpoint_id_ = id + 1;
  states_since_checkpoint_ = 0;
  s = OpenFreshWal();
  in_checkpoint_ = false;
  if (!s.ok()) {
    Fail(s);
    return s;
  }
  return Status::OK();
}

WalStats DurabilityManager::wal_stats() const {
  WalStats total = stats_snapshot_;
  if (wal_ != nullptr) {
    const WalStats& s = wal_->stats();
    total.records_appended += s.records_appended;
    total.bytes_appended += s.bytes_appended;
    total.syncs += s.syncs;
    total.state_records += s.state_records;
    total.firing_records += s.firing_records;
    total.veto_records += s.veto_records;
    total.temporal_records += s.temporal_records;
  }
  return total;
}

void DurabilityManager::BufferDelta(db::RedoDelta delta) {
  if (!status_.ok()) return;
  pending_deltas_.push_back(std::move(delta));
}

void DurabilityManager::OnStateAppended(const event::SystemState& state) {
  std::vector<db::RedoDelta> deltas = std::move(pending_deltas_);
  pending_deltas_.clear();
  if (!status_.ok() || wal_ == nullptr) return;
  WalStateRecord rec;
  rec.seq = state.seq;
  rec.time = state.time;
  rec.clock_now = targets_.clock->Now();
  rec.events = state.events;
  rec.deltas = std::move(deltas);
  Status s =
      AppendRecord([&rec](WalWriter* wal) { return wal->AppendState(rec); });
  if (!s.ok()) {
    Fail(std::move(s));
    return;
  }
  ++states_since_checkpoint_;
}

void DurabilityManager::OnFiring(const rules::Firing& firing) {
  if (!status_.ok() || wal_ == nullptr) return;
  WalFiringRecord rec;
  rec.rule = firing.rule;
  rec.params = firing.params;
  rec.time = firing.time;
  Status s =
      AppendRecord([&rec](WalWriter* wal) { return wal->AppendFiring(rec); });
  if (!s.ok()) Fail(std::move(s));
}

void DurabilityManager::OnIcVeto(int64_t txn, Timestamp time,
                                 const std::vector<std::string>& violated) {
  // Vetoed writes are never buffered (the database buffers only after the
  // verdict passes), but clear defensively: a stray delta here would leak
  // into the next committed state's record.
  pending_deltas_.clear();
  if (!status_.ok() || wal_ == nullptr) return;
  WalIcVetoRecord rec;
  rec.txn = txn;
  rec.seq = targets_.db->history().size();  // the rejected prospective seq
  rec.time = time;
  rec.violated = violated;
  Status s =
      AppendRecord([&rec](WalWriter* wal) { return wal->AppendIcVeto(rec); });
  if (!s.ok()) Fail(std::move(s));
}

Status DurabilityManager::OnTemporalOp(const temporal::TemporalOp& op) {
  if (!status_.ok()) return status_;
  if (wal_ == nullptr) return Status::OK();
  WalTemporalRecord rec;
  rec.seq = targets_.db->history().size();
  rec.op = op;
  Status s = AppendRecord(
      [&rec](WalWriter* wal) { return wal->AppendTemporal(rec); });
  if (!s.ok()) Fail(s);
  return s;
}

void DurabilityManager::Fail(Status s) {
  if (status_.ok()) status_ = std::move(s);
}

}  // namespace ptldb::storage
