// WAL group commit: one fsync retires many concurrent commits.
//
// E12 measured FsyncPolicy::kSync at ~3.5x the cost of running without
// durability — almost all of it fsync latency, paid once per appended record.
// With concurrent sessions that cost is embarrassingly amortizable: while the
// disk is busy syncing one batch, later commits pile up behind the log latch
// and the next fsync retires all of them at once. This is the classic group
// commit of transactional storage engines (and LevelDB's writer queue).
//
// Protocol:
//
//   * The WAL is opened with FsyncPolicy::kGroup, so appends never sync.
//   * Appends go through GroupCommitter::Append, which serializes access to
//     the (single-threaded) WalWriter under the log latch and hands back a
//     monotonically increasing LSN (a count of appended records; it survives
//     WAL resets across checkpoints — see Rebind).
//   * A committer that needs durability calls WaitDurable(lsn). A waiter
//     whose LSN is already durable returns immediately; otherwise it becomes
//     the *leader* and fsyncs once, covering everything appended so far.
//   * The leader holds the log latch across the fsync. Appenders and other
//     waiters queue behind it; when the latch frees, queued waiters find
//     their LSN durable and return without ever touching the disk — that
//     queueing is exactly what forms the commit groups.
//
// Failure model: an fsync or append failure is sticky. Every current waiter
// is woken with the same error, and every later Append/WaitDurable returns
// it too — once the log's coverage is in doubt, nothing may be acknowledged
// (mirrors DurabilityManager's sticky-status discipline).

#ifndef PTLDB_STORAGE_GROUP_COMMIT_H_
#define PTLDB_STORAGE_GROUP_COMMIT_H_

#include <cstdint>
#include <functional>
#include <mutex>

#include "common/status.h"
#include "storage/wal.h"

namespace ptldb::storage {

struct GroupCommitStats {
  /// Records appended through the committer.
  uint64_t appends = 0;
  /// Fsyncs issued on behalf of waiters (= number of commit groups).
  uint64_t sync_batches = 0;
  /// WaitDurable calls that returned OK.
  uint64_t commits_acked = 0;
  /// Acked commits that did not lead a sync themselves: either already
  /// durable on entry or covered by another leader's fsync.
  uint64_t commits_coalesced = 0;
  /// Most commits retired by a single fsync.
  uint64_t max_batch = 0;
};

class GroupCommitter {
 public:
  /// The committer does not own the writer; `wal` must have been created
  /// with FsyncPolicy::kGroup and stays valid until destruction or Rebind.
  explicit GroupCommitter(WalWriter* wal) : wal_(wal) {}

  GroupCommitter(const GroupCommitter&) = delete;
  GroupCommitter& operator=(const GroupCommitter&) = delete;

  /// Runs `append` against the writer under the log latch (the WalWriter
  /// itself is single-threaded). Returns the LSN to pass to WaitDurable.
  Result<uint64_t> Append(const std::function<Status(WalWriter*)>& append);

  /// Blocks until every record up to `lsn` is on stable storage; one fsync
  /// (ours or a concurrent leader's) retires the whole waiting group.
  /// Returns the sticky failure if the log is broken.
  Status WaitDurable(uint64_t lsn);

  /// Durability barrier: everything appended so far is synced on return.
  Status SyncAll();

  /// Checkpoint rebind: the manager reset the WAL to a fresh file whose
  /// contents start durable-equivalent (the checkpoint barrier synced the
  /// old log and the checkpoint supersedes it). LSNs continue monotonically
  /// across the swap, so outstanding LSN values from before the rebind
  /// compare as already durable.
  void Rebind(WalWriter* wal);

  uint64_t appended_lsn() const;
  uint64_t durable_lsn() const;
  GroupCommitStats stats() const;
  /// Sticky failure status (OK while the log is healthy).
  Status status() const;

 private:
  /// Called with mu_ held. `led_sync` says whether this ack issued the fsync.
  void RecordAck(bool led_sync);

  mutable std::mutex mu_;
  WalWriter* wal_;                 // guarded by mu_
  uint64_t appended_lsn_ = 0;      // guarded by mu_
  uint64_t durable_lsn_ = 0;       // guarded by mu_
  uint64_t batch_acks_ = 0;        // guarded by mu_; acks since last sync
  Status status_ = Status::OK();   // guarded by mu_; sticky
  GroupCommitStats stats_;         // guarded by mu_
};

}  // namespace ptldb::storage

#endif  // PTLDB_STORAGE_GROUP_COMMIT_H_
