#include "storage/recovery.h"

#include <deque>
#include <filesystem>

#include "common/strings.h"
#include "storage/wal.h"

namespace ptldb::storage {

namespace {

// Collects the replay-mode engine's firing decisions for comparison against
// the logged stream. OnIcVeto never fires during replay (no commit attempts
// are re-issued); vetoes are re-accounted straight from their WAL records.
class FiringCollector : public rules::RuleEngine::FiringObserver {
 public:
  void OnFiring(const rules::Firing& firing) override {
    ++total;
    firings.push_back(firing);
  }
  void OnIcVeto(int64_t, Timestamp, const std::vector<std::string>&) override {}

  std::deque<rules::Firing> firings;
  uint64_t total = 0;
};

}  // namespace

std::string RecoveryReport::ToString() const {
  std::string out = StrCat(
      "recovered from checkpoint ", checkpoint_id, " (history size ",
      checkpoint_history_size, "); replayed ", states_replayed,
      " state(s), ", firings_replayed, " firing(s), ", ic_vetoes_replayed,
      " IC veto(es), ", temporal_ops_replayed, " temporal op(s); ",
      wal_records_read, " WAL record(s) read, ",
      records_skipped, " skipped, ", torn_bytes, " torn byte(s) truncated; ",
      firing_mismatches, " firing mismatch(es)");
  for (const std::string& m : mismatches) out += StrCat("\n  mismatch: ", m);
  return out;
}

Result<RecoveryReport> Recover(const std::string& dir,
                               const CheckpointTargets& targets) {
  RecoveryReport report;

  // 1. Checkpoint.
  std::string body;
  PTLDB_ASSIGN_OR_RETURN(CheckpointInfo peek,
                         ReadLatestValidCheckpoint(dir, &body));
  (void)peek;
  PTLDB_ASSIGN_OR_RETURN(CheckpointInfo info,
                         RestoreCheckpoint(body, targets));
  report.checkpoint_id = info.id;
  report.checkpoint_history_size = info.history_size;

  // 2. WAL tail.
  std::string wal_path = StrCat(dir, "/", kWalFileName);
  std::string contents;
  Status read = ReadFileToString(wal_path, &contents);
  if (read.code() == StatusCode::kNotFound) return report;  // no tail at all
  PTLDB_RETURN_IF_ERROR(read);
  if (contents.size() < kWalMagicLen) {
    // The crash hit before even the magic was durable: an empty log.
    report.torn_bytes = contents.size();
    std::error_code ec;
    std::filesystem::resize_file(wal_path, 0, ec);
    return report;
  }
  PTLDB_ASSIGN_OR_RETURN(WalReader reader, WalReader::Open(std::move(contents)));

  rules::RuleEngine& engine = *targets.engine;
  FiringCollector collector;
  engine.SetFiringObserver(&collector);
  engine.SetReplayMode(true);
  Status replay_status = Status::OK();
  // Records before this history position were already absorbed by the
  // checkpoint (a crash can land between checkpoint commit and WAL reset).
  const uint64_t restored_size = targets.db->history().size();
  bool replaying = false;
  while (replay_status.ok()) {
    auto next = reader.Next();
    if (!next.ok()) {
      replay_status = next.status();
      break;
    }
    if (!next.value().has_value()) break;
    const WalRecord& rec = **next;
    ++report.wal_records_read;
    switch (rec.type) {
      case WalRecordType::kState: {
        if (rec.state.seq < restored_size) {
          ++report.records_skipped;
          break;
        }
        if (rec.state.seq != targets.db->history().size()) {
          replay_status = Status::Internal(
              StrCat("WAL gap: next logged state has seq ", rec.state.seq,
                     " but the history is at ", targets.db->history().size()));
          break;
        }
        replaying = true;
        replay_status = targets.clock->Restore(rec.state.clock_now);
        if (!replay_status.ok()) break;
        replay_status = targets.db->ReplayState(rec.state.time,
                                                rec.state.events,
                                                rec.state.deltas);
        if (replay_status.ok()) ++report.states_replayed;
        break;
      }
      case WalRecordType::kFiring: {
        if (!replaying) {
          ++report.records_skipped;  // decision absorbed by the checkpoint
          break;
        }
        if (collector.firings.empty()) {
          ++report.firing_mismatches;
          report.mismatches.push_back(
              StrCat("logged firing of '", rec.firing.rule, "' [",
                     rec.firing.params, "] at t=", rec.firing.time,
                     " was not reproduced by the replay"));
          break;
        }
        rules::Firing got = std::move(collector.firings.front());
        collector.firings.pop_front();
        if (got.rule != rec.firing.rule || got.params != rec.firing.params ||
            got.time != rec.firing.time) {
          ++report.firing_mismatches;
          report.mismatches.push_back(
              StrCat("logged firing '", rec.firing.rule, "' [",
                     rec.firing.params, "] t=", rec.firing.time,
                     " but replay produced '", got.rule, "' [", got.params,
                     "] t=", got.time));
        }
        break;
      }
      case WalRecordType::kIcVeto:
        if (!replaying) {
          ++report.records_skipped;
          break;
        }
        engine.NoteReplayedIcVeto(rec.veto.violated);
        ++report.ic_vetoes_replayed;
        break;
      case WalRecordType::kTemporal:
        // Ops the checkpoint already absorbed are skipped by position;
        // ApplyOp is idempotent at the `==` boundary (an op journaled at the
        // same history size the checkpoint captured).
        if (rec.temporal.seq < restored_size) {
          ++report.records_skipped;
          break;
        }
        if (targets.temporal == nullptr) {
          replay_status = Status::InvalidArgument(
              "WAL holds versioning ops but no version store was supplied");
          break;
        }
        replay_status = targets.temporal->ApplyOp(rec.temporal.op);
        if (replay_status.ok()) ++report.temporal_ops_replayed;
        break;
      case WalRecordType::kCheckpoint:
        break;  // informational
    }
  }
  report.firings_replayed = collector.total;
  // Decisions still queued in the collector belong to the torn tail: the
  // state record survived but its firing records did not. The replayed
  // decisions are authoritative there — nothing to compare against.
  engine.SetReplayMode(false);
  engine.SetFiringObserver(nullptr);
  if (!replay_status.ok()) return replay_status;

  // 3. Truncate the torn tail so the next writer appends after a valid
  // prefix (appending after garbage would hide it from every later reader).
  report.torn_bytes = reader.torn_bytes();
  if (report.torn_bytes > 0) {
    std::error_code ec;
    std::filesystem::resize_file(wal_path, reader.valid_prefix_bytes(), ec);
    if (ec) {
      return Status::Internal(StrCat("cannot truncate torn WAL tail of '",
                                     wal_path, "': ", ec.message()));
    }
  }
  return report;
}

}  // namespace ptldb::storage
