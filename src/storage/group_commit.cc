#include "storage/group_commit.h"

#include <algorithm>

#include "common/strings.h"

namespace ptldb::storage {

Result<uint64_t> GroupCommitter::Append(
    const std::function<Status(WalWriter*)>& append) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!status_.ok()) return status_;
  Status s = append(wal_);
  if (!s.ok()) {
    status_ = s;
    return status_;
  }
  ++stats_.appends;
  return ++appended_lsn_;
}

void GroupCommitter::RecordAck(bool led_sync) {
  ++stats_.commits_acked;
  if (!led_sync) ++stats_.commits_coalesced;
  ++batch_acks_;
  stats_.max_batch = std::max(stats_.max_batch, batch_acks_);
}

Status GroupCommitter::WaitDurable(uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!status_.ok()) return status_;
  if (lsn > appended_lsn_) {
    return Status::InvalidArgument(
        StrCat("WaitDurable(", lsn, ") past the last appended LSN ",
               appended_lsn_));
  }
  if (durable_lsn_ >= lsn) {
    // Covered by a sync some earlier leader issued while we queued on the
    // latch (or long before) — the amortized fast path.
    RecordAck(/*led_sync=*/false);
    return Status::OK();
  }
  // Lead: one fsync covers everything appended so far, not just our record.
  // The latch is held across the fsync; committers piling up behind it form
  // the next group.
  const uint64_t target = appended_lsn_;
  Status s = wal_->Sync();
  if (!s.ok()) {
    // Sticky: the tail's coverage is unknown, nothing may be acked anymore.
    // Every queued and future waiter gets this same status.
    status_ = s;
    return status_;
  }
  durable_lsn_ = target;
  ++stats_.sync_batches;
  batch_acks_ = 0;
  RecordAck(/*led_sync=*/true);
  return Status::OK();
}

Status GroupCommitter::SyncAll() {
  uint64_t end;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!status_.ok()) return status_;
    end = appended_lsn_;
    if (end == durable_lsn_ && end == 0) return Status::OK();
    if (durable_lsn_ >= end) return Status::OK();
  }
  return WaitDurable(end);
}

void GroupCommitter::Rebind(WalWriter* wal) {
  std::lock_guard<std::mutex> lock(mu_);
  wal_ = wal;
  // The checkpoint barrier synced the old log before the swap and the fresh
  // log is superseded by the checkpoint itself, so every LSN handed out so
  // far is durable by definition.
  durable_lsn_ = appended_lsn_;
  batch_acks_ = 0;
}

uint64_t GroupCommitter::appended_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_lsn_;
}

uint64_t GroupCommitter::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_lsn_;
}

GroupCommitStats GroupCommitter::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Status GroupCommitter::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

}  // namespace ptldb::storage
