#include "storage/file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace ptldb::storage {

namespace {

Status Errno(const char* op, const std::string& path) {
  return Status::Internal(StrCat(op, " '", path, "': ", std::strerror(errno)));
}

}  // namespace

Result<std::unique_ptr<PosixWritableFile>> PosixWritableFile::Open(
    const std::string& path, bool truncate) {
  int flags = O_WRONLY | O_CREAT | O_APPEND | (truncate ? O_TRUNC : 0);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return Errno("open", path);
  struct stat st;
  uint64_t size = 0;
  if (::fstat(fd, &st) == 0) size = static_cast<uint64_t>(st.st_size);
  return std::unique_ptr<PosixWritableFile>(
      new PosixWritableFile(path, fd, size));
}

PosixWritableFile::~PosixWritableFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status PosixWritableFile::Append(std::string_view data) {
  if (fd_ < 0) return Status::Internal(StrCat("file '", path_, "' is closed"));
  const char* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path_);
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  size_ += data.size();
  return Status::OK();
}

Status PosixWritableFile::Sync() {
  if (fd_ < 0) return Status::Internal(StrCat("file '", path_, "' is closed"));
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
  return Status::OK();
}

Status PosixWritableFile::Close() {
  if (fd_ < 0) return Status::OK();
  int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) return Errno("close", path_);
  return Status::OK();
}

Result<std::unique_ptr<WritableFile>> PosixFileFactory::OpenWritable(
    const std::string& path, bool truncate) {
  PTLDB_ASSIGN_OR_RETURN(std::unique_ptr<PosixWritableFile> f,
                         PosixWritableFile::Open(path, truncate));
  return std::unique_ptr<WritableFile>(std::move(f));
}

Status FaultInjectingFile::Append(std::string_view data) {
  if (failed_) return Status::Internal("injected fault: file already dead");
  if (written_ + data.size() > fail_at_byte_) {
    // Write the prefix that fits — a crash mid-write persists partial data —
    // then declare the file dead.
    size_t fits = static_cast<size_t>(fail_at_byte_ - written_);
    if (fits > 0) {
      Status s = base_->Append(data.substr(0, fits));
      if (!s.ok()) return s;
      written_ += fits;
    }
    failed_ = true;
    (void)base_->Sync();  // persist the torn prefix like a real crash would
    return Status::Internal(
        StrCat("injected fault: write stream killed at byte ", fail_at_byte_));
  }
  Status s = base_->Append(data);
  if (s.ok()) written_ += data.size();
  return s;
}

Status FaultInjectingFile::Sync() {
  if (failed_) return Status::Internal("injected fault: file already dead");
  return base_->Sync();
}

Status FaultInjectingFile::Close() { return base_->Close(); }

Result<std::unique_ptr<WritableFile>> FaultInjectingFileFactory::OpenWritable(
    const std::string& path, bool truncate) {
  PTLDB_ASSIGN_OR_RETURN(std::unique_ptr<PosixWritableFile> base,
                         PosixWritableFile::Open(path, truncate));
  bool matches = path.size() >= suffix_.size() &&
                 path.compare(path.size() - suffix_.size(), suffix_.size(),
                              suffix_) == 0;
  if (!matches) return std::unique_ptr<WritableFile>(std::move(base));
  return std::unique_ptr<WritableFile>(
      new FaultInjectingFile(std::move(base), fail_at_byte_));
}

Status ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound(StrCat("no such file: '", path, "'"));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::Internal(StrCat("read of '", path, "' failed"));
  *out = std::move(buf).str();
  return Status::OK();
}

Status WriteStringToFileAtomic(const std::string& path,
                               std::string_view contents,
                               FileFactory* factory) {
  std::string tmp = path + ".tmp";
  PTLDB_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> f,
                         factory->OpenWritable(tmp, /*truncate=*/true));
  PTLDB_RETURN_IF_ERROR(f->Append(contents));
  PTLDB_RETURN_IF_ERROR(f->Sync());
  PTLDB_RETURN_IF_ERROR(f->Close());
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Errno("rename", path);
  }
  return Status::OK();
}

}  // namespace ptldb::storage
