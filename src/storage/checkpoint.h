// Checkpointing of the full retained state (the durability tentpole's
// second half: WAL for the tail, checkpoints for the prefix).
//
// A checkpoint serializes everything a restarted process cannot recompute
// from code alone: the database contents and history position, the rule
// engine's per-instance F_{g,i} and-or graphs and aggregate machines, the
// valid-time store with its monitors' per-state evaluator checkpoints, the
// logical clock, and a metrics snapshot (informational).
//
// Directory layout (LevelDB-style):
//
//   <dir>/CURRENT           — name of the live checkpoint file ("checkpoint-7")
//   <dir>/checkpoint-<id>   — magic "PTLCKPT1" + [u32 len][u32 crc][body]
//   <dir>/wal.log           — WAL tail since that checkpoint
//
// CURRENT is replaced atomically (tmp + rename). If CURRENT or the file it
// names is corrupt, the loader falls back to scanning checkpoint-* files in
// descending id order, so one torn checkpoint write never loses the store.

#ifndef PTLDB_STORAGE_CHECKPOINT_H_
#define PTLDB_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/status.h"
#include "db/database.h"
#include "rules/engine.h"
#include "storage/file.h"
#include "temporal/versioning.h"
#include "validtime/vt.h"

namespace ptldb::storage {

inline constexpr char kCheckpointMagic[] = "PTLCKPT1";  // 8 bytes on disk
inline constexpr size_t kCheckpointMagicLen = 8;
inline constexpr char kCurrentFileName[] = "CURRENT";
inline constexpr char kWalFileName[] = "wal.log";
inline constexpr char kCheckpointFilePrefix[] = "checkpoint-";

/// The components a checkpoint covers. `vt`, `metrics` and `temporal` may be
/// null.
struct CheckpointTargets {
  db::Database* db = nullptr;
  rules::RuleEngine* engine = nullptr;
  Clock* clock = nullptr;
  validtime::VtDatabase* vt = nullptr;
  Metrics* metrics = nullptr;
  /// System-period version store; serialized last in the body so dumps from
  /// before the temporal subsystem restore unchanged.
  temporal::VersionStore* temporal = nullptr;
};

/// Summary of a loaded checkpoint.
struct CheckpointInfo {
  uint64_t id = 0;
  uint64_t history_size = 0;
  Timestamp clock_now = 0;
  std::string metrics_json;  // snapshot taken at checkpoint time ("" if none)
};

/// Serializes the full retained state of `targets` into a checkpoint body
/// (unframed). Fails when the engine is mid-dispatch or transactions are
/// open — checkpoints are only taken at quiescent points.
Status EncodeCheckpoint(uint64_t id, const CheckpointTargets& targets,
                        std::string* out);

/// Writes `<dir>/checkpoint-<id>` (magic + framed body + fsync) and then
/// atomically points CURRENT at it.
Status CommitCheckpointFile(const std::string& dir, uint64_t id,
                            const std::string& body, FileFactory* factory);

/// Loads the newest valid checkpoint body: CURRENT first, then a descending
/// scan of checkpoint-* files. NotFound when the directory holds none.
Result<CheckpointInfo> ReadLatestValidCheckpoint(const std::string& dir,
                                                 std::string* body_out);

/// Restores a checkpoint body into `targets`: clock, database contents,
/// engine retained state, valid-time store. The application must have
/// re-registered all rules/triggers first (their conditions are validated
/// against the dump). Returns the decoded summary.
Result<CheckpointInfo> RestoreCheckpoint(const std::string& body,
                                         const CheckpointTargets& targets);

/// Validates magic + framing + CRC of a checkpoint file image and returns
/// the body. ParseError/Internal on corruption.
Result<std::string> ExtractCheckpointBody(const std::string& file_contents);

}  // namespace ptldb::storage

#endif  // PTLDB_STORAGE_CHECKPOINT_H_
