// Crash recovery: latest valid checkpoint + WAL tail replay.
//
// Recovery rebuilds the exact pre-crash state in three steps:
//
//   1. Load the newest valid checkpoint (CURRENT, falling back to a scan)
//      and restore clock, database, engine retained state, and the
//      valid-time store. The application must have re-registered all rules
//      and triggers first — rules are code; the checkpoint holds only their
//      retained evaluation state and validates conditions against it.
//   2. Replay the WAL tail through the *normal* engine path: each logged
//      state is re-appended (logged timestamp, logged events, logged redo
//      deltas) and dispatched to the rules with the engine in replay mode —
//      conditions are re-evaluated and firing decisions recomputed, but
//      actions do not run again (their effects are in the logged deltas, and
//      external side effects must stay exactly-once).
//   3. Compare: every logged firing decision must be reproduced byte for
//      byte by the replayed engine (the PR-3 provenance idea as a
//      differential oracle). Mismatches are reported, not silently accepted.
//      Finally the torn tail, if any, is truncated off the log.
//
// Known limitation: a state that the live engine *skipped* because the rule
// dispatch depth limit was exceeded (a pathological self-triggering loop) is
// replayed at depth 0 and would be processed; the firing comparison flags
// the divergence rather than hiding it.

#ifndef PTLDB_STORAGE_RECOVERY_H_
#define PTLDB_STORAGE_RECOVERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/checkpoint.h"

namespace ptldb::storage {

struct RecoveryReport {
  uint64_t checkpoint_id = 0;
  /// History position restored from the checkpoint.
  uint64_t checkpoint_history_size = 0;
  /// WAL state records re-applied (those past the checkpoint).
  uint64_t states_replayed = 0;
  /// WAL records skipped because the checkpoint already covered them.
  uint64_t records_skipped = 0;
  /// Firing decisions the replayed engine produced.
  uint64_t firings_replayed = 0;
  /// Logged decisions the replay failed to reproduce (must be 0).
  uint64_t firing_mismatches = 0;
  /// IC vetoes re-accounted from the log.
  uint64_t ic_vetoes_replayed = 0;
  /// Versioning DDL ops (declare/undeclare/trim) re-applied from the log.
  uint64_t temporal_ops_replayed = 0;
  uint64_t wal_records_read = 0;
  /// Bytes cut off the WAL tail (torn final write).
  uint64_t torn_bytes = 0;
  /// Human-readable mismatch descriptions (empty on a clean recovery).
  std::vector<std::string> mismatches;

  bool clean() const { return firing_mismatches == 0 && mismatches.empty(); }
  std::string ToString() const;
};

/// Recovers `<dir>` into `targets`. The targets must be freshly constructed
/// with every rule/trigger re-registered and no states appended yet.
/// Returns the report; a non-clean report means the store was recovered but
/// the replayed decisions diverged from the log (a bug, or rules were
/// re-registered with different definitions).
Result<RecoveryReport> Recover(const std::string& dir,
                               const CheckpointTargets& targets);

}  // namespace ptldb::storage

#endif  // PTLDB_STORAGE_RECOVERY_H_
