#include "eval/aux_store.h"

#include <algorithm>
#include <unordered_map>

#include "common/strings.h"
#include "db/tuple.h"

namespace ptldb::eval {

Status ScalarSeries::Record(Timestamp t, Value v) {
  if (!intervals_.empty()) {
    Interval& last = intervals_.back();
    if (t < last.start) {
      return Status::InvalidArgument(
          StrCat("record at time ", t, " precedes last interval start ",
                 last.start));
    }
    if (last.value == v) return Status::OK();  // unchanged: extend implicitly
    last.end = t;
    if (last.start == last.end) intervals_.pop_back();  // zero-length interval
  }
  if (!has_record_) {
    first_start_ = t;
    has_record_ = true;
  }
  intervals_.push_back(Interval{t, kTimeMax, std::move(v)});
  return Status::OK();
}

Result<Value> ScalarSeries::AsOf(Timestamp t) const {
  // Binary search for the interval containing t.
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](Timestamp x, const Interval& iv) { return x < iv.start; });
  if (it == intervals_.begin()) {
    // Two distinct failures: `t` may predate the series entirely (nothing was
    // ever known at `t`), or the covering interval existed but TrimBefore
    // dropped it (the answer is gone, not absent).
    if (!has_record_ || t < first_start_) {
      return Status::NotFound(
          StrCat("no value recorded at or before time ", t));
    }
    return Status::OutOfRange(
        StrCat("value history trimmed: time ", t,
               " precedes the retained history (first retained interval "
               "starts at ",
               intervals_.front().start, ")"));
  }
  --it;
  if (t >= it->end) {
    // Recorded intervals are contiguous, so a gap can only come from a trim.
    return Status::OutOfRange(
        StrCat("value history trimmed: no retained interval covers time ", t));
  }
  return it->value;
}

Result<Value> ScalarSeries::Latest() const {
  if (intervals_.empty()) return Status::NotFound("empty series");
  return intervals_.back().value;
}

void ScalarSeries::TrimBefore(Timestamp horizon) {
  while (!intervals_.empty() && intervals_.front().end <= horizon) {
    intervals_.pop_front();
    ++intervals_trimmed_;
  }
}

Status RelationHistory::Record(Timestamp t, const db::Relation& rel) {
  if (rel.schema() != schema_) {
    return Status::InvalidArgument("relation schema does not match history");
  }
  if (has_record_ && t < last_time_) {
    return Status::InvalidArgument(
        StrCat("record at time ", t, " precedes last record at ", last_time_));
  }
  // Multiset of the new contents.
  std::unordered_map<db::Tuple, int64_t, db::TupleHash> want;
  for (const db::Tuple& row : rel.rows()) ++want[row];

  // Close intervals of rows that disappeared (or whose multiplicity dropped);
  // keep rows still present. A row opened at `t` and closed at `t` would have
  // a zero-length [t, t) interval: `AsOf` can never observe it, so drop it
  // outright instead of retaining a phantom row until the next TrimBefore.
  bool any_phantom = false;
  for (StampedRow& sr : rows_) {
    if (sr.end != kTimeMax) continue;
    auto it = want.find(sr.row);
    if (it != want.end() && it->second > 0) {
      --it->second;  // still present: interval stays open
    } else {
      sr.end = t;
      if (sr.start == t) any_phantom = true;
    }
  }
  if (any_phantom) {
    size_t before = rows_.size();
    rows_.erase(std::remove_if(rows_.begin(), rows_.end(),
                               [t](const StampedRow& sr) {
                                 return sr.start == t && sr.end == t;
                               }),
                rows_.end());
    phantom_rows_dropped_ += before - rows_.size();
  }
  // Open intervals for genuinely new rows.
  for (const auto& [row, count] : want) {
    for (int64_t i = 0; i < count; ++i) {
      rows_.push_back(StampedRow{row, t, kTimeMax});
    }
  }
  last_time_ = t;
  has_record_ = true;
  return Status::OK();
}

Result<db::Relation> RelationHistory::AsOf(Timestamp t) const {
  if (!has_record_) return Status::NotFound("empty relation history");
  if (trimmed_ && t < trim_horizon_) {
    return Status::OutOfRange(
        StrCat("relation history trimmed before time ", trim_horizon_,
               "; reconstruction at ", t, " would be incomplete"));
  }
  db::Relation out(schema_);
  for (const StampedRow& sr : rows_) {
    if (sr.start <= t && t < sr.end) out.AppendUnchecked(sr.row);
  }
  return out;
}

db::Relation RelationHistory::Store() const {
  std::vector<db::Column> cols = schema_.columns();
  cols.push_back(db::Column{"T_start", ValueType::kInt64});
  cols.push_back(db::Column{"T_end", ValueType::kInt64});
  db::Relation out{db::Schema(std::move(cols))};
  for (const StampedRow& sr : rows_) {
    db::Tuple row = sr.row;
    row.push_back(Value::Time(sr.start));
    row.push_back(Value::Time(sr.end));
    out.AppendUnchecked(std::move(row));
  }
  return out;
}

void RelationHistory::TrimBefore(Timestamp horizon) {
  size_t before = rows_.size();
  rows_.erase(std::remove_if(rows_.begin(), rows_.end(),
                             [horizon](const StampedRow& sr) {
                               return sr.end <= horizon;
                             }),
              rows_.end());
  if (rows_.size() != before) {
    rows_trimmed_ += before - rows_.size();
    trimmed_ = true;
    if (horizon > trim_horizon_) trim_horizon_ = horizon;
  }
}

void ScalarSeries::Serialize(codec::Writer* w) const {
  w->Bool(has_record_);
  w->I64(first_start_);
  w->U64(intervals_trimmed_);
  w->U32(static_cast<uint32_t>(intervals_.size()));
  for (const Interval& iv : intervals_) {
    w->I64(iv.start);
    w->I64(iv.end);
    w->Val(iv.value);
  }
}

Status ScalarSeries::Deserialize(codec::Reader* r) {
  PTLDB_ASSIGN_OR_RETURN(has_record_, r->Bool());
  PTLDB_ASSIGN_OR_RETURN(first_start_, r->I64());
  PTLDB_ASSIGN_OR_RETURN(intervals_trimmed_, r->U64());
  PTLDB_ASSIGN_OR_RETURN(uint32_t n, r->U32());
  intervals_.clear();
  for (uint32_t i = 0; i < n; ++i) {
    Interval iv;
    PTLDB_ASSIGN_OR_RETURN(iv.start, r->I64());
    PTLDB_ASSIGN_OR_RETURN(iv.end, r->I64());
    PTLDB_ASSIGN_OR_RETURN(iv.value, r->Val());
    intervals_.push_back(std::move(iv));
  }
  return Status::OK();
}

void RelationHistory::Serialize(codec::Writer* w) const {
  w->U32(static_cast<uint32_t>(schema_.num_columns()));
  for (const db::Column& c : schema_.columns()) {
    w->Str(c.name);
    w->U8(static_cast<uint8_t>(c.type));
  }
  w->Bool(has_record_);
  w->I64(last_time_);
  w->Bool(trimmed_);
  w->I64(trim_horizon_);
  w->U64(rows_trimmed_);
  w->U64(phantom_rows_dropped_);
  w->U32(static_cast<uint32_t>(rows_.size()));
  for (const StampedRow& sr : rows_) {
    w->ValVec(sr.row);
    w->I64(sr.start);
    w->I64(sr.end);
  }
}

Status RelationHistory::Deserialize(codec::Reader* r) {
  PTLDB_ASSIGN_OR_RETURN(uint32_t num_cols, r->U32());
  std::vector<db::Column> cols;
  cols.reserve(num_cols);
  for (uint32_t i = 0; i < num_cols; ++i) {
    db::Column c;
    PTLDB_ASSIGN_OR_RETURN(c.name, r->Str());
    PTLDB_ASSIGN_OR_RETURN(uint8_t type, r->U8());
    c.type = static_cast<ValueType>(type);
    cols.push_back(std::move(c));
  }
  if (!(db::Schema(cols) == schema_)) {
    return Status::InvalidArgument(
        "relation history dump has a different schema");
  }
  PTLDB_ASSIGN_OR_RETURN(has_record_, r->Bool());
  PTLDB_ASSIGN_OR_RETURN(last_time_, r->I64());
  PTLDB_ASSIGN_OR_RETURN(trimmed_, r->Bool());
  PTLDB_ASSIGN_OR_RETURN(trim_horizon_, r->I64());
  PTLDB_ASSIGN_OR_RETURN(rows_trimmed_, r->U64());
  PTLDB_ASSIGN_OR_RETURN(phantom_rows_dropped_, r->U64());
  PTLDB_ASSIGN_OR_RETURN(uint32_t n, r->U32());
  rows_.clear();
  rows_.reserve(n <= r->remaining() ? n : 0);
  for (uint32_t i = 0; i < n; ++i) {
    StampedRow sr;
    PTLDB_ASSIGN_OR_RETURN(sr.row, r->ValVec());
    PTLDB_ASSIGN_OR_RETURN(sr.start, r->I64());
    PTLDB_ASSIGN_OR_RETURN(sr.end, r->I64());
    rows_.push_back(std::move(sr));
  }
  return Status::OK();
}

void RelationHistory::ExportTo(Metrics& m, const std::string& prefix) const {
  const std::string base = "aux." + prefix;
  m.gauge(base + ".rows").Set(static_cast<int64_t>(rows_.size()));
  m.gauge(base + ".bytes").Set(static_cast<int64_t>(EstimateBytes()));
  m.gauge(base + ".rows_trimmed").Set(static_cast<int64_t>(rows_trimmed_));
  m.gauge(base + ".phantom_rows_dropped")
      .Set(static_cast<int64_t>(phantom_rows_dropped_));
}

}  // namespace ptldb::eval
