#include "eval/aux_store.h"

#include <algorithm>
#include <unordered_map>

#include "common/strings.h"
#include "db/tuple.h"

namespace ptldb::eval {

namespace {

/// Wire version byte following kColumnarTag. Bump on layout changes and keep
/// the old read path.
constexpr uint8_t kColumnarVersion = 2;

}  // namespace

// ---- ScalarSeries -----------------------------------------------------------

Status ScalarSeries::Record(Timestamp t, Value v) {
  if (num_intervals() > 0) {
    if (t < starts_.back()) {
      return Status::InvalidArgument(
          StrCat("record at time ", t, " precedes last interval start ",
                 starts_.back()));
    }
    if (dict_.At(vids_.back()) == v) return Status::OK();  // extend implicitly
    ends_.back() = t;
    if (starts_.back() == t) {  // zero-length interval: replaced outright
      starts_.pop_back();
      ends_.pop_back();
      vids_.pop_back();
    }
  }
  if (!has_record_) {
    first_start_ = t;
    has_record_ = true;
  }
  starts_.push_back(t);
  ends_.push_back(kTimeMax);
  vids_.push_back(dict_.Intern(v));
  return Status::OK();
}

Result<Value> ScalarSeries::AsOf(Timestamp t) const {
  // Binary search over the start column for the first interval past `t`.
  size_t lo = base_, hi = starts_.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    ++asof_probes_;
    if (starts_[mid] <= t) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == base_) {
    // Two distinct failures: `t` may predate the series entirely (nothing was
    // ever known at `t`), or the covering interval existed but TrimBefore
    // dropped it (the answer is gone, not absent).
    if (!has_record_ || t < first_start_) {
      return Status::NotFound(
          StrCat("no value recorded at or before time ", t));
    }
    return Status::OutOfRange(
        StrCat("value history trimmed: time ", t,
               " precedes the retained history"));
  }
  size_t idx = lo - 1;
  if (t >= ends_[idx]) {
    // Recorded intervals are contiguous, so a gap can only come from a trim.
    return Status::OutOfRange(
        StrCat("value history trimmed: no retained interval covers time ", t));
  }
  return dict_.At(vids_[idx]);
}

Status ScalarSeries::GatherAsOf(const std::vector<Timestamp>& ts,
                                std::vector<Value>* out) const {
  out->clear();
  out->reserve(ts.size());
  if (ts.empty()) return Status::OK();
  // One binary search positions the cursor at the first timestamp; the rest
  // of the batch resolves by merging forward over the start column.
  size_t lo = base_, hi = starts_.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    ++asof_probes_;
    if (starts_[mid] <= ts.front()) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  size_t cursor = lo;  // first interval with start > ts[i], advanced in step
  Timestamp prev = ts.front();
  for (Timestamp t : ts) {
    if (t < prev) {
      return Status::InvalidArgument("GatherAsOf requires ascending times");
    }
    prev = t;
    while (cursor < starts_.size() && starts_[cursor] <= t) {
      ++cursor;
      ++asof_probes_;
    }
    if (cursor == base_) {
      if (!has_record_ || t < first_start_) {
        return Status::NotFound(
            StrCat("no value recorded at or before time ", t));
      }
      return Status::OutOfRange(
          StrCat("value history trimmed: time ", t,
                 " precedes the retained history"));
    }
    size_t idx = cursor - 1;
    ++asof_probes_;
    if (t >= ends_[idx]) {
      return Status::OutOfRange(StrCat(
          "value history trimmed: no retained interval covers time ", t));
    }
    out->push_back(dict_.At(vids_[idx]));
  }
  return Status::OK();
}

Result<Value> ScalarSeries::Latest() const {
  if (num_intervals() == 0) return Status::NotFound("empty series");
  return dict_.At(vids_.back());
}

void ScalarSeries::TrimBefore(Timestamp horizon) {
  // Never drop an interval that is still open: it covers the present no
  // matter the horizon (including horizon == kTimeMax).
  while (base_ < starts_.size() && ends_[base_] != kTimeMax &&
         ends_[base_] <= horizon) {
    ++base_;
    ++intervals_trimmed_;
  }
  CompactIfWorthwhile();
}

void ScalarSeries::CompactIfWorthwhile() {
  if (base_ == 0) return;
  if (base_ == starts_.size()) {
    starts_.clear();
    ends_.clear();
    vids_.clear();
    std::vector<uint32_t> remap;
    dict_.Rebuild(std::vector<bool>(dict_.size(), false), &remap);
    base_ = 0;
    return;
  }
  // Re-base once the dead prefix dominates; amortized O(1) per trimmed
  // interval.
  if (base_ < 64 || base_ < starts_.size() / 2) return;
  starts_.erase(starts_.begin(), starts_.begin() + static_cast<long>(base_));
  ends_.erase(ends_.begin(), ends_.begin() + static_cast<long>(base_));
  vids_.erase(vids_.begin(), vids_.begin() + static_cast<long>(base_));
  base_ = 0;
  // Dictionary GC: entries only the dead prefix referenced are dropped.
  std::vector<bool> live(dict_.size(), false);
  for (uint32_t vid : vids_) live[vid] = true;
  std::vector<uint32_t> remap;
  dict_.Rebuild(live, &remap);
  for (uint32_t& vid : vids_) vid = remap[vid];
}

void ScalarSeries::Serialize(codec::Writer* w) const {
  w->U8(kColumnarTag);
  w->U8(kColumnarVersion);
  w->Bool(has_record_);
  w->I64(first_start_);
  w->U64(intervals_trimmed_);
  dict_.Serialize(w);
  w->U32(static_cast<uint32_t>(num_intervals()));
  for (size_t i = base_; i < starts_.size(); ++i) {
    w->I64(starts_[i]);
    w->I64(ends_[i]);
    w->U32(vids_[i]);
  }
}

Status ScalarSeries::Deserialize(codec::Reader* r) {
  starts_.clear();
  ends_.clear();
  vids_.clear();
  base_ = 0;
  {
    std::vector<uint32_t> remap;
    dict_.Rebuild(std::vector<bool>(dict_.size(), false), &remap);
  }
  PTLDB_ASSIGN_OR_RETURN(uint8_t first, r->PeekU8());
  if (first == kColumnarTag) {
    (void)r->U8();
    PTLDB_ASSIGN_OR_RETURN(uint8_t version, r->U8());
    if (version != kColumnarVersion) {
      return Status::InvalidArgument(
          StrCat("unknown scalar-series wire version ", version));
    }
    PTLDB_ASSIGN_OR_RETURN(has_record_, r->Bool());
    PTLDB_ASSIGN_OR_RETURN(first_start_, r->I64());
    PTLDB_ASSIGN_OR_RETURN(intervals_trimmed_, r->U64());
    PTLDB_RETURN_IF_ERROR(dict_.Deserialize(r));
    PTLDB_ASSIGN_OR_RETURN(uint32_t n, r->U32());
    starts_.reserve(n <= r->remaining() ? n : 0);
    Timestamp prev_start = std::numeric_limits<Timestamp>::min();
    for (uint32_t i = 0; i < n; ++i) {
      PTLDB_ASSIGN_OR_RETURN(Timestamp s, r->I64());
      PTLDB_ASSIGN_OR_RETURN(Timestamp e, r->I64());
      PTLDB_ASSIGN_OR_RETURN(uint32_t vid, r->U32());
      if (s < prev_start || vid >= dict_.size()) {
        return Status::InvalidArgument("scalar-series dump is corrupt");
      }
      prev_start = s;
      starts_.push_back(s);
      ends_.push_back(e);
      vids_.push_back(vid);
    }
    return Status::OK();
  }
  // Migration read path: v1 row-oriented dump (bool-first layout).
  PTLDB_ASSIGN_OR_RETURN(has_record_, r->Bool());
  PTLDB_ASSIGN_OR_RETURN(first_start_, r->I64());
  PTLDB_ASSIGN_OR_RETURN(intervals_trimmed_, r->U64());
  PTLDB_ASSIGN_OR_RETURN(uint32_t n, r->U32());
  for (uint32_t i = 0; i < n; ++i) {
    PTLDB_ASSIGN_OR_RETURN(Timestamp s, r->I64());
    PTLDB_ASSIGN_OR_RETURN(Timestamp e, r->I64());
    PTLDB_ASSIGN_OR_RETURN(Value v, r->Val());
    starts_.push_back(s);
    ends_.push_back(e);
    vids_.push_back(dict_.Intern(v));
  }
  return Status::OK();
}

// ---- RelationHistory --------------------------------------------------------

uint32_t RelationHistory::EncodeTuple(const db::Tuple& row) {
  std::vector<uint32_t> cell_ids;
  cell_ids.reserve(row.size());
  for (const Value& v : row) cell_ids.push_back(values_.Intern(v));
  return tuples_.Intern(cell_ids);
}

db::Tuple RelationHistory::DecodeTuple(uint32_t tid) const {
  db::Tuple row;
  uint32_t arity = tuples_.Arity(tid);
  row.reserve(arity);
  const uint32_t* cells = arity > 0 ? tuples_.Cells(tid) : nullptr;
  for (uint32_t c = 0; c < arity; ++c) row.push_back(values_.At(cells[c]));
  return row;
}

Status RelationHistory::Record(Timestamp t, const db::Relation& rel) {
  if (rel.schema() != schema_) {
    return Status::InvalidArgument("relation schema does not match history");
  }
  if (has_record_ && t < last_time_) {
    return Status::InvalidArgument(
        StrCat("record at time ", t, " precedes last record at ", last_time_));
  }
  // Multiset of the new contents, dictionary-encoded.
  std::unordered_map<uint32_t, int64_t> want;
  std::vector<uint32_t> new_tids;
  new_tids.reserve(rel.rows().size());
  for (const db::Tuple& row : rel.rows()) {
    uint32_t tid = EncodeTuple(row);
    new_tids.push_back(tid);
    ++want[tid];
  }

  // Close intervals of rows that disappeared (or whose multiplicity
  // dropped); keep rows still present. A row opened at `t` and closed at `t`
  // would have a zero-length [t, t) interval: `AsOf` can never observe it,
  // so drop it outright instead of retaining a phantom row.
  bool any_phantom = false;
  size_t out_open = 0;
  for (size_t k = 0; k < open_rows_.size(); ++k) {
    const size_t i = open_rows_[k];
    auto it = want.find(tids_[i]);
    if (it != want.end() && it->second > 0) {
      --it->second;  // still present: interval stays open
      open_rows_[out_open++] = i;
    } else {
      ends_[i] = t;
      if (starts_[i] == t) {
        any_phantom = true;
      } else if (t > max_closed_end_) {
        max_closed_end_ = t;
      }
    }
  }
  open_rows_.resize(out_open);
  if (any_phantom) {
    size_t out = 0;
    open_rows_.clear();
    for (size_t i = 0; i < starts_.size(); ++i) {
      if (starts_[i] == t && ends_[i] == t) continue;
      starts_[out] = starts_[i];
      ends_[out] = ends_[i];
      tids_[out] = tids_[i];
      if (ends_[out] == kTimeMax) open_rows_.push_back(out);
      ++out;
    }
    phantom_rows_dropped_ += starts_.size() - out;
    starts_.resize(out);
    ends_.resize(out);
    tids_.resize(out);
  }
  // Open intervals for genuinely new rows, preserving the relation's row
  // order (deterministic, unlike iterating the count map). Appends keep
  // open_rows_ sorted: new indices are the largest so far.
  for (uint32_t tid : new_tids) {
    auto it = want.find(tid);
    if (it->second <= 0) continue;
    --it->second;
    open_rows_.push_back(starts_.size());
    starts_.push_back(t);
    ends_.push_back(kTimeMax);
    tids_.push_back(tid);
  }
  last_time_ = t;
  has_record_ = true;
  open_index_dirty_ = true;
  return Status::OK();
}

void RelationHistory::RebuildOpenIndex() {
  open_by_tid_.clear();
  for (size_t i : open_rows_) open_by_tid_[tids_[i]].push_back(i);
  open_index_dirty_ = false;
}

Status RelationHistory::ApplyDelta(Timestamp t,
                                   const std::vector<db::Tuple>& removed,
                                   const std::vector<db::Tuple>& added) {
  if (has_record_ && t < last_time_) {
    return Status::InvalidArgument(
        StrCat("delta at time ", t, " precedes last record at ", last_time_));
  }
  for (const std::vector<db::Tuple>* side : {&removed, &added}) {
    for (const db::Tuple& row : *side) {
      if (row.size() != schema_.num_columns()) {
        return Status::InvalidArgument(
            "delta row arity does not match history schema");
      }
    }
  }
  // Dictionary-encode both sides and cancel tuples present in both: a row
  // deleted and re-inserted (or updated to itself) within one commit never
  // left the relation, so its interval stays open — the same multiset diff
  // Record computes from a full snapshot.
  std::vector<uint32_t> rm_tids, add_tids;
  rm_tids.reserve(removed.size());
  add_tids.reserve(added.size());
  for (const db::Tuple& row : removed) rm_tids.push_back(EncodeTuple(row));
  for (const db::Tuple& row : added) add_tids.push_back(EncodeTuple(row));
  {
    std::unordered_map<uint32_t, int64_t> add_count;
    for (uint32_t tid : add_tids) ++add_count[tid];
    std::unordered_map<uint32_t, int64_t> common;
    for (uint32_t tid : rm_tids) {
      auto it = add_count.find(tid);
      if (it != add_count.end() && it->second > 0) {
        --it->second;
        ++common[tid];
      }
    }
    auto cancel = [&common](std::vector<uint32_t>* tids) {
      std::unordered_map<uint32_t, int64_t> budget = common;
      size_t out = 0;
      for (uint32_t tid : *tids) {
        auto it = budget.find(tid);
        if (it != budget.end() && it->second > 0) {
          --it->second;
          continue;
        }
        (*tids)[out++] = tid;
      }
      tids->resize(out);
    };
    cancel(&rm_tids);
    cancel(&add_tids);
  }
  if (open_index_dirty_) RebuildOpenIndex();
  // Validate liveness up front so the store is never left half-mutated.
  {
    std::unordered_map<uint32_t, int64_t> need;
    for (uint32_t tid : rm_tids) ++need[tid];
    for (const auto& [tid, n] : need) {
      auto it = open_by_tid_.find(tid);
      if (it == open_by_tid_.end() ||
          static_cast<int64_t>(it->second.size()) < n) {
        return Status::InvalidArgument(
            StrCat("delta at time ", t, " removes a row that is not live"));
      }
    }
  }
  bool any_phantom = false;
  for (uint32_t tid : rm_tids) {
    std::vector<size_t>& bucket = open_by_tid_[tid];
    const size_t i = bucket.back();
    bucket.pop_back();
    ends_[i] = t;
    if (starts_[i] == t) {
      any_phantom = true;
    } else if (t > max_closed_end_) {
      max_closed_end_ = t;
    }
  }
  if (!rm_tids.empty()) {
    size_t out = 0;
    for (size_t i : open_rows_) {
      if (ends_[i] == kTimeMax) open_rows_[out++] = i;
    }
    open_rows_.resize(out);
  }
  if (any_phantom) {
    // Same compaction as Record: a [t, t) row is unobservable, drop it.
    size_t out = 0;
    open_rows_.clear();
    for (size_t i = 0; i < starts_.size(); ++i) {
      if (starts_[i] == t && ends_[i] == t) continue;
      starts_[out] = starts_[i];
      ends_[out] = ends_[i];
      tids_[out] = tids_[i];
      if (ends_[out] == kTimeMax) open_rows_.push_back(out);
      ++out;
    }
    phantom_rows_dropped_ += starts_.size() - out;
    starts_.resize(out);
    ends_.resize(out);
    tids_.resize(out);
    open_index_dirty_ = true;  // row indices shifted
  }
  for (uint32_t tid : add_tids) {
    const size_t i = starts_.size();
    open_rows_.push_back(i);
    if (!open_index_dirty_) open_by_tid_[tid].push_back(i);
    starts_.push_back(t);
    ends_.push_back(kTimeMax);
    tids_.push_back(tid);
  }
  last_time_ = t;
  has_record_ = true;
  return Status::OK();
}

Result<db::Relation> RelationHistory::AsOf(Timestamp t) const {
  if (!has_record_) return Status::NotFound("empty relation history");
  if (trimmed_ && t < trim_horizon_) {
    return Status::OutOfRange(
        StrCat("relation history trimmed before time ", trim_horizon_,
               "; reconstruction at ", t, " would be incomplete"));
  }
  db::Relation out(schema_);
  if (t >= last_time_ && t >= max_closed_end_) {
    // Current-time fast path: no closed interval can cover `t`, so only open
    // rows qualify — O(live relation) via the open-row index, independent of
    // how much closed history is retained. open_rows_ ascends, so the output
    // order matches the historical path's store order.
    for (size_t i : open_rows_) {
      ++asof_probes_;
      out.AppendUnchecked(DecodeTuple(tids_[i]));
    }
    return out;
  }
  // Historical read: binary search the start column for the candidate
  // prefix (start <= t), then filter by end.
  size_t lo = 0, hi = starts_.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    ++asof_probes_;
    if (starts_[mid] <= t) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  for (size_t i = 0; i < lo; ++i) {
    ++asof_probes_;
    if (t < ends_[i]) out.AppendUnchecked(DecodeTuple(tids_[i]));
  }
  return out;
}

db::Relation RelationHistory::Store() const {
  std::vector<db::Column> cols = schema_.columns();
  cols.push_back(db::Column{"T_start", ValueType::kInt64});
  cols.push_back(db::Column{"T_end", ValueType::kInt64});
  db::Relation out{db::Schema(std::move(cols))};
  for (size_t i = 0; i < starts_.size(); ++i) {
    db::Tuple row = DecodeTuple(tids_[i]);
    row.push_back(Value::Time(starts_[i]));
    row.push_back(Value::Time(ends_[i]));
    out.AppendUnchecked(std::move(row));
  }
  return out;
}

void RelationHistory::TrimBefore(Timestamp horizon) {
  size_t out = 0;
  Timestamp new_max_closed = std::numeric_limits<Timestamp>::min();
  Timestamp max_dropped_end = std::numeric_limits<Timestamp>::min();
  std::vector<size_t> new_open;
  new_open.reserve(open_rows_.size());
  for (size_t i = 0; i < starts_.size(); ++i) {
    // Open rows are never trimmed (they cover the present even when the
    // horizon is kTimeMax); closed rows go once their validity has ended at
    // or before the horizon.
    if (ends_[i] != kTimeMax && ends_[i] <= horizon) {
      if (ends_[i] > max_dropped_end) max_dropped_end = ends_[i];
      continue;
    }
    if (ends_[i] != kTimeMax && ends_[i] > new_max_closed) {
      new_max_closed = ends_[i];
    }
    starts_[out] = starts_[i];
    ends_[out] = ends_[i];
    tids_[out] = tids_[i];
    if (ends_[out] == kTimeMax) new_open.push_back(out);
    ++out;
  }
  if (out != starts_.size()) {
    rows_trimmed_ += starts_.size() - out;
    starts_.resize(out);
    ends_.resize(out);
    tids_.resize(out);
    open_rows_ = std::move(new_open);
    max_closed_end_ = new_max_closed;
    trimmed_ = true;
    // Reconstruction at t is incomplete only if a dropped row could have been
    // live at t, i.e. t < its end. The tight bound is the max dropped end,
    // not the requested horizon (a TrimBefore(kTimeMax) that only sheds
    // long-dead rows must not poison probes of the still-covered present).
    if (max_dropped_end > trim_horizon_) trim_horizon_ = max_dropped_end;
    CompactDictionaries();
    open_index_dirty_ = true;  // tuple ids remapped, row indices shifted
  }
}

void RelationHistory::CompactDictionaries() {
  std::vector<bool> live_tuples(tuples_.size(), false);
  for (uint32_t tid : tids_) live_tuples[tid] = true;
  std::vector<bool> live_values(values_.size(), false);
  for (size_t tid = 0; tid < tuples_.size(); ++tid) {
    if (!live_tuples[tid]) continue;
    uint32_t arity = tuples_.Arity(static_cast<uint32_t>(tid));
    const uint32_t* cells =
        arity > 0 ? tuples_.Cells(static_cast<uint32_t>(tid)) : nullptr;
    for (uint32_t c = 0; c < arity; ++c) live_values[cells[c]] = true;
  }
  std::vector<uint32_t> value_remap;
  values_.Rebuild(live_values, &value_remap);
  std::vector<uint32_t> tuple_remap;
  tuples_.Rebuild(live_tuples, value_remap, &tuple_remap);
  for (uint32_t& tid : tids_) tid = tuple_remap[tid];
}

void RelationHistory::Serialize(codec::Writer* w) const {
  w->U8(kColumnarTag);
  w->U8(kColumnarVersion);
  w->U32(static_cast<uint32_t>(schema_.num_columns()));
  for (const db::Column& c : schema_.columns()) {
    w->Str(c.name);
    w->U8(static_cast<uint8_t>(c.type));
  }
  w->Bool(has_record_);
  w->I64(last_time_);
  w->Bool(trimmed_);
  w->I64(trim_horizon_);
  w->U64(rows_trimmed_);
  w->U64(phantom_rows_dropped_);
  values_.Serialize(w);
  tuples_.Serialize(w);
  w->U32(static_cast<uint32_t>(starts_.size()));
  for (size_t i = 0; i < starts_.size(); ++i) {
    w->U32(tids_[i]);
    w->I64(starts_[i]);
    w->I64(ends_[i]);
  }
}

Status RelationHistory::Deserialize(codec::Reader* r) {
  starts_.clear();
  ends_.clear();
  tids_.clear();
  open_rows_.clear();
  open_by_tid_.clear();
  open_index_dirty_ = true;
  max_closed_end_ = std::numeric_limits<Timestamp>::min();
  {
    std::vector<uint32_t> value_remap, tuple_remap;
    tuples_.Rebuild(std::vector<bool>(tuples_.size(), false), {}, &tuple_remap);
    values_.Rebuild(std::vector<bool>(values_.size(), false), &value_remap);
  }
  PTLDB_ASSIGN_OR_RETURN(uint8_t first, r->PeekU8());
  // v1 dumps start with the u32 schema arity; its low byte equals the
  // columnar tag only for a 194-column schema, which the guard excludes.
  const bool columnar =
      first == kColumnarTag && schema_.num_columns() != kColumnarTag;
  if (columnar) {
    (void)r->U8();
    PTLDB_ASSIGN_OR_RETURN(uint8_t version, r->U8());
    if (version != kColumnarVersion) {
      return Status::InvalidArgument(
          StrCat("unknown relation-history wire version ", version));
    }
  }
  PTLDB_ASSIGN_OR_RETURN(uint32_t num_cols, r->U32());
  std::vector<db::Column> cols;
  cols.reserve(num_cols <= r->remaining() ? num_cols : 0);
  for (uint32_t i = 0; i < num_cols; ++i) {
    db::Column c;
    PTLDB_ASSIGN_OR_RETURN(c.name, r->Str());
    PTLDB_ASSIGN_OR_RETURN(uint8_t type, r->U8());
    c.type = static_cast<ValueType>(type);
    cols.push_back(std::move(c));
  }
  if (!(db::Schema(cols) == schema_)) {
    return Status::InvalidArgument(
        "relation history dump has a different schema");
  }
  PTLDB_ASSIGN_OR_RETURN(has_record_, r->Bool());
  PTLDB_ASSIGN_OR_RETURN(last_time_, r->I64());
  PTLDB_ASSIGN_OR_RETURN(trimmed_, r->Bool());
  PTLDB_ASSIGN_OR_RETURN(trim_horizon_, r->I64());
  PTLDB_ASSIGN_OR_RETURN(rows_trimmed_, r->U64());
  PTLDB_ASSIGN_OR_RETURN(phantom_rows_dropped_, r->U64());
  if (columnar) {
    PTLDB_RETURN_IF_ERROR(values_.Deserialize(r));
    PTLDB_RETURN_IF_ERROR(tuples_.Deserialize(r));
    PTLDB_ASSIGN_OR_RETURN(uint32_t n, r->U32());
    starts_.reserve(n <= r->remaining() ? n : 0);
    Timestamp prev_start = std::numeric_limits<Timestamp>::min();
    for (uint32_t i = 0; i < n; ++i) {
      PTLDB_ASSIGN_OR_RETURN(uint32_t tid, r->U32());
      PTLDB_ASSIGN_OR_RETURN(Timestamp s, r->I64());
      PTLDB_ASSIGN_OR_RETURN(Timestamp e, r->I64());
      if (tid >= tuples_.size() || s < prev_start) {
        return Status::InvalidArgument("relation-history dump is corrupt");
      }
      prev_start = s;
      if (e == kTimeMax) open_rows_.push_back(starts_.size());
      tids_.push_back(tid);
      starts_.push_back(s);
      ends_.push_back(e);
      if (e != kTimeMax && e > max_closed_end_) max_closed_end_ = e;
    }
    return Status::OK();
  }
  // Migration read path: v1 row-oriented dump.
  PTLDB_ASSIGN_OR_RETURN(uint32_t n, r->U32());
  for (uint32_t i = 0; i < n; ++i) {
    PTLDB_ASSIGN_OR_RETURN(db::Tuple row, r->ValVec());
    PTLDB_ASSIGN_OR_RETURN(Timestamp s, r->I64());
    PTLDB_ASSIGN_OR_RETURN(Timestamp e, r->I64());
    if (e == kTimeMax) open_rows_.push_back(starts_.size());
    tids_.push_back(EncodeTuple(row));
    starts_.push_back(s);
    ends_.push_back(e);
    if (e != kTimeMax && e > max_closed_end_) max_closed_end_ = e;
  }
  return Status::OK();
}

void RelationHistory::ExportTo(Metrics& m, const std::string& prefix) const {
  const std::string base = "aux." + prefix;
  m.gauge(base + ".rows").Set(static_cast<int64_t>(num_rows()));
  m.gauge(base + ".bytes").Set(static_cast<int64_t>(EstimateBytes()));
  m.gauge(base + ".rows_trimmed").Set(static_cast<int64_t>(rows_trimmed_));
  m.gauge(base + ".phantom_rows_dropped")
      .Set(static_cast<int64_t>(phantom_rows_dropped_));
  m.gauge(base + ".dict").Set(static_cast<int64_t>(tuples_.size()));
  m.gauge(base + ".values_dict").Set(static_cast<int64_t>(values_.size()));
  m.gauge(base + ".asof_probes").Set(static_cast<int64_t>(asof_probes_));
}

void ScalarSeries::ExportTo(Metrics& m, const std::string& prefix) const {
  const std::string base = "aux." + prefix;
  m.gauge(base + ".intervals").Set(static_cast<int64_t>(num_intervals()));
  m.gauge(base + ".bytes").Set(static_cast<int64_t>(EstimateBytes()));
  m.gauge(base + ".trimmed").Set(static_cast<int64_t>(intervals_trimmed_));
  m.gauge(base + ".dict").Set(static_cast<int64_t>(dict_.size()));
  m.gauge(base + ".asof_probes").Set(static_cast<int64_t>(asof_probes_));
}

}  // namespace ptldb::eval
