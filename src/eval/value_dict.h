// Dictionary encoding for the columnar auxiliary relations.
//
// The §5 aux stores retain long histories whose value domain is tiny compared
// to the interval count (a price series revisits the same levels; a relation
// history re-opens the same tuples). Dictionary encoding stores each distinct
// scalar (or tuple of scalar ids) once and lets the column vectors hold packed
// 32-bit ids — the same move VLog makes with packed-uint64 terms — so per-row
// retained state is integers, not boxed Values.
//
// Ids are dense, assigned in first-intern order, and stable for the life of
// the dictionary (Rebuild() remaps them during retention GC). Dictionaries
// serialize with their store so a deserialized history answers identical
// AsOf/Store queries.

#ifndef PTLDB_EVAL_VALUE_DICT_H_
#define PTLDB_EVAL_VALUE_DICT_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/codec.h"
#include "common/status.h"
#include "common/value.h"

namespace ptldb::eval {

/// Interns scalar Values to dense uint32 ids.
class ValueDict {
 public:
  /// Id of `v`, interning it on first sight.
  uint32_t Intern(const Value& v);

  /// The value for an id previously returned by Intern. Unchecked.
  const Value& At(uint32_t id) const { return values_[id]; }

  size_t size() const { return values_.size(); }

  /// Deep retained bytes: entries (including string payloads) plus the
  /// reverse index. The index is estimated structurally (buckets + nodes),
  /// not measured, so the figure is deterministic across runs.
  size_t EstimateBytes() const;

  /// Drops every entry not marked live and compacts ids. `live` is indexed
  /// by id; `remap` (same length) receives old-id -> new-id for callers to
  /// rewrite their columns. Ids of dropped entries map to UINT32_MAX.
  void Rebuild(const std::vector<bool>& live, std::vector<uint32_t>* remap);

  void Serialize(codec::Writer* w) const;
  Status Deserialize(codec::Reader* r);

 private:
  std::vector<Value> values_;
  std::unordered_map<Value, uint32_t, ValueHash> index_;
};

/// Interns tuples of value ids (a dictionary-encoded row) to dense ids.
/// Backing storage is one flat id vector plus (offset, arity) per tuple.
class TupleDict {
 public:
  /// Id of the id-tuple `ids`, interning it on first sight.
  uint32_t Intern(const std::vector<uint32_t>& ids);

  /// Cells of tuple `id` as a span into the flat store. Unchecked.
  const uint32_t* Cells(uint32_t id) const { return &flat_[offsets_[id]]; }
  uint32_t Arity(uint32_t id) const { return arities_[id]; }

  size_t size() const { return offsets_.size(); }

  size_t EstimateBytes() const;

  /// Remaps every cell through `value_remap` (after a ValueDict::Rebuild) and
  /// drops tuples not marked live; `remap` receives old -> new tuple ids.
  void Rebuild(const std::vector<bool>& live,
               const std::vector<uint32_t>& value_remap,
               std::vector<uint32_t>* remap);

  void Serialize(codec::Writer* w) const;
  Status Deserialize(codec::Reader* r);

 private:
  void RebuildIndex();

  std::vector<uint32_t> flat_;
  std::vector<uint32_t> offsets_;
  std::vector<uint32_t> arities_;
  // Keyed on the raw bytes of the id tuple: self-contained (no pointer back
  // into the flat store), so the dictionary stays trivially movable.
  std::unordered_map<std::string, uint32_t> index_;
};

}  // namespace ptldb::eval

#endif  // PTLDB_EVAL_VALUE_DICT_H_
