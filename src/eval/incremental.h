// The §5 incremental condition evaluator — the paper's core contribution.
//
// For a PTL condition f, the evaluator maintains one symbolic formula
// F_{g,i} (a Graph node) per temporal subformula g, updated on each new
// system state via the recurrences
//
//   F_{g Since h, i}      = F_{h,i} OR (F_{g,i} AND F_{g Since h, i-1})
//   F_{Previously g, i}   = F_{g,i} OR F_{Previously g, i-1}
//   F_{Throughout g, i}   = F_{g,i} AND F_{Throughout g, i-1}
//   F_{Lasttime g, i}     = F_{g, i-1}
//   F_{[x := q] g, i}     = F_{g,i}[x := q(S_i)]
//
// and fires the trigger iff the top formula evaluates to `true` (Theorem 1).
// Per-update work depends on the size of the retained symbolic state, never
// on the length of the history. Temporal aggregates (§6) are folded in as
// incremental accumulator machines whose start/sampling formulas are
// themselves evaluated incrementally; sliding-window aggregates use
// O(1)-amortized monotonic-deque machines.
//
// Checkpoint/Restore supports the execution model's hypothetical evaluation:
// integrity constraints are probed against a prospective commit state and
// rolled back when the transaction aborts (§8), and the valid-time layer
// replays suffixes after retroactive updates (§9).

#ifndef PTLDB_EVAL_INCREMENTAL_H_
#define PTLDB_EVAL_INCREMENTAL_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "eval/graph.h"
#include "ptl/analyzer.h"
#include "ptl/naive_eval.h"
#include "ptl/snapshot.h"

namespace ptldb::eval {

/// Persistent state of one temporal-aggregate machine. Copyable (checkpoints
/// store the whole vector).
struct AggMachineState {
  // kAgg (start/sample driven):
  bool is_window = false;
  bool started = false;
  ptl::AggAccumulator acc{ptl::TemporalAggFn::kSum};
  int start_unit = -1;   // unit index of the start formula root
  int sample_unit = -1;  // unit index of the sampling formula root
  int query_slot = -1;   // snapshot slot of the aggregated query
  ptl::TemporalAggFn fn = ptl::TemporalAggFn::kSum;

  // kWindowAgg:
  Timestamp width = 0;
  std::deque<std::pair<Timestamp, double>> window;  // (time, value) in order
  std::deque<std::pair<Timestamp, double>> mono;    // monotonic, for min/max
  double running_sum = 0;

  /// Current aggregate value.
  Result<Value> Current() const;
  /// Window-machine update for one state.
  Status WindowObserve(Timestamp now, const Value& v);
};

class IncrementalEvaluator {
 public:
  struct Options {
    /// §5 time-bound pruning. Disable only for the E2 ablation.
    bool time_pruning = true;
    /// §5 interval subsumption in the and-or graph. Disable only for the E2
    /// ablation (together with time_pruning this gives the unoptimized
    /// algorithm whose retained formulas grow with the history).
    bool subsumption = true;
  };

  /// Compiles `analysis` (which must have been produced by ptl::Analyze).
  static Result<IncrementalEvaluator> Make(ptl::Analysis analysis,
                                           Options options);
  static Result<IncrementalEvaluator> Make(ptl::Analysis analysis) {
    return Make(std::move(analysis), Options{});
  }

  IncrementalEvaluator(IncrementalEvaluator&&) = default;
  IncrementalEvaluator& operator=(IncrementalEvaluator&&) = default;

  const ptl::Analysis& analysis() const { return analysis_; }

  /// Advances over one system state; returns whether the condition is
  /// satisfied at that state (i.e. whether the trigger fires).
  Result<bool> Step(const ptl::StateSnapshot& snapshot);

  /// Number of states observed so far.
  uint64_t steps() const { return steps_; }

  /// Whether the last Step reported satisfaction.
  bool last_fired() const { return last_fired_; }

  // ---- Firing-provenance tracing ----
  //
  // With tracing on, each Step additionally records which temporal
  // subformulas' truth status flipped at that state (the F_{g,i} recurrence
  // transitions) and which `[x := q]` values were bound, and maintains a
  // per-subformula *anchor*: the most recent state at which its recurrence
  // became satisfied, with the bindings observed there. The anchors form the
  // witness chain a fired rule reports (rules/provenance.h). Off (the
  // default) the only cost is one predictable branch per temporal/bind unit.

  /// One `[x := q]` substitution observed during a Step.
  struct BindEvent {
    std::string var;
    Value value;
  };

  /// One temporal subformula whose truth status changed at this Step.
  struct FlipEvent {
    std::string subformula;    // g's source rendering
    const char* op = "";       // "since" | "lasttime" | ...
    const char* transition = "";  // "sat" | "unsat" | "residual"
    int64_t seq = -1;          // snapshot sequence of the flip
    int mem_slot = -1;
  };

  struct StepTrace {
    std::vector<FlipEvent> flips;
    std::vector<BindEvent> binds;
  };

  /// The most recent state at which one temporal subformula's recurrence
  /// became satisfied (one per mem slot; seq -1 until that happens).
  struct Anchor {
    int64_t seq = -1;
    Timestamp time = 0;
    std::vector<BindEvent> binds;
  };

  /// One link of the witness chain: a temporal subformula, its current
  /// retained F_{g,i} formula, and the anchor state that last satisfied it.
  struct WitnessLink {
    std::string op;
    std::string subformula;
    std::string retained;      // rendered F_{g,i} after the last Step
    int64_t anchor_seq = -1;   // -1: never satisfied while tracing
    Timestamp anchor_time = 0;
    std::vector<BindEvent> bindings;  // binds at the anchor state
  };

  /// Enables/disables provenance collection. Enabling (re)initializes the
  /// per-subformula status so the next Step re-records every transition.
  void set_tracing(bool on);
  bool tracing() const { return tracing_; }

  /// Flip/bind events of the most recent Step (empty when tracing is off).
  const StepTrace& last_step_trace() const { return step_trace_; }

  /// One link per temporal subformula, in compilation (bottom-up) order.
  /// Meaningful after at least one traced Step; anchors are only tracked
  /// while tracing is on.
  std::vector<WitnessLink> WitnessChain() const;

  // ---- Checkpointing ----

  /// Opaque saved state. Valid until the next MaybeCollect() on this
  /// evaluator (generation-checked).
  struct Checkpoint {
    uint64_t generation = 0;
    uint64_t steps = 0;
    bool last_fired = false;
    std::vector<NodeId> mem;
    std::vector<AggMachineState> machines;
    // Provenance state, captured only while tracing so a rolled-back
    // hypothetical probe (IC veto, valid-time replay) cannot pollute witness
    // anchors with states that never materialized.
    std::vector<int8_t> prev_status;
    std::vector<Anchor> anchors;
  };

  Checkpoint Save() const;
  Status Restore(const Checkpoint& cp);

  // ---- Durable serialization ----

  /// Writes the retained state — the backing and-or graph (raw dump, NodeIds
  /// preserved), per-subformula mem slots, step count, and the dynamic state
  /// of every aggregate machine — for a durability checkpoint. Tracing state
  /// is not serialized (provenance does not survive a restart).
  void SerializeState(codec::Writer* w) const;

  /// Restores state written by SerializeState into an evaluator freshly
  /// compiled from the same condition: slot counts and machine shapes must
  /// match, otherwise InvalidArgument.
  Status RestoreState(codec::Reader* r);

  /// Serializes one saved Checkpoint alongside the state of SerializeState
  /// (its NodeIds reference the same graph dump). The valid-time monitors
  /// persist their per-state checkpoints this way.
  void SerializeCheckpoint(const Checkpoint& cp, codec::Writer* w) const;
  Result<Checkpoint> DeserializeCheckpoint(codec::Reader* r) const;

  // ---- Introspection / GC ----

  /// Distinct graph nodes reachable from the retained state (experiment E2's
  /// "retained state" metric).
  size_t LiveNodeCount() const;
  /// Total nodes in the backing store (grows until MaybeCollect).
  size_t StoreNodeCount() const { return graph_->num_nodes(); }

  /// Compacts the node store when it exceeds `threshold` nodes. Invalidates
  /// outstanding Checkpoints (they fail Restore with a clear error). Returns
  /// whether a collection actually ran, so callers can account for it.
  bool MaybeCollect(size_t threshold = 65536);

  /// Number of collections this evaluator's store has undergone (equals the
  /// graph generation counter).
  uint64_t collections() const { return graph_->generation(); }

  /// §5 optimization hit counters, forwarded from the backing graph.
  uint64_t prune_hits() const { return graph_->prune_hits(); }
  uint64_t subsume_hits() const { return graph_->subsume_hits(); }

  /// Structural-cache counters, forwarded from the backing graph: subtrees
  /// skipped by the var/time bitmasks, and hits in the persistent
  /// common-subformula substitution cache.
  uint64_t mask_skips() const { return graph_->mask_skips(); }
  uint64_t subst_cache_hits() const { return graph_->subst_cache_hits(); }
  uint64_t subst_cache_misses() const { return graph_->subst_cache_misses(); }

  /// Compacts the node store while keeping `checkpoints` valid: their node
  /// ids are remapped in place and their generation updated. Used by
  /// long-running holders of checkpoints (the valid-time monitors).
  Status CollectKeepingCheckpoints(std::vector<Checkpoint*> checkpoints);

  /// Multi-line dump of each temporal subformula's retained F formula.
  std::string DebugString() const;

 private:
  // One compiled evaluation step. Units are topologically ordered: children
  // and aggregate machinery precede their users.
  struct Unit {
    enum class Kind {
      kTrue,
      kFalse,
      kCompare,
      kEvent,
      kNot,
      kAnd,
      kOr,
      kSince,
      kLasttime,
      kPreviously,
      kThroughoutPast,
      kBind,
      kAggUpdate,  // advances one aggregate machine; produces no output
    };
    Kind kind;
    const ptl::Formula* ast = nullptr;
    int left = -1;   // unit index
    int right = -1;  // unit index
    VarId bind_var = 0;
    const ptl::Term* bind_term = nullptr;
    int mem_slot = -1;      // kSince/kLasttime/kPreviously/kThroughoutPast
    int machine_idx = -1;   // kAggUpdate
  };

  IncrementalEvaluator() = default;

  Result<int> CompileFormula(const ptl::FormulaPtr& f);
  Status CompileTermMachines(const ptl::TermPtr& t);
  Result<SymExprId> BuildTerm(const ptl::TermPtr& t,
                              const ptl::StateSnapshot& snapshot);
  Result<Value> EvalGroundTerm(const ptl::TermPtr& t,
                               const ptl::StateSnapshot& snapshot);
  NodeId InitialMemValue(Unit::Kind kind) const;

  ptl::Analysis analysis_;
  Options options_;
  // unique_ptr keeps the evaluator cheaply movable and Term*-keyed maps valid.
  std::unique_ptr<Graph> graph_;
  std::vector<Unit> units_;
  int root_unit_ = -1;
  std::vector<NodeId> mem_;

  std::vector<AggMachineState> machines_;
  std::vector<const ptl::Term*> machine_terms_;  // parallel to machines_
  std::vector<NodeId> outputs_;  // scratch, resized once

  uint64_t steps_ = 0;
  bool last_fired_ = false;

  // Provenance tracing (see set_tracing). prev_status_/anchors_ are indexed
  // by mem slot; -1 status means "unknown, record the next transition".
  void TraceTemporalUnit(const Unit& u, NodeId out,
                         const ptl::StateSnapshot& snapshot);
  static const char* TemporalOpName(Unit::Kind kind);
  bool tracing_ = false;
  StepTrace step_trace_;
  std::vector<int8_t> prev_status_;
  std::vector<Anchor> anchors_;
};


}  // namespace ptldb::eval

#endif  // PTLDB_EVAL_INCREMENTAL_H_
