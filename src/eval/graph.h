// The and-or graph underlying the §5 incremental algorithm.
//
// The algorithm maintains, per subformula g, a *symbolic* boolean formula
// F_{g,i} whose atoms compare arithmetic expressions over (a) constants
// captured from past states and (b) variables of enclosing binders that will
// be substituted later. The paper suggests maintaining these formulas "as an
// and-or graph"; this module implements that graph with hash-consing, so
// structurally equal subformulas are shared across generations, plus the two
// §5 optimizations:
//
//   * eager simplification — true/false absorption, flattening, deduplication,
//     complement annihilation, constant folding of ground atoms — so closed
//     formulas always collapse to the true/false sentinel nodes;
//   * time-bound pruning — an atom `t <= c` over a variable that will be bound
//     to the strictly increasing clock is replaced by a constant once the
//     clock passes `c` (and dually for `t >= c`), which keeps the retained
//     graph bounded for bounded temporal conditions.
//
// Nodes are append-only between explicit Collect() calls; NodeIds are stable
// in between, so an evaluator's state is just a vector of NodeIds.

#ifndef PTLDB_EVAL_GRAPH_H_
#define PTLDB_EVAL_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/codec.h"
#include "common/status.h"
#include "common/value.h"
#include "ptl/ast.h"

namespace ptldb::eval {

using NodeId = uint32_t;
using SymExprId = uint32_t;
using VarId = uint32_t;

/// Sentinel node ids, fixed by construction.
inline constexpr NodeId kFalseNode = 0;
inline constexpr NodeId kTrueNode = 1;

/// A symbolic scalar expression: constant, variable, or arithmetic.
struct SymExpr {
  enum class Kind : uint8_t { kConst, kVar, kArith };
  Kind kind;
  ptl::ArithOp op{};   // kArith
  Value constant;      // kConst
  VarId var = 0;       // kVar
  SymExprId a = 0, b = 0;  // kArith operands (kNeg uses only a)
};

/// A boolean node. kFalse/kTrue are the sentinels; kAtom compares two
/// symbolic expressions; kNot has one child; kAnd/kOr have >= 2 sorted,
/// de-duplicated children.
struct Node {
  enum class Kind : uint8_t { kFalse, kTrue, kAtom, kNot, kAnd, kOr };
  Kind kind;
  ptl::CmpOp cmp{};            // kAtom
  SymExprId lhs = 0, rhs = 0;  // kAtom
  std::vector<NodeId> children;
};

class Graph {
 public:
  Graph();

  /// Enables/disables the §5 interval-subsumption simplification (on by
  /// default; the E2 ablation turns it off together with time pruning).
  void set_subsumption(bool enabled) { subsumption_ = enabled; }

  // ---- Variables ----

  /// Interns a variable name. `is_time_var` marks variables bound to the
  /// `time` data-item (future substitutions are >= the current clock),
  /// enabling pruning.
  VarId InternVar(const std::string& name, bool is_time_var);

  // ---- Symbolic expressions (hash-consed, constant-folded) ----

  SymExprId ExprConst(Value v);
  SymExprId ExprVar(VarId var);
  /// Folds to a constant when both operands are constant; arithmetic errors
  /// (division by zero, type mismatch) surface here.
  Result<SymExprId> ExprArith(ptl::ArithOp op, SymExprId a, SymExprId b);
  Result<SymExprId> ExprNeg(SymExprId a);

  const SymExpr& expr(SymExprId id) const { return exprs_[id]; }

  // ---- Boolean nodes (hash-consed, simplified) ----

  /// Folds to kTrue/kFalse when both sides are constants.
  Result<NodeId> MakeAtom(ptl::CmpOp cmp, SymExprId lhs, SymExprId rhs);
  NodeId MakeBool(bool b) { return b ? kTrueNode : kFalseNode; }
  NodeId MakeNot(NodeId child);
  /// `children` may contain duplicates and nested And/Or of the same kind;
  /// the constructor flattens, sorts, de-duplicates, absorbs sentinels, and
  /// annihilates x AND NOT x.
  NodeId MakeAnd(std::vector<NodeId> children);
  NodeId MakeOr(std::vector<NodeId> children);

  const Node& node(NodeId id) const { return nodes_[id]; }

  // ---- Rewrites ----

  /// Substitutes `value` for `var` throughout `root`; ground atoms fold.
  Result<NodeId> Substitute(NodeId root, VarId var, const Value& value);

  /// §5 time-bound pruning: rewrites atoms over a single time variable whose
  /// truth is already decided for every future binding (>= `now`).
  Result<NodeId> PruneTimeBounds(NodeId root, Timestamp now);

  // ---- Introspection / GC ----

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_exprs() const { return exprs_.size(); }

  /// Number of distinct nodes reachable from `roots` (the evaluator's live
  /// state — what experiment E2 measures).
  size_t CountReachable(const std::vector<NodeId>& roots) const;

  /// Mark-compact: drops all nodes/exprs not reachable from `roots` and
  /// remaps the root ids in place. Invalidates all other NodeIds; the
  /// `generation` counter increments so stale checkpoints can be detected.
  void Collect(std::vector<NodeId*> roots);

  uint64_t generation() const { return generation_; }

  /// Count of atoms rewritten to a sentinel by PruneTimeBounds (how often the
  /// §5 time-bound optimization actually fires).
  uint64_t prune_hits() const { return prune_hits_; }

  /// Count of children dropped by the interval-subsumption simplification.
  uint64_t subsume_hits() const { return subsume_hits_; }

  /// Variable-occurrence bitmask of a node (bit = var id mod 64, the union
  /// over the whole subformula). A clear bit *proves* the variable is absent,
  /// so Substitute/PruneTimeBounds skip the subtree without walking it; a set
  /// bit is only "may occur" (ids can collide mod 64).
  uint64_t NodeVarMask(NodeId id) const { return node_masks_[id]; }

  /// Subtrees skipped outright by the var/time bitmask early-outs.
  uint64_t mask_skips() const { return mask_skips_; }

  /// Hits in the persistent cross-call substitution cache. Because nodes are
  /// hash-consed, two rules whose retained formulas share structure share
  /// NodeIds — so the cache is a cross-rule common-subformula cache keyed on
  /// the folded condition structure, not on which rule asked.
  uint64_t subst_cache_hits() const { return subst_cache_hits_; }
  uint64_t subst_cache_misses() const { return subst_cache_misses_; }
  size_t subst_cache_size() const { return subst_cache_.size(); }

  /// Debug rendering of a node.
  std::string ToString(NodeId id) const;
  std::string ExprToString(SymExprId id) const;

  // ---- Durable serialization ----

  /// Raw dump of the node/expression/variable stores. NodeIds, SymExprIds,
  /// and VarIds are preserved exactly — retained mem slots and checkpoints
  /// reference them by value — so the dump is *not* re-interned on load.
  void Serialize(codec::Writer* w) const;

  /// Restores a dump into this (freshly constructed) graph, rebuilding the
  /// hash-cons indexes. Validates sentinels and id ranges.
  Status Deserialize(codec::Reader* r);

 private:
  struct NodeKey {
    Node::Kind kind;
    ptl::CmpOp cmp;
    SymExprId lhs, rhs;
    std::vector<NodeId> children;
    bool operator==(const NodeKey& other) const = default;
  };
  struct NodeKeyHash {
    size_t operator()(const NodeKey& k) const;
  };
  struct ExprKey {
    SymExpr::Kind kind;
    ptl::ArithOp op;
    Value constant;
    VarId var;
    SymExprId a, b;
    bool operator==(const ExprKey& other) const = default;
  };
  struct ExprKeyHash {
    size_t operator()(const ExprKey& k) const;
  };

  /// Persistent substitution-cache key: (retained formula, variable, value).
  /// NodeIds are stable between Collect() calls, so entries survive across
  /// Steps and across every evaluator sharing this graph; Collect and
  /// Deserialize invalidate ids and clear the cache.
  struct SubstKey {
    NodeId root;
    VarId var;
    Value value;
    bool operator==(const SubstKey& other) const {
      return root == other.root && var == other.var && value == other.value;
    }
  };
  struct SubstKeyHash {
    size_t operator()(const SubstKey& k) const;
  };

  static uint64_t VarBit(VarId v) { return uint64_t{1} << (v % 64); }

  NodeId InternNode(NodeKey key);
  SymExprId InternExpr(ExprKey key);

  /// Recomputes expr/node var masks and the time-var bit set bottom-up
  /// (operands and children precede users in the append-only stores), and
  /// drops the substitution cache. Called after Collect and Deserialize.
  void RebuildMasks();
  NodeId MakeNary(Node::Kind kind, std::vector<NodeId> children);
  /// §5 simplification: collapses one-sided atoms over the same expression
  /// ((E <= 5 OR E <= 9) -> E <= 9, and the And/>= duals) in place.
  void SubsumeIntervalAtoms(bool is_and, std::vector<NodeId>* children);

  /// True when the expression mentions no variables.
  bool ExprIsConst(SymExprId id) const {
    return exprs_[id].kind == SymExpr::Kind::kConst;
  }

  Result<Value> EvalGroundExpr(SymExprId id) const;
  Result<SymExprId> SubstituteExpr(SymExprId id, VarId var, const Value& value,
                                   std::unordered_map<SymExprId, SymExprId>* memo);

  // Normalizes an atom into `var cmp bound` when it is linear in exactly one
  // time variable; returns false when not of that shape.
  bool NormalizeTimeAtom(const Node& atom, ptl::CmpOp* out_cmp,
                         Value* out_bound) const;

  std::vector<Node> nodes_;
  std::vector<SymExpr> exprs_;
  std::unordered_map<NodeKey, NodeId, NodeKeyHash> node_index_;
  std::unordered_map<ExprKey, SymExprId, ExprKeyHash> expr_index_;

  // Var-occurrence masks, parallel to nodes_/exprs_ (see NodeVarMask).
  std::vector<uint64_t> node_masks_;
  std::vector<uint64_t> expr_masks_;
  // Union of VarBit over variables marked as time variables.
  uint64_t time_var_bits_ = 0;
  std::unordered_map<SubstKey, NodeId, SubstKeyHash> subst_cache_;

  std::vector<std::string> var_names_;
  std::vector<bool> var_is_time_;
  std::unordered_map<std::string, VarId> var_index_;

  uint64_t generation_ = 0;
  bool subsumption_ = true;
  uint64_t prune_hits_ = 0;
  uint64_t subsume_hits_ = 0;
  uint64_t mask_skips_ = 0;
  uint64_t subst_cache_hits_ = 0;
  uint64_t subst_cache_misses_ = 0;
};

}  // namespace ptldb::eval

#endif  // PTLDB_EVAL_GRAPH_H_
