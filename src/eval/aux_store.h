// Auxiliary relations (paper §5, "Implementation Using Auxiliary Relations").
//
// For a variable x bound to a query q, the paper maintains a relation R_x
// with the query's attributes plus [T_start, T_end) validity interval columns,
// so the value of q at any previous time can be retrieved by a selection.
// This module provides both flavors:
//
//   * ScalarSeries  — interval-stamped history of a scalar query value
//     (one row per distinct consecutive value). The rule engine's query
//     history records every evaluated ground query here, and anything
//     needing "value of q as of t" reads it back.
//   * RelationHistory — interval-stamped history of a full relation, stored
//     as the paper describes: one row per (tuple, validity interval).
//
// Layout (DESIGN.md §14): both stores are *columnar*. Intervals live in
// parallel T_start / T_end column vectors kept in interval-start order, and
// values are dictionary-encoded — the value column holds packed 32-bit ids
// into a ValueDict (scalars) or TupleDict over a ValueDict (rows). AsOf is a
// binary search over the start column instead of a scan; a sorted batch of
// timestamps resolves in one merge pass (GatherAsOf). Retention trimming
// (TrimBefore) advances a base offset and compacts — columns and dictionary —
// amortized O(1) per dropped interval.
//
// Both stores serialize with a columnar v2 wire tag and retain a migration
// read path for row-oriented v1 dumps, so pre-columnar checkpoints restore.

#ifndef PTLDB_EVAL_AUX_STORE_H_
#define PTLDB_EVAL_AUX_STORE_H_

#include <limits>
#include <unordered_map>
#include <vector>

#include "common/codec.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/value.h"
#include "db/relation.h"
#include "eval/value_dict.h"

namespace ptldb::eval {

/// Sentinel for "still valid" (the paper's T_end = MAX).
inline constexpr Timestamp kTimeMax = std::numeric_limits<Timestamp>::max();

/// Wire tag prefixing columnar (v2) dumps. v1 row-oriented ScalarSeries dumps
/// begin with a bool byte (0/1) and v1 RelationHistory dumps with a u32
/// column count, so the tag is unambiguous in practice (a RelationHistory
/// schema of exactly 0xC2 = 194 columns would collide; Deserialize guards on
/// the known schema arity).
inline constexpr uint8_t kColumnarTag = 0xC2;

/// Interval-stamped history of one scalar value.
class ScalarSeries {
 public:
  /// Records that the value is `v` from time `t` on. Appends a new interval
  /// only when the value changed; `t` must be >= the last recorded time.
  Status Record(Timestamp t, Value v);

  /// Value at time `t`, by binary search over the start column. The two
  /// failure modes are distinct:
  ///   * NotFound    — `t` precedes the first value ever recorded; the query
  ///     is simply before the series began.
  ///   * OutOfRange  — a value *was* recorded covering `t`, but `TrimBefore`
  ///     has since dropped it; the answer existed and is gone.
  /// Callers that treat "no value yet" as benign must not swallow OutOfRange:
  /// it means their retention horizon is too tight.
  Result<Value> AsOf(Timestamp t) const;

  /// Batched AsOf: answers every timestamp of the ascending-sorted `ts` in
  /// one merge pass over the interval columns (O(ts.size() + log n) probes
  /// instead of ts.size() independent binary searches). Error semantics per
  /// element match AsOf; the first failing element aborts the gather.
  /// InvalidArgument when `ts` is not sorted.
  Status GatherAsOf(const std::vector<Timestamp>& ts,
                    std::vector<Value>* out) const;

  /// Latest recorded value. NotFound when empty.
  Result<Value> Latest() const;

  /// Drops intervals that ended at or before `horizon` (bounded-operator GC).
  /// The interval covering `horizon` is always kept, and an interval that is
  /// still open (end == kTimeMax) is never dropped — even when `horizon` is
  /// kTimeMax itself.
  void TrimBefore(Timestamp horizon);

  size_t num_intervals() const { return starts_.size() - base_; }
  bool empty() const { return num_intervals() == 0; }

  /// Total intervals dropped by TrimBefore over this series' lifetime.
  uint64_t intervals_trimmed() const { return intervals_trimmed_; }

  /// Distinct values in the dictionary (diagnostics; bounded by the value
  /// domain, not the interval count).
  size_t dict_size() const { return dict_.size(); }

  /// Interval-column probes made by AsOf/GatherAsOf over this series'
  /// lifetime (comparator invocations). The sublinearity regression test
  /// asserts a 100k-interval lookup stays within O(log n) probes.
  uint64_t asof_probes() const { return asof_probes_; }

  /// Deep retained-memory estimate: columns plus the dictionary including
  /// string payload bytes (satellite fix: the old estimate ignored payloads,
  /// so the bounded-retained-state gate undercounted).
  size_t EstimateBytes() const {
    return sizeof(*this) +
           starts_.capacity() * 2 * sizeof(Timestamp) +
           vids_.capacity() * sizeof(uint32_t) + dict_.EstimateBytes();
  }

  /// Publishes interval/dictionary/probe accounting into `m` under
  /// `aux.<prefix>.{intervals,bytes,trimmed,dict,asof_probes}` — the
  /// per-store half of the serving-path stats surface (DESIGN.md §15).
  void ExportTo(Metrics& m, const std::string& prefix) const;

  /// Durable serialization (columnar v2; reads v1 row dumps too).
  void Serialize(codec::Writer* w) const;
  Status Deserialize(codec::Reader* r);

 private:
  void CompactIfWorthwhile();

  // Parallel interval columns, ascending by start; [base_, starts_.size())
  // is the live window (TrimBefore advances base_, compaction re-bases).
  std::vector<Timestamp> starts_;
  std::vector<Timestamp> ends_;  // exclusive; kTimeMax while current
  std::vector<uint32_t> vids_;   // dictionary ids, parallel to starts_
  ValueDict dict_;
  size_t base_ = 0;
  Timestamp first_start_ = 0;  // start of the first interval ever recorded
  bool has_record_ = false;
  uint64_t intervals_trimmed_ = 0;
  mutable uint64_t asof_probes_ = 0;
};

/// Interval-stamped history of a relation-valued query: the paper's R_x with
/// k data attributes plus T_start / T_end.
class RelationHistory {
 public:
  /// `schema` is the schema of the tracked query's result.
  explicit RelationHistory(db::Schema schema) : schema_(std::move(schema)) {}

  const db::Schema& schema() const { return schema_; }

  /// Records the full relation value at time `t` (closing the validity of
  /// rows that disappeared, opening intervals for new rows). `t` must be
  /// >= the last recorded time. Rows are compared as bags.
  Status Record(Timestamp t, const db::Relation& rel);

  /// Applies an incremental delta at time `t`: closes the validity interval
  /// of each row in `removed` (the most recently opened instance first when a
  /// row has duplicates) and opens intervals for each row in `added` —
  /// O(|delta| + |open rows|) instead of Record's O(|relation|) snapshot
  /// interning, which is what makes per-commit archival of a versioned table
  /// affordable. Tuples appearing in both `removed` and `added` cancel (the
  /// row never left the relation, so its interval stays open), matching
  /// Record's multiset diff. A row both opened and closed at `t` would carry
  /// a zero-length [t, t) interval that no AsOf can observe; it is dropped
  /// outright and counted in phantom_rows_dropped() rather than archived.
  /// InvalidArgument when `t` precedes the last recorded time, a removed row
  /// is not currently live, or a row's arity mismatches the schema; the
  /// store is unchanged on error.
  Status ApplyDelta(Timestamp t, const std::vector<db::Tuple>& removed,
                    const std::vector<db::Tuple>& added);

  /// The relation as of time `t` (selection T_start <= t < T_end followed by
  /// a projection, exactly the paper's retrieval). Reads at or past the last
  /// record time take a fast path over only the open rows; historical reads
  /// binary-search the start column for the candidate prefix. NotFound
  /// before the first record; OutOfRange when `t` falls before a trim
  /// horizon that actually dropped rows (the reconstruction would silently
  /// be incomplete).
  Result<db::Relation> AsOf(Timestamp t) const;

  /// The backing store as a relation with T_start / T_end columns appended —
  /// i.e. R_x itself, inspectable and queryable.
  db::Relation Store() const;

  /// Drops rows whose validity ended at or before `horizon`. Open rows
  /// (end == kTimeMax) are never dropped, even for horizon == kTimeMax.
  void TrimBefore(Timestamp horizon);

  size_t num_rows() const { return starts_.size(); }

  /// Total rows dropped by TrimBefore over this history's lifetime.
  uint64_t rows_trimmed() const { return rows_trimmed_; }

  /// Rows discarded at record time because they would have had a zero-length
  /// [t, t) validity interval (inserted and dropped at the same timestamp).
  uint64_t phantom_rows_dropped() const { return phantom_rows_dropped_; }

  /// Distinct tuples in the row dictionary.
  size_t dict_size() const { return tuples_.size(); }

  /// Row-column probes made by AsOf over this history's lifetime.
  uint64_t asof_probes() const { return asof_probes_; }

  /// Deep retained-memory estimate: columns plus both dictionaries,
  /// including string payload bytes.
  size_t EstimateBytes() const {
    return sizeof(*this) + starts_.capacity() * 2 * sizeof(Timestamp) +
           tids_.capacity() * sizeof(uint32_t) +
           open_rows_.capacity() * sizeof(size_t) + values_.EstimateBytes() +
           tuples_.EstimateBytes();
  }

  /// Publishes interval/trim/bytes accounting into `m` under
  /// `aux.<prefix>.{rows,rows_trimmed,phantom_rows_dropped,bytes,dict,
  /// values_dict,asof_probes}` — both dictionaries' cardinalities and the
  /// AsOf probe counter ride along so a STATS poll sees the columnar
  /// internals without touching the store.
  void ExportTo(Metrics& m, const std::string& prefix) const;

  /// Durable serialization (columnar v2 with both dictionaries; reads v1
  /// row dumps too). The schema travels with the dump; Deserialize rejects
  /// a dump whose schema differs from this history's.
  void Serialize(codec::Writer* w) const;
  Status Deserialize(codec::Reader* r);

 private:
  db::Tuple DecodeTuple(uint32_t tid) const;
  uint32_t EncodeTuple(const db::Tuple& row);
  void CompactDictionaries();
  void RebuildOpenIndex();

  db::Schema schema_;
  // Parallel stamped-row columns, ascending by start.
  std::vector<Timestamp> starts_;
  std::vector<Timestamp> ends_;  // exclusive; kTimeMax while current
  std::vector<uint32_t> tids_;   // tuple-dictionary ids, parallel to starts_
  // Indices of open rows (end == kTimeMax), ascending, so Record closes
  // disappeared rows and the current-time AsOf path reads the live relation
  // in O(open rows) instead of scanning the whole history. Derived state:
  // rebuilt on deserialize/compaction, never serialized.
  std::vector<size_t> open_rows_;
  // Open rows grouped by tuple id (each bucket ascends like open_rows_), so
  // ApplyDelta closes a removed row in O(1) instead of scanning the open set.
  // Derived state with lazy upkeep: Record/TrimBefore/Deserialize mark it
  // dirty instead of maintaining it, and ApplyDelta rebuilds on first use.
  std::unordered_map<uint32_t, std::vector<size_t>> open_by_tid_;
  bool open_index_dirty_ = true;
  ValueDict values_;
  TupleDict tuples_;
  // Largest closed end among retained rows: reads at or past both this and
  // the last record time only ever see open rows (the hot current-time path).
  Timestamp max_closed_end_ = std::numeric_limits<Timestamp>::min();
  Timestamp last_time_ = std::numeric_limits<Timestamp>::min();
  bool has_record_ = false;
  bool trimmed_ = false;
  Timestamp trim_horizon_ = std::numeric_limits<Timestamp>::min();
  uint64_t rows_trimmed_ = 0;
  uint64_t phantom_rows_dropped_ = 0;
  mutable uint64_t asof_probes_ = 0;
};

}  // namespace ptldb::eval

#endif  // PTLDB_EVAL_AUX_STORE_H_
