// Auxiliary relations (paper §5, "Implementation Using Auxiliary Relations").
//
// For a variable x bound to a query q, the paper maintains a relation R_x
// with the query's attributes plus [T_start, T_end) validity interval columns,
// so the value of q at any previous time can be retrieved by a selection.
// This module provides both flavors:
//
//   * ScalarSeries  — interval-stamped history of a scalar query value
//     (one row per distinct consecutive value). Used by the valid-time layer
//     to rebuild StateSnapshots when re-evaluating after retroactive updates,
//     and by anything needing "value of q as of t".
//   * RelationHistory — interval-stamped history of a full relation, stored
//     exactly as the paper describes: one row per (tuple, validity interval).
//
// Both support retention trimming: the §5 observation that bounded temporal
// operators only need a bounded window of the past.

#ifndef PTLDB_EVAL_AUX_STORE_H_
#define PTLDB_EVAL_AUX_STORE_H_

#include <deque>
#include <limits>
#include <vector>

#include "common/codec.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/value.h"
#include "db/relation.h"

namespace ptldb::eval {

/// Sentinel for "still valid" (the paper's T_end = MAX).
inline constexpr Timestamp kTimeMax = std::numeric_limits<Timestamp>::max();

/// Interval-stamped history of one scalar value.
class ScalarSeries {
 public:
  /// Records that the value is `v` from time `t` on. Appends a new interval
  /// only when the value changed; `t` must be >= the last recorded time.
  Status Record(Timestamp t, Value v);

  /// Value at time `t`. The two failure modes are distinct:
  ///   * NotFound    — `t` precedes the first value ever recorded; the query
  ///     is simply before the series began.
  ///   * OutOfRange  — a value *was* recorded covering `t`, but `TrimBefore`
  ///     has since dropped it; the answer existed and is gone.
  /// Callers that treat "no value yet" as benign must not swallow OutOfRange:
  /// it means their retention horizon is too tight.
  Result<Value> AsOf(Timestamp t) const;

  /// Latest recorded value. NotFound when empty.
  Result<Value> Latest() const;

  /// Drops intervals that ended before `horizon` (bounded-operator GC).
  /// The interval covering `horizon` is always kept.
  void TrimBefore(Timestamp horizon);

  size_t num_intervals() const { return intervals_.size(); }
  bool empty() const { return intervals_.empty(); }

  /// Total intervals dropped by TrimBefore over this series' lifetime.
  uint64_t intervals_trimmed() const { return intervals_trimmed_; }

  /// Rough retained-memory estimate (containers only, not string payloads).
  size_t EstimateBytes() const {
    return sizeof(*this) + intervals_.size() * sizeof(Interval);
  }

  /// Durable serialization of the full series (intervals + trim accounting).
  void Serialize(codec::Writer* w) const;
  Status Deserialize(codec::Reader* r);

 private:
  struct Interval {
    Timestamp start;
    Timestamp end;  // exclusive; kTimeMax while current
    Value value;
  };
  std::deque<Interval> intervals_;
  Timestamp first_start_ = 0;   // start of the first interval ever recorded
  bool has_record_ = false;
  uint64_t intervals_trimmed_ = 0;
};

/// Interval-stamped history of a relation-valued query: the paper's R_x with
/// k data attributes plus T_start / T_end.
class RelationHistory {
 public:
  /// `schema` is the schema of the tracked query's result.
  explicit RelationHistory(db::Schema schema) : schema_(std::move(schema)) {}

  const db::Schema& schema() const { return schema_; }

  /// Records the full relation value at time `t` (closing the validity of
  /// rows that disappeared, opening intervals for new rows). `t` must be
  /// >= the last recorded time. Rows are compared as bags.
  Status Record(Timestamp t, const db::Relation& rel);

  /// The relation as of time `t` (selection T_start <= t < T_end followed by
  /// a projection, exactly the paper's retrieval). NotFound before the first
  /// record; OutOfRange when `t` falls before a trim horizon that actually
  /// dropped rows (the reconstruction would silently be incomplete).
  Result<db::Relation> AsOf(Timestamp t) const;

  /// The backing store as a relation with T_start / T_end columns appended —
  /// i.e. R_x itself, inspectable and queryable.
  db::Relation Store() const;

  /// Drops rows whose validity ended before `horizon`.
  void TrimBefore(Timestamp horizon);

  size_t num_rows() const { return rows_.size(); }

  /// Total rows dropped by TrimBefore over this history's lifetime.
  uint64_t rows_trimmed() const { return rows_trimmed_; }

  /// Rows discarded at record time because they would have had a zero-length
  /// [t, t) validity interval (inserted and dropped at the same timestamp).
  uint64_t phantom_rows_dropped() const { return phantom_rows_dropped_; }

  /// Rough retained-memory estimate (containers only, not string payloads).
  size_t EstimateBytes() const {
    return sizeof(*this) +
           rows_.size() *
               (sizeof(StampedRow) + schema_.columns().size() * sizeof(Value));
  }

  /// Publishes interval/trim/bytes accounting into `m` under
  /// `aux.<prefix>.{rows,rows_trimmed,phantom_rows_dropped,bytes}`.
  void ExportTo(Metrics& m, const std::string& prefix) const;

  /// Durable serialization. The schema travels with the dump; Deserialize
  /// rejects a dump whose schema differs from this history's.
  void Serialize(codec::Writer* w) const;
  Status Deserialize(codec::Reader* r);

 private:
  struct StampedRow {
    db::Tuple row;
    Timestamp start;
    Timestamp end;  // exclusive; kTimeMax while current
  };
  db::Schema schema_;
  std::vector<StampedRow> rows_;
  Timestamp last_time_ = std::numeric_limits<Timestamp>::min();
  bool has_record_ = false;
  bool trimmed_ = false;
  Timestamp trim_horizon_ = std::numeric_limits<Timestamp>::min();
  uint64_t rows_trimmed_ = 0;
  uint64_t phantom_rows_dropped_ = 0;
};

}  // namespace ptldb::eval

#endif  // PTLDB_EVAL_AUX_STORE_H_
