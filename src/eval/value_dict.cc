#include "eval/value_dict.h"

#include <cstring>

namespace ptldb::eval {

uint32_t ValueDict::Intern(const Value& v) {
  auto it = index_.find(v);
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(values_.size());
  values_.push_back(v);
  index_.emplace(v, id);
  return id;
}

size_t ValueDict::EstimateBytes() const {
  size_t total = sizeof(*this);
  for (const Value& v : values_) total += v.EstimateBytes();
  // Reverse index: one bucket pointer per entry plus a node holding the key
  // copy and the id. Structural estimate, deterministic across runs.
  for (const Value& v : values_) {
    total += sizeof(void*) + v.EstimateBytes() + sizeof(uint32_t);
  }
  return total;
}

void ValueDict::Rebuild(const std::vector<bool>& live,
                        std::vector<uint32_t>* remap) {
  remap->assign(values_.size(), UINT32_MAX);
  std::vector<Value> kept;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (!live[i]) continue;
    (*remap)[i] = static_cast<uint32_t>(kept.size());
    kept.push_back(std::move(values_[i]));
  }
  values_ = std::move(kept);
  index_.clear();
  for (size_t i = 0; i < values_.size(); ++i) {
    index_.emplace(values_[i], static_cast<uint32_t>(i));
  }
}

void ValueDict::Serialize(codec::Writer* w) const {
  w->U32(static_cast<uint32_t>(values_.size()));
  for (const Value& v : values_) w->Val(v);
}

Status ValueDict::Deserialize(codec::Reader* r) {
  PTLDB_ASSIGN_OR_RETURN(uint32_t n, r->U32());
  values_.clear();
  index_.clear();
  values_.reserve(n <= r->remaining() ? n : 0);
  for (uint32_t i = 0; i < n; ++i) {
    PTLDB_ASSIGN_OR_RETURN(Value v, r->Val());
    if (index_.count(v) > 0) {
      return Status::InvalidArgument("value dictionary has duplicate entries");
    }
    index_.emplace(v, i);
    values_.push_back(std::move(v));
  }
  return Status::OK();
}

namespace {

std::string SpanKey(const uint32_t* ids, size_t n) {
  std::string key(n * sizeof(uint32_t), '\0');
  if (n > 0) std::memcpy(key.data(), ids, n * sizeof(uint32_t));
  return key;
}

}  // namespace

uint32_t TupleDict::Intern(const std::vector<uint32_t>& ids) {
  std::string key = SpanKey(ids.data(), ids.size());
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(offsets_.size());
  offsets_.push_back(static_cast<uint32_t>(flat_.size()));
  arities_.push_back(static_cast<uint32_t>(ids.size()));
  flat_.insert(flat_.end(), ids.begin(), ids.end());
  index_.emplace(std::move(key), id);
  return id;
}

size_t TupleDict::EstimateBytes() const {
  size_t total = sizeof(*this) + flat_.size() * sizeof(uint32_t) +
                 offsets_.size() * sizeof(uint32_t) +
                 arities_.size() * sizeof(uint32_t);
  // Index: bucket pointer + key bytes + id per tuple.
  total += offsets_.size() * (sizeof(void*) + sizeof(uint32_t));
  total += flat_.size() * sizeof(uint32_t);  // key byte copies
  return total;
}

void TupleDict::Rebuild(const std::vector<bool>& live,
                        const std::vector<uint32_t>& value_remap,
                        std::vector<uint32_t>* remap) {
  remap->assign(offsets_.size(), UINT32_MAX);
  std::vector<uint32_t> new_flat, new_offsets, new_arities;
  for (size_t i = 0; i < offsets_.size(); ++i) {
    if (!live[i]) continue;
    (*remap)[i] = static_cast<uint32_t>(new_offsets.size());
    new_offsets.push_back(static_cast<uint32_t>(new_flat.size()));
    new_arities.push_back(arities_[i]);
    for (uint32_t c = 0; c < arities_[i]; ++c) {
      new_flat.push_back(value_remap[flat_[offsets_[i] + c]]);
    }
  }
  flat_ = std::move(new_flat);
  offsets_ = std::move(new_offsets);
  arities_ = std::move(new_arities);
  RebuildIndex();
}

void TupleDict::RebuildIndex() {
  index_.clear();
  for (size_t i = 0; i < offsets_.size(); ++i) {
    const uint32_t* cells =
        arities_[i] > 0 ? &flat_[offsets_[i]] : nullptr;
    index_.emplace(SpanKey(cells, arities_[i]), static_cast<uint32_t>(i));
  }
}

void TupleDict::Serialize(codec::Writer* w) const {
  w->U32(static_cast<uint32_t>(offsets_.size()));
  for (size_t i = 0; i < offsets_.size(); ++i) {
    w->U32(arities_[i]);
    for (uint32_t c = 0; c < arities_[i]; ++c) {
      w->U32(flat_[offsets_[i] + c]);
    }
  }
}

Status TupleDict::Deserialize(codec::Reader* r) {
  PTLDB_ASSIGN_OR_RETURN(uint32_t n, r->U32());
  flat_.clear();
  offsets_.clear();
  arities_.clear();
  for (uint32_t i = 0; i < n; ++i) {
    PTLDB_ASSIGN_OR_RETURN(uint32_t arity, r->U32());
    if (static_cast<size_t>(arity) * sizeof(uint32_t) > r->remaining()) {
      return Status::InvalidArgument("tuple dictionary truncated");
    }
    offsets_.push_back(static_cast<uint32_t>(flat_.size()));
    arities_.push_back(arity);
    for (uint32_t c = 0; c < arity; ++c) {
      PTLDB_ASSIGN_OR_RETURN(uint32_t vid, r->U32());
      flat_.push_back(vid);
    }
  }
  RebuildIndex();
  if (index_.size() != offsets_.size()) {
    return Status::InvalidArgument("tuple dictionary has duplicate entries");
  }
  return Status::OK();
}

}  // namespace ptldb::eval
