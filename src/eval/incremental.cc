#include "eval/incremental.h"

#include "common/logging.h"
#include "common/strings.h"

namespace ptldb::eval {

Result<Value> AggMachineState::Current() const {
  if (!is_window) return acc.Current();
  switch (fn) {
    case ptl::TemporalAggFn::kCount:
      return Value::Int(static_cast<int64_t>(window.size()));
    case ptl::TemporalAggFn::kSum:
      return Value::Real(running_sum);
    case ptl::TemporalAggFn::kAvg:
      if (window.empty()) return Value::Null();
      return Value::Real(running_sum / static_cast<double>(window.size()));
    case ptl::TemporalAggFn::kMin:
    case ptl::TemporalAggFn::kMax:
      if (mono.empty()) return Value::Null();
      return Value::Real(mono.front().second);
  }
  return Status::Internal("unknown window aggregate fn");
}

Status AggMachineState::WindowObserve(Timestamp now, const Value& v) {
  if (!v.is_numeric()) {
    if (v.is_null()) return Status::OK();  // nulls are skipped, like SQL
    return Status::TypeMismatch(
        StrCat("window aggregate over non-numeric value ", v.ToString()));
  }
  double x = v.AsDouble();
  window.emplace_back(now, x);
  running_sum += x;
  if (fn == ptl::TemporalAggFn::kMin || fn == ptl::TemporalAggFn::kMax) {
    // Monotonic deque: front is the extremum of the window.
    const bool is_min = fn == ptl::TemporalAggFn::kMin;
    while (!mono.empty() && (is_min ? mono.back().second >= x
                                    : mono.back().second <= x)) {
      mono.pop_back();
    }
    mono.emplace_back(now, x);
  }
  // Evict samples older than the window.
  Timestamp cutoff = now - width;
  while (!window.empty() && window.front().first < cutoff) {
    running_sum -= window.front().second;
    window.pop_front();
  }
  while (!mono.empty() && mono.front().first < cutoff) {
    mono.pop_front();
  }
  return Status::OK();
}

Result<IncrementalEvaluator> IncrementalEvaluator::Make(ptl::Analysis analysis,
                                                        Options options) {
  IncrementalEvaluator ev;
  ev.analysis_ = std::move(analysis);
  ev.options_ = options;
  ev.graph_ = std::make_unique<Graph>();
  ev.graph_->set_subsumption(options.subsumption);
  PTLDB_ASSIGN_OR_RETURN(ev.root_unit_, ev.CompileFormula(ev.analysis_.root));
  ev.outputs_.resize(ev.units_.size(), kFalseNode);
  return ev;
}

NodeId IncrementalEvaluator::InitialMemValue(Unit::Kind kind) const {
  // F_{g,-1} values making the i=0 base cases come out right:
  //   Since:        F_{h,0} OR (F_{g,0} AND false) = F_{h,0}
  //   Previously:   F_{g,0} OR false               = F_{g,0}
  //   Throughout:   F_{g,0} AND true               = F_{g,0}
  //   Lasttime:     false (no previous state)
  return kind == Unit::Kind::kThroughoutPast ? kTrueNode : kFalseNode;
}

Status IncrementalEvaluator::CompileTermMachines(const ptl::TermPtr& t) {
  if (t == nullptr) return Status::OK();
  using TK = ptl::Term::Kind;
  switch (t->kind) {
    case TK::kConst:
    case TK::kVar:
    case TK::kTime:
      return Status::OK();
    case TK::kArith:
      for (const ptl::TermPtr& op : t->operands) {
        PTLDB_RETURN_IF_ERROR(CompileTermMachines(op));
      }
      return Status::OK();
    case TK::kQuery:
      return Status::OK();
    case TK::kAgg: {
      // Compile start/sample formulas first (their units precede the
      // machine's update unit), then register the machine.
      PTLDB_ASSIGN_OR_RETURN(int start_unit, CompileFormula(t->agg_start));
      PTLDB_ASSIGN_OR_RETURN(int sample_unit, CompileFormula(t->agg_sample));
      AggMachineState m;
      m.is_window = false;
      m.fn = t->agg_fn;
      m.acc = ptl::AggAccumulator(t->agg_fn);
      m.start_unit = start_unit;
      m.sample_unit = sample_unit;
      auto it = analysis_.slot_of.find(t->agg_query.get());
      if (it == analysis_.slot_of.end()) {
        return Status::Internal("aggregate query has no snapshot slot");
      }
      m.query_slot = it->second;
      int idx = static_cast<int>(machines_.size());
      machines_.push_back(std::move(m));
      machine_terms_.push_back(t.get());
      Unit u;
      u.kind = Unit::Kind::kAggUpdate;
      u.machine_idx = idx;
      units_.push_back(u);
      return Status::OK();
    }
    case TK::kWindowAgg: {
      AggMachineState m;
      m.is_window = true;
      m.fn = t->agg_fn;
      m.width = t->window_width;
      auto it = analysis_.slot_of.find(t->agg_query.get());
      if (it == analysis_.slot_of.end()) {
        return Status::Internal("window aggregate query has no snapshot slot");
      }
      m.query_slot = it->second;
      int idx = static_cast<int>(machines_.size());
      machines_.push_back(std::move(m));
      machine_terms_.push_back(t.get());
      Unit u;
      u.kind = Unit::Kind::kAggUpdate;
      u.machine_idx = idx;
      units_.push_back(u);
      return Status::OK();
    }
  }
  return Status::Internal("unknown term kind");
}

Result<int> IncrementalEvaluator::CompileFormula(const ptl::FormulaPtr& f) {
  using FK = ptl::Formula::Kind;
  Unit u;
  u.ast = f.get();
  switch (f->kind) {
    case FK::kTrue:
      u.kind = Unit::Kind::kTrue;
      break;
    case FK::kFalse:
      u.kind = Unit::Kind::kFalse;
      break;
    case FK::kCompare:
      PTLDB_RETURN_IF_ERROR(CompileTermMachines(f->lhs_term));
      PTLDB_RETURN_IF_ERROR(CompileTermMachines(f->rhs_term));
      u.kind = Unit::Kind::kCompare;
      break;
    case FK::kEvent:
      u.kind = Unit::Kind::kEvent;
      break;
    case FK::kNot: {
      PTLDB_ASSIGN_OR_RETURN(u.left, CompileFormula(f->left));
      u.kind = Unit::Kind::kNot;
      break;
    }
    case FK::kAnd:
    case FK::kOr: {
      PTLDB_ASSIGN_OR_RETURN(u.left, CompileFormula(f->left));
      PTLDB_ASSIGN_OR_RETURN(u.right, CompileFormula(f->right));
      u.kind = f->kind == FK::kAnd ? Unit::Kind::kAnd : Unit::Kind::kOr;
      break;
    }
    case FK::kSince: {
      PTLDB_ASSIGN_OR_RETURN(u.left, CompileFormula(f->left));
      PTLDB_ASSIGN_OR_RETURN(u.right, CompileFormula(f->right));
      u.kind = Unit::Kind::kSince;
      break;
    }
    case FK::kLasttime: {
      PTLDB_ASSIGN_OR_RETURN(u.left, CompileFormula(f->left));
      u.kind = Unit::Kind::kLasttime;
      break;
    }
    case FK::kPreviously: {
      PTLDB_ASSIGN_OR_RETURN(u.left, CompileFormula(f->left));
      u.kind = Unit::Kind::kPreviously;
      break;
    }
    case FK::kThroughoutPast: {
      PTLDB_ASSIGN_OR_RETURN(u.left, CompileFormula(f->left));
      u.kind = Unit::Kind::kThroughoutPast;
      break;
    }
    case FK::kBind: {
      PTLDB_RETURN_IF_ERROR(CompileTermMachines(f->bind_term));
      PTLDB_ASSIGN_OR_RETURN(u.left, CompileFormula(f->left));
      u.kind = Unit::Kind::kBind;
      u.bind_var = graph_->InternVar(
          f->var, analysis_.time_vars.count(f->var) > 0);
      u.bind_term = f->bind_term.get();
      break;
    }
  }
  if (u.kind == Unit::Kind::kSince || u.kind == Unit::Kind::kLasttime ||
      u.kind == Unit::Kind::kPreviously ||
      u.kind == Unit::Kind::kThroughoutPast) {
    u.mem_slot = static_cast<int>(mem_.size());
    mem_.push_back(InitialMemValue(u.kind));
  }
  units_.push_back(std::move(u));
  return static_cast<int>(units_.size() - 1);
}

Result<Value> IncrementalEvaluator::EvalGroundTerm(
    const ptl::TermPtr& t, const ptl::StateSnapshot& snapshot) {
  PTLDB_ASSIGN_OR_RETURN(SymExprId e, BuildTerm(t, snapshot));
  const SymExpr& expr = graph_->expr(e);
  if (expr.kind != SymExpr::Kind::kConst) {
    return Status::Internal(
        StrCat("term '", t->ToString(), "' is not ground at evaluation"));
  }
  return expr.constant;
}

Result<SymExprId> IncrementalEvaluator::BuildTerm(
    const ptl::TermPtr& t, const ptl::StateSnapshot& snapshot) {
  using TK = ptl::Term::Kind;
  switch (t->kind) {
    case TK::kConst:
      return graph_->ExprConst(t->constant);
    case TK::kVar:
      // Time-var flags were registered when the binder was compiled; a var
      // seen here before its binder can only be a rule parameter that was
      // not substituted, which the analyzer already rejected.
      return graph_->ExprVar(graph_->InternVar(
          t->name, analysis_.time_vars.count(t->name) > 0));
    case TK::kTime:
      return graph_->ExprConst(Value::Time(snapshot.time));
    case TK::kArith: {
      if (t->arith_op == ptl::ArithOp::kNeg) {
        PTLDB_ASSIGN_OR_RETURN(SymExprId a, BuildTerm(t->operands[0], snapshot));
        return graph_->ExprNeg(a);
      }
      PTLDB_ASSIGN_OR_RETURN(SymExprId a, BuildTerm(t->operands[0], snapshot));
      PTLDB_ASSIGN_OR_RETURN(SymExprId b, BuildTerm(t->operands[1], snapshot));
      return graph_->ExprArith(t->arith_op, a, b);
    }
    case TK::kQuery: {
      auto it = analysis_.slot_of.find(t.get());
      if (it == analysis_.slot_of.end()) {
        return Status::Internal(
            StrCat("query term ", t->ToString(), " has no snapshot slot"));
      }
      if (static_cast<size_t>(it->second) >= snapshot.query_values.size()) {
        return Status::Internal("snapshot missing query slot value");
      }
      return graph_->ExprConst(snapshot.query_values[it->second]);
    }
    case TK::kAgg:
    case TK::kWindowAgg: {
      // The machine was updated earlier in this step (its kAggUpdate unit
      // precedes every unit whose terms read it).
      for (size_t i = 0; i < machine_terms_.size(); ++i) {
        if (machine_terms_[i] == t.get()) {
          PTLDB_ASSIGN_OR_RETURN(Value v, machines_[i].Current());
          return graph_->ExprConst(std::move(v));
        }
      }
      return Status::Internal("aggregate term has no machine");
    }
  }
  return Status::Internal("unknown term kind");
}

const char* IncrementalEvaluator::TemporalOpName(Unit::Kind kind) {
  switch (kind) {
    case Unit::Kind::kSince:
      return "since";
    case Unit::Kind::kLasttime:
      return "lasttime";
    case Unit::Kind::kPreviously:
      return "previously";
    case Unit::Kind::kThroughoutPast:
      return "throughout";
    default:
      return "?";
  }
}

void IncrementalEvaluator::set_tracing(bool on) {
  if (on == tracing_) return;
  tracing_ = on;
  step_trace_.flips.clear();
  step_trace_.binds.clear();
  if (on) {
    prev_status_.assign(mem_.size(), -1);
    anchors_.assign(mem_.size(), Anchor{});
  }
}

void IncrementalEvaluator::TraceTemporalUnit(
    const Unit& u, NodeId out, const ptl::StateSnapshot& snapshot) {
  int8_t status = out == kTrueNode ? 1 : out == kFalseNode ? 0 : 2;
  if (status == prev_status_[u.mem_slot]) return;
  prev_status_[u.mem_slot] = status;
  FlipEvent flip;
  flip.subformula = u.ast->ToString();
  flip.op = TemporalOpName(u.kind);
  flip.transition = status == 1 ? "sat" : status == 0 ? "unsat" : "residual";
  flip.seq = static_cast<int64_t>(snapshot.seq);
  flip.mem_slot = u.mem_slot;
  step_trace_.flips.push_back(std::move(flip));
  if (status == 1) {
    anchors_[u.mem_slot].seq = static_cast<int64_t>(snapshot.seq);
    anchors_[u.mem_slot].time = snapshot.time;
    // Bindings are attached at the end of Step — binder units run after the
    // temporal units beneath them, so the step's binds are not complete yet.
  }
}

std::vector<IncrementalEvaluator::WitnessLink>
IncrementalEvaluator::WitnessChain() const {
  std::vector<WitnessLink> chain;
  for (const Unit& u : units_) {
    if (u.mem_slot < 0) continue;
    WitnessLink link;
    link.op = TemporalOpName(u.kind);
    link.subformula = u.ast->ToString();
    link.retained = graph_->ToString(mem_[u.mem_slot]);
    if (static_cast<size_t>(u.mem_slot) < anchors_.size()) {
      const Anchor& a = anchors_[u.mem_slot];
      link.anchor_seq = a.seq;
      link.anchor_time = a.time;
      link.bindings = a.binds;
    }
    if (link.anchor_seq < 0 && link.retained != "false" &&
        !step_trace_.binds.empty()) {
      // Binders outside the temporal scope (the §5.2 sharp-increase shape):
      // the retained formula stays open in the bound variables, so the unit
      // never flips to a sentinel and no anchor exists. The firing-state
      // bindings are then the values that closed the formula — report them.
      link.bindings = step_trace_.binds;
    }
    chain.push_back(std::move(link));
  }
  return chain;
}

Result<bool> IncrementalEvaluator::Step(const ptl::StateSnapshot& snapshot) {
  if (tracing_) {
    step_trace_.flips.clear();
    step_trace_.binds.clear();
  }
  for (size_t i = 0; i < units_.size(); ++i) {
    Unit& u = units_[i];
    NodeId out = kFalseNode;
    switch (u.kind) {
      case Unit::Kind::kTrue:
        out = kTrueNode;
        break;
      case Unit::Kind::kFalse:
        out = kFalseNode;
        break;
      case Unit::Kind::kCompare: {
        PTLDB_ASSIGN_OR_RETURN(SymExprId lhs,
                               BuildTerm(u.ast->lhs_term, snapshot));
        PTLDB_ASSIGN_OR_RETURN(SymExprId rhs,
                               BuildTerm(u.ast->rhs_term, snapshot));
        PTLDB_ASSIGN_OR_RETURN(out, graph_->MakeAtom(u.ast->cmp_op, lhs, rhs));
        break;
      }
      case Unit::Kind::kEvent: {
        std::vector<Value> args;
        args.reserve(u.ast->event_args.size());
        for (const ptl::TermPtr& a : u.ast->event_args) {
          PTLDB_ASSIGN_OR_RETURN(Value v, EvalGroundTerm(a, snapshot));
          args.push_back(std::move(v));
        }
        out = graph_->MakeBool(snapshot.HasEvent(u.ast->event_name, args));
        break;
      }
      case Unit::Kind::kNot:
        out = graph_->MakeNot(outputs_[u.left]);
        break;
      case Unit::Kind::kAnd:
        out = graph_->MakeAnd({outputs_[u.left], outputs_[u.right]});
        break;
      case Unit::Kind::kOr:
        out = graph_->MakeOr({outputs_[u.left], outputs_[u.right]});
        break;
      case Unit::Kind::kSince: {
        NodeId held = graph_->MakeAnd({outputs_[u.left], mem_[u.mem_slot]});
        out = graph_->MakeOr({outputs_[u.right], held});
        mem_[u.mem_slot] = out;
        break;
      }
      case Unit::Kind::kPreviously: {
        out = graph_->MakeOr({outputs_[u.left], mem_[u.mem_slot]});
        mem_[u.mem_slot] = out;
        break;
      }
      case Unit::Kind::kThroughoutPast: {
        out = graph_->MakeAnd({outputs_[u.left], mem_[u.mem_slot]});
        mem_[u.mem_slot] = out;
        break;
      }
      case Unit::Kind::kLasttime: {
        out = mem_[u.mem_slot];
        mem_[u.mem_slot] = outputs_[u.left];
        break;
      }
      case Unit::Kind::kBind: {
        PTLDB_ASSIGN_OR_RETURN(
            Value v, EvalGroundTerm(
                         // bind_term lives in the AST; wrap for the helper.
                         u.ast->bind_term, snapshot));
        if (tracing_) step_trace_.binds.push_back(BindEvent{u.ast->var, v});
        PTLDB_ASSIGN_OR_RETURN(
            out, graph_->Substitute(outputs_[u.left], u.bind_var, v));
        break;
      }
      case Unit::Kind::kAggUpdate: {
        AggMachineState& m = machines_[u.machine_idx];
        const Value& qv = snapshot.query_values[m.query_slot];
        if (m.is_window) {
          PTLDB_RETURN_IF_ERROR(m.WindowObserve(snapshot.time, qv));
        } else {
          // Start/sample roots are closed formulas: their outputs are
          // sentinels.
          NodeId start = outputs_[m.start_unit];
          NodeId sample = outputs_[m.sample_unit];
          if (start != kTrueNode && start != kFalseNode) {
            return Status::Internal("aggregate start formula not closed");
          }
          if (sample != kTrueNode && sample != kFalseNode) {
            return Status::Internal("aggregate sampling formula not closed");
          }
          if (start == kTrueNode) {
            m.started = true;
            m.acc.Reset();
          }
          if (m.started && sample == kTrueNode) {
            PTLDB_RETURN_IF_ERROR(m.acc.Accumulate(qv));
          }
        }
        out = kFalseNode;  // unused
        break;
      }
    }
    outputs_[i] = out;
    if (tracing_ && u.mem_slot >= 0) TraceTemporalUnit(u, out, snapshot);
  }
  if (tracing_) {
    // Attach the step's full bind set to every subformula anchored here.
    for (const FlipEvent& flip : step_trace_.flips) {
      if (flip.transition[0] == 's') {  // "sat"
        anchors_[flip.mem_slot].binds = step_trace_.binds;
      }
    }
  }

  // §5 optimization: prune time-bounded clauses that can no longer be
  // satisfied from the retained state.
  if (options_.time_pruning) {
    for (NodeId& m : mem_) {
      PTLDB_ASSIGN_OR_RETURN(m, graph_->PruneTimeBounds(m, snapshot.time));
    }
  }

  ++steps_;
  NodeId root = outputs_[root_unit_];
  if (root == kTrueNode) {
    last_fired_ = true;
    return true;
  }
  if (root == kFalseNode) {
    last_fired_ = false;
    return false;
  }
  return Status::Internal(
      StrCat("condition did not evaluate to a constant; residual: ",
             graph_->ToString(root),
             " (free variables must be rule parameters)"));
}

IncrementalEvaluator::Checkpoint IncrementalEvaluator::Save() const {
  Checkpoint cp;
  cp.generation = graph_->generation();
  cp.steps = steps_;
  cp.last_fired = last_fired_;
  cp.mem = mem_;
  cp.machines = machines_;
  if (tracing_) {
    cp.prev_status = prev_status_;
    cp.anchors = anchors_;
  }
  return cp;
}

Status IncrementalEvaluator::Restore(const Checkpoint& cp) {
  if (cp.generation != graph_->generation()) {
    return Status::InvalidArgument(
        "checkpoint predates a node-store collection and is no longer valid");
  }
  steps_ = cp.steps;
  last_fired_ = cp.last_fired;
  mem_ = cp.mem;
  machines_ = cp.machines;
  if (tracing_) {
    if (cp.prev_status.size() == mem_.size()) {
      // Roll provenance back with the recurrences so a vetoed probe leaves
      // no trace in the witness anchors.
      prev_status_ = cp.prev_status;
      anchors_ = cp.anchors;
    } else {
      // Checkpoint predates tracing: re-sync on the next Step.
      prev_status_.assign(mem_.size(), -1);
      anchors_.assign(mem_.size(), Anchor{});
    }
  }
  return Status::OK();
}

size_t IncrementalEvaluator::LiveNodeCount() const {
  return graph_->CountReachable(mem_);
}

bool IncrementalEvaluator::MaybeCollect(size_t threshold) {
  if (graph_->num_nodes() <= threshold) return false;
  std::vector<NodeId*> roots;
  roots.reserve(mem_.size());
  for (NodeId& m : mem_) roots.push_back(&m);
  graph_->Collect(std::move(roots));
  return true;
}

Status IncrementalEvaluator::CollectKeepingCheckpoints(
    std::vector<Checkpoint*> checkpoints) {
  std::vector<NodeId*> roots;
  roots.reserve(mem_.size());
  for (NodeId& m : mem_) roots.push_back(&m);
  for (Checkpoint* cp : checkpoints) {
    if (cp->generation != graph_->generation()) {
      return Status::InvalidArgument(
          "checkpoint from a different collection generation");
    }
    for (NodeId& m : cp->mem) roots.push_back(&m);
  }
  graph_->Collect(std::move(roots));
  for (Checkpoint* cp : checkpoints) cp->generation = graph_->generation();
  return Status::OK();
}

namespace {

// Full (static + dynamic) dump of one aggregate machine. The static fields
// travel with the dump so a restore into a differently compiled machine is
// rejected instead of silently mis-wired.
void SerializeMachine(const AggMachineState& m, codec::Writer* w) {
  w->Bool(m.is_window);
  w->I64(m.start_unit);
  w->I64(m.sample_unit);
  w->I64(m.query_slot);
  w->U8(static_cast<uint8_t>(m.fn));
  w->I64(m.width);
  w->Bool(m.started);
  m.acc.Serialize(w);
  w->U32(static_cast<uint32_t>(m.window.size()));
  for (const auto& [t, v] : m.window) {
    w->I64(t);
    w->F64(v);
  }
  w->U32(static_cast<uint32_t>(m.mono.size()));
  for (const auto& [t, v] : m.mono) {
    w->I64(t);
    w->F64(v);
  }
  w->F64(m.running_sum);
}

// Restores a machine dump over `m`, which must carry the compiled static
// configuration (the dump's statics are validated against it).
Status DeserializeMachineInto(codec::Reader* r, AggMachineState* m) {
  PTLDB_ASSIGN_OR_RETURN(bool is_window, r->Bool());
  PTLDB_ASSIGN_OR_RETURN(int64_t start_unit, r->I64());
  PTLDB_ASSIGN_OR_RETURN(int64_t sample_unit, r->I64());
  PTLDB_ASSIGN_OR_RETURN(int64_t query_slot, r->I64());
  PTLDB_ASSIGN_OR_RETURN(uint8_t fn, r->U8());
  PTLDB_ASSIGN_OR_RETURN(Timestamp width, r->I64());
  if (is_window != m->is_window || start_unit != m->start_unit ||
      sample_unit != m->sample_unit || query_slot != m->query_slot ||
      static_cast<ptl::TemporalAggFn>(fn) != m->fn || width != m->width) {
    return Status::InvalidArgument(
        "aggregate machine dump does not match the compiled machine");
  }
  PTLDB_ASSIGN_OR_RETURN(m->started, r->Bool());
  PTLDB_RETURN_IF_ERROR(m->acc.Deserialize(r));
  PTLDB_ASSIGN_OR_RETURN(uint32_t window_size, r->U32());
  m->window.clear();
  for (uint32_t i = 0; i < window_size; ++i) {
    PTLDB_ASSIGN_OR_RETURN(Timestamp t, r->I64());
    PTLDB_ASSIGN_OR_RETURN(double v, r->F64());
    m->window.emplace_back(t, v);
  }
  PTLDB_ASSIGN_OR_RETURN(uint32_t mono_size, r->U32());
  m->mono.clear();
  for (uint32_t i = 0; i < mono_size; ++i) {
    PTLDB_ASSIGN_OR_RETURN(Timestamp t, r->I64());
    PTLDB_ASSIGN_OR_RETURN(double v, r->F64());
    m->mono.emplace_back(t, v);
  }
  PTLDB_ASSIGN_OR_RETURN(m->running_sum, r->F64());
  return Status::OK();
}

}  // namespace

void IncrementalEvaluator::SerializeState(codec::Writer* w) const {
  graph_->Serialize(w);
  w->U64(steps_);
  w->Bool(last_fired_);
  w->U32(static_cast<uint32_t>(mem_.size()));
  for (NodeId m : mem_) w->U32(m);
  w->U32(static_cast<uint32_t>(machines_.size()));
  for (const AggMachineState& m : machines_) SerializeMachine(m, w);
}

Status IncrementalEvaluator::RestoreState(codec::Reader* r) {
  // The graph dump carries the interned variable table; because this
  // evaluator was compiled from the same condition (validated by the
  // caller), the compile-time VarIds the units reference line up with the
  // dump's by construction order.
  PTLDB_RETURN_IF_ERROR(graph_->Deserialize(r));
  PTLDB_ASSIGN_OR_RETURN(steps_, r->U64());
  PTLDB_ASSIGN_OR_RETURN(last_fired_, r->Bool());
  PTLDB_ASSIGN_OR_RETURN(uint32_t num_mem, r->U32());
  if (num_mem != mem_.size()) {
    return Status::InvalidArgument(
        "evaluator dump has a different number of temporal subformulas");
  }
  for (NodeId& m : mem_) {
    PTLDB_ASSIGN_OR_RETURN(m, r->U32());
    if (m >= graph_->num_nodes()) {
      return Status::InvalidArgument("evaluator dump: mem slot out of range");
    }
  }
  PTLDB_ASSIGN_OR_RETURN(uint32_t num_machines, r->U32());
  if (num_machines != machines_.size()) {
    return Status::InvalidArgument(
        "evaluator dump has a different number of aggregate machines");
  }
  for (AggMachineState& m : machines_) {
    PTLDB_RETURN_IF_ERROR(DeserializeMachineInto(r, &m));
  }
  // Provenance does not survive a restart: re-sync on the next traced Step.
  prev_status_.assign(prev_status_.size(), -1);
  anchors_.assign(anchors_.size(), Anchor{});
  return Status::OK();
}

void IncrementalEvaluator::SerializeCheckpoint(const Checkpoint& cp,
                                               codec::Writer* w) const {
  w->U64(cp.generation);
  w->U64(cp.steps);
  w->Bool(cp.last_fired);
  w->U32(static_cast<uint32_t>(cp.mem.size()));
  for (NodeId m : cp.mem) w->U32(m);
  w->U32(static_cast<uint32_t>(cp.machines.size()));
  for (const AggMachineState& m : cp.machines) SerializeMachine(m, w);
}

Result<IncrementalEvaluator::Checkpoint>
IncrementalEvaluator::DeserializeCheckpoint(codec::Reader* r) const {
  Checkpoint cp;
  PTLDB_ASSIGN_OR_RETURN(cp.generation, r->U64());
  PTLDB_ASSIGN_OR_RETURN(cp.steps, r->U64());
  PTLDB_ASSIGN_OR_RETURN(cp.last_fired, r->Bool());
  PTLDB_ASSIGN_OR_RETURN(uint32_t num_mem, r->U32());
  if (num_mem != mem_.size()) {
    return Status::InvalidArgument(
        "checkpoint dump has a different number of temporal subformulas");
  }
  cp.mem.resize(num_mem);
  for (NodeId& m : cp.mem) {
    PTLDB_ASSIGN_OR_RETURN(m, r->U32());
    if (m >= graph_->num_nodes()) {
      return Status::InvalidArgument("checkpoint dump: mem slot out of range");
    }
  }
  PTLDB_ASSIGN_OR_RETURN(uint32_t num_machines, r->U32());
  if (num_machines != machines_.size()) {
    return Status::InvalidArgument(
        "checkpoint dump has a different number of aggregate machines");
  }
  // Seed each machine with the compiled static configuration so the dump's
  // statics are validated against it.
  cp.machines = machines_;
  for (AggMachineState& m : cp.machines) {
    PTLDB_RETURN_IF_ERROR(DeserializeMachineInto(r, &m));
  }
  return cp;
}

std::string IncrementalEvaluator::DebugString() const {
  std::string out = StrCat("IncrementalEvaluator after ", steps_, " steps:\n");
  for (const Unit& u : units_) {
    if (u.mem_slot >= 0) {
      out += StrCat("  F[", u.ast->ToString(),
                    "] = ", graph_->ToString(mem_[u.mem_slot]), "\n");
    }
  }
  out += StrCat("  live nodes: ", LiveNodeCount(),
                ", store nodes: ", graph_->num_nodes(), "\n");
  return out;
}

}  // namespace ptldb::eval
