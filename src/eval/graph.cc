#include "eval/graph.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"
#include "ptl/lint.h"
#include "ptl/naive_eval.h"

namespace ptldb::eval {

size_t Graph::NodeKeyHash::operator()(const NodeKey& k) const {
  size_t seed = static_cast<size_t>(k.kind);
  seed = HashCombine(seed, static_cast<size_t>(k.cmp));
  seed = HashCombine(seed, k.lhs);
  seed = HashCombine(seed, k.rhs);
  for (NodeId c : k.children) seed = HashCombine(seed, c);
  return seed;
}

size_t Graph::ExprKeyHash::operator()(const ExprKey& k) const {
  size_t seed = static_cast<size_t>(k.kind);
  seed = HashCombine(seed, static_cast<size_t>(k.op));
  seed = HashCombine(seed, k.constant.Hash());
  seed = HashCombine(seed, k.var);
  seed = HashCombine(seed, k.a);
  seed = HashCombine(seed, k.b);
  return seed;
}

size_t Graph::SubstKeyHash::operator()(const SubstKey& k) const {
  size_t seed = k.root;
  seed = HashCombine(seed, k.var);
  seed = HashCombine(seed, k.value.Hash());
  return seed;
}

namespace {
// Bound on the persistent substitution cache; reached only by pathological
// workloads (the cache is also dropped wholesale on every Collect).
constexpr size_t kSubstCacheCap = 1u << 16;
}  // namespace

namespace {
// Swaps the sides of a comparison: `a cmp b` == `b Swap(cmp) a`.
ptl::CmpOp SwapCmpForSubsume(ptl::CmpOp op) {
  switch (op) {
    case ptl::CmpOp::kLt:
      return ptl::CmpOp::kGt;
    case ptl::CmpOp::kLe:
      return ptl::CmpOp::kGe;
    case ptl::CmpOp::kGt:
      return ptl::CmpOp::kLt;
    case ptl::CmpOp::kGe:
      return ptl::CmpOp::kLe;
    case ptl::CmpOp::kEq:
    case ptl::CmpOp::kNe:
      return op;
  }
  return op;
}
}  // namespace

Graph::Graph() {
  // Install the sentinels at their fixed ids.
  NodeKey false_key{Node::Kind::kFalse, ptl::CmpOp::kEq, 0, 0, {}};
  NodeKey true_key{Node::Kind::kTrue, ptl::CmpOp::kEq, 0, 0, {}};
  PTLDB_CHECK(InternNode(std::move(false_key)) == kFalseNode);
  PTLDB_CHECK(InternNode(std::move(true_key)) == kTrueNode);
}

VarId Graph::InternVar(const std::string& name, bool is_time_var) {
  auto it = var_index_.find(name);
  if (it != var_index_.end()) {
    if (is_time_var) {
      var_is_time_[it->second] = true;
      time_var_bits_ |= VarBit(it->second);
    }
    return it->second;
  }
  VarId id = static_cast<VarId>(var_names_.size());
  var_names_.push_back(name);
  var_is_time_.push_back(is_time_var);
  var_index_.emplace(name, id);
  if (is_time_var) time_var_bits_ |= VarBit(id);
  return id;
}

NodeId Graph::InternNode(NodeKey key) {
  auto it = node_index_.find(key);
  if (it != node_index_.end()) return it->second;
  NodeId id = static_cast<NodeId>(nodes_.size());
  Node n;
  n.kind = key.kind;
  n.cmp = key.cmp;
  n.lhs = key.lhs;
  n.rhs = key.rhs;
  n.children = key.children;
  // Var mask: union of the parts (children/operands always precede the new
  // node, so their masks exist).
  uint64_t mask = 0;
  if (n.kind == Node::Kind::kAtom) {
    mask = expr_masks_[n.lhs] | expr_masks_[n.rhs];
  }
  for (NodeId c : n.children) mask |= node_masks_[c];
  nodes_.push_back(std::move(n));
  node_masks_.push_back(mask);
  node_index_.emplace(std::move(key), id);
  return id;
}

SymExprId Graph::InternExpr(ExprKey key) {
  auto it = expr_index_.find(key);
  if (it != expr_index_.end()) return it->second;
  SymExprId id = static_cast<SymExprId>(exprs_.size());
  SymExpr e;
  e.kind = key.kind;
  e.op = key.op;
  e.constant = key.constant;
  e.var = key.var;
  e.a = key.a;
  e.b = key.b;
  uint64_t mask = 0;
  switch (e.kind) {
    case SymExpr::Kind::kConst:
      break;
    case SymExpr::Kind::kVar:
      mask = VarBit(e.var);
      break;
    case SymExpr::Kind::kArith:
      mask = expr_masks_[e.a];
      if (e.op != ptl::ArithOp::kNeg) mask |= expr_masks_[e.b];
      break;
  }
  exprs_.push_back(std::move(e));
  expr_masks_.push_back(mask);
  expr_index_.emplace(std::move(key), id);
  return id;
}

SymExprId Graph::ExprConst(Value v) {
  return InternExpr(ExprKey{SymExpr::Kind::kConst, ptl::ArithOp::kAdd,
                            std::move(v), 0, 0, 0});
}

SymExprId Graph::ExprVar(VarId var) {
  return InternExpr(
      ExprKey{SymExpr::Kind::kVar, ptl::ArithOp::kAdd, Value::Null(), var, 0, 0});
}

Result<SymExprId> Graph::ExprArith(ptl::ArithOp op, SymExprId a, SymExprId b) {
  if (ExprIsConst(a) && ExprIsConst(b)) {
    const Value& va = exprs_[a].constant;
    const Value& vb = exprs_[b].constant;
    Result<Value> v = Status::Internal("unset");
    switch (op) {
      case ptl::ArithOp::kAdd:
        v = Value::Add(va, vb);
        break;
      case ptl::ArithOp::kSub:
        v = Value::Sub(va, vb);
        break;
      case ptl::ArithOp::kMul:
        v = Value::Mul(va, vb);
        break;
      case ptl::ArithOp::kDiv:
        v = Value::Div(va, vb);
        break;
      case ptl::ArithOp::kMod:
        v = Value::Mod(va, vb);
        break;
      case ptl::ArithOp::kNeg:
        return Status::Internal("binary arith with kNeg");
    }
    if (!v.ok()) return v.status();
    return ExprConst(std::move(v).value());
  }
  return InternExpr(ExprKey{SymExpr::Kind::kArith, op, Value::Null(), 0, a, b});
}

Result<SymExprId> Graph::ExprNeg(SymExprId a) {
  if (ExprIsConst(a)) {
    PTLDB_ASSIGN_OR_RETURN(Value v, Value::Neg(exprs_[a].constant));
    return ExprConst(std::move(v));
  }
  return InternExpr(
      ExprKey{SymExpr::Kind::kArith, ptl::ArithOp::kNeg, Value::Null(), 0, a, 0});
}

Result<NodeId> Graph::MakeAtom(ptl::CmpOp cmp, SymExprId lhs, SymExprId rhs) {
  if (ExprIsConst(lhs) && ExprIsConst(rhs)) {
    PTLDB_ASSIGN_OR_RETURN(
        bool v, ptl::ApplyCmp(cmp, exprs_[lhs].constant, exprs_[rhs].constant));
    return MakeBool(v);
  }
  return InternNode(NodeKey{Node::Kind::kAtom, cmp, lhs, rhs, {}});
}

NodeId Graph::MakeNot(NodeId child) {
  const Node& n = nodes_[child];
  if (n.kind == Node::Kind::kFalse) return kTrueNode;
  if (n.kind == Node::Kind::kTrue) return kFalseNode;
  if (n.kind == Node::Kind::kNot) return n.children[0];
  // NOT over an atom folds into the complementary comparison, keeping atoms
  // in a canonical positive form (helps sharing and pruning).
  if (n.kind == Node::Kind::kAtom) {
    Result<NodeId> flipped =
        MakeAtom(ptl::NegateCmp(n.cmp), n.lhs, n.rhs);
    PTLDB_CHECK(flipped.ok());  // operands unchanged, cannot fail
    return flipped.value();
  }
  return InternNode(NodeKey{Node::Kind::kNot, ptl::CmpOp::kEq, 0, 0, {child}});
}

NodeId Graph::MakeNary(Node::Kind kind, std::vector<NodeId> children) {
  PTLDB_CHECK(kind == Node::Kind::kAnd || kind == Node::Kind::kOr);
  const bool is_and = kind == Node::Kind::kAnd;
  const NodeId absorbing = is_and ? kFalseNode : kTrueNode;
  const NodeId identity = is_and ? kTrueNode : kFalseNode;

  // Flatten nested nodes of the same kind and drop identities.
  std::vector<NodeId> flat;
  flat.reserve(children.size());
  std::vector<NodeId> work(children.rbegin(), children.rend());
  while (!work.empty()) {
    NodeId id = work.back();
    work.pop_back();
    if (id == absorbing) return absorbing;
    if (id == identity) continue;
    const Node& n = nodes_[id];
    if (n.kind == kind) {
      for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
        work.push_back(*it);
      }
    } else {
      flat.push_back(id);
    }
  }
  std::sort(flat.begin(), flat.end());
  flat.erase(std::unique(flat.begin(), flat.end()), flat.end());
  if (subsumption_) SubsumeIntervalAtoms(is_and, &flat);
  if (flat.empty()) return identity;
  if (flat.size() == 1) return flat[0];
  // Complement annihilation: x AND NOT x -> false; x OR NOT x -> true.
  for (NodeId id : flat) {
    const Node& n = nodes_[id];
    if (n.kind == Node::Kind::kNot &&
        std::binary_search(flat.begin(), flat.end(), n.children[0])) {
      return absorbing;
    }
  }
  return InternNode(NodeKey{kind, ptl::CmpOp::kEq, 0, 0, std::move(flat)});
}

void Graph::SubsumeIntervalAtoms(bool is_and, std::vector<NodeId>* children) {
  // §5 "optimization techniques to reduce the size of the formulas":
  // one-sided atoms over the same symbolic expression collapse —
  //   (E <= 5 OR  E <= 9) == E <= 9      (E <= 5 AND E <= 9) == E <= 5
  //   (E >= 5 OR  E >= 9) == E >= 5      (E >= 5 AND E >= 9) == E >= 9
  // This is what keeps unbounded conditions like
  // [x := q] PREVIOUSLY (q <= 0.5 * x) at constant retained state: the
  // retained disjunction is just the running extremum.
  //
  // Key: (symbolic side, comparison with the constant on the right).
  std::unordered_map<uint64_t, size_t> best;  // key -> index into children
  std::vector<bool> drop(children->size(), false);
  bool any_dropped = false;
  for (size_t i = 0; i < children->size(); ++i) {
    const Node& n = nodes_[(*children)[i]];
    if (n.kind != Node::Kind::kAtom) continue;
    SymExprId sym_side, const_side;
    ptl::CmpOp cmp = n.cmp;
    if (!ExprIsConst(n.lhs) && ExprIsConst(n.rhs)) {
      sym_side = n.lhs;
      const_side = n.rhs;
    } else if (ExprIsConst(n.lhs) && !ExprIsConst(n.rhs)) {
      sym_side = n.rhs;
      const_side = n.lhs;
      cmp = SwapCmpForSubsume(cmp);
    } else {
      continue;
    }
    if (cmp == ptl::CmpOp::kEq || cmp == ptl::CmpOp::kNe) continue;
    const Value& bound = exprs_[const_side].constant;
    if (!bound.is_numeric()) continue;
    uint64_t key = (static_cast<uint64_t>(sym_side) << 3) |
                   static_cast<uint64_t>(cmp);
    auto [it, inserted] = best.try_emplace(key, i);
    if (inserted) continue;
    // Compare against the current keeper.
    const Node& keeper = nodes_[(*children)[it->second]];
    const Value& kb = ExprIsConst(keeper.rhs) ? exprs_[keeper.rhs].constant
                                              : exprs_[keeper.lhs].constant;
    auto c = Value::Compare(bound, kb);
    if (!c.ok()) continue;
    // For <=/<: Or keeps the larger bound, And the smaller. For >=/>:
    // mirrored.
    bool upper = cmp == ptl::CmpOp::kLe || cmp == ptl::CmpOp::kLt;
    bool new_wins = is_and ? (upper ? c.value() < 0 : c.value() > 0)
                           : (upper ? c.value() > 0 : c.value() < 0);
    if (new_wins) {
      drop[it->second] = true;
      it->second = i;
    } else {
      drop[i] = true;
    }
    any_dropped = true;
    ++subsume_hits_;
  }
  if (!any_dropped) return;
  std::vector<NodeId> kept;
  kept.reserve(children->size());
  for (size_t i = 0; i < children->size(); ++i) {
    if (!drop[i]) kept.push_back((*children)[i]);
  }
  *children = std::move(kept);
}

NodeId Graph::MakeAnd(std::vector<NodeId> children) {
  return MakeNary(Node::Kind::kAnd, std::move(children));
}

NodeId Graph::MakeOr(std::vector<NodeId> children) {
  return MakeNary(Node::Kind::kOr, std::move(children));
}

Result<SymExprId> Graph::SubstituteExpr(
    SymExprId id, VarId var, const Value& value,
    std::unordered_map<SymExprId, SymExprId>* memo) {
  if ((expr_masks_[id] & VarBit(var)) == 0) {
    ++mask_skips_;
    return id;
  }
  auto it = memo->find(id);
  if (it != memo->end()) return it->second;
  const SymExpr& e = exprs_[id];
  SymExprId out = id;
  switch (e.kind) {
    case SymExpr::Kind::kConst:
      break;
    case SymExpr::Kind::kVar:
      if (e.var == var) out = ExprConst(value);
      break;
    case SymExpr::Kind::kArith: {
      if (e.op == ptl::ArithOp::kNeg) {
        PTLDB_ASSIGN_OR_RETURN(SymExprId a,
                               SubstituteExpr(e.a, var, value, memo));
        if (a != e.a) {
          PTLDB_ASSIGN_OR_RETURN(out, ExprNeg(a));
        }
      } else {
        PTLDB_ASSIGN_OR_RETURN(SymExprId a,
                               SubstituteExpr(e.a, var, value, memo));
        PTLDB_ASSIGN_OR_RETURN(SymExprId b,
                               SubstituteExpr(e.b, var, value, memo));
        if (a != e.a || b != e.b) {
          // Re-read op from exprs_ (the vector may have reallocated).
          PTLDB_ASSIGN_OR_RETURN(out, ExprArith(exprs_[id].op, a, b));
        }
      }
      break;
    }
  }
  memo->emplace(id, out);
  return out;
}

Result<NodeId> Graph::Substitute(NodeId root, VarId var, const Value& value) {
  const uint64_t vbit = VarBit(var);
  // Mask early-out: a clear bit proves `var` does not occur under `root`.
  if ((node_masks_[root] & vbit) == 0) {
    ++mask_skips_;
    return root;
  }
  // Persistent cross-call cache. Hash-consing makes NodeIds canonical for
  // structure, so structurally equal retained formulas — including those of
  // *other* rules sharing this graph — hit the same entry.
  SubstKey cache_key{root, var, value};
  if (auto it = subst_cache_.find(cache_key); it != subst_cache_.end()) {
    ++subst_cache_hits_;
    return it->second;
  }
  ++subst_cache_misses_;

  std::unordered_map<NodeId, NodeId> memo;
  std::unordered_map<SymExprId, SymExprId> expr_memo;

  // Recursive rewrite with explicit lambda recursion.
  struct Rec {
    Graph* g;
    VarId var;
    uint64_t vbit;
    const Value& value;
    std::unordered_map<NodeId, NodeId>* memo;
    std::unordered_map<SymExprId, SymExprId>* expr_memo;

    Result<NodeId> operator()(NodeId id) {
      if ((g->node_masks_[id] & vbit) == 0) {
        ++g->mask_skips_;
        return id;
      }
      auto it = memo->find(id);
      if (it != memo->end()) return it->second;
      const Node n = g->nodes_[id];  // copy: vector may reallocate
      NodeId out = id;
      switch (n.kind) {
        case Node::Kind::kFalse:
        case Node::Kind::kTrue:
          break;
        case Node::Kind::kAtom: {
          PTLDB_ASSIGN_OR_RETURN(
              SymExprId lhs, g->SubstituteExpr(n.lhs, var, value, expr_memo));
          PTLDB_ASSIGN_OR_RETURN(
              SymExprId rhs, g->SubstituteExpr(n.rhs, var, value, expr_memo));
          if (lhs != n.lhs || rhs != n.rhs) {
            PTLDB_ASSIGN_OR_RETURN(out, g->MakeAtom(n.cmp, lhs, rhs));
          }
          break;
        }
        case Node::Kind::kNot: {
          PTLDB_ASSIGN_OR_RETURN(NodeId c, (*this)(n.children[0]));
          if (c != n.children[0]) out = g->MakeNot(c);
          break;
        }
        case Node::Kind::kAnd:
        case Node::Kind::kOr: {
          std::vector<NodeId> kids;
          kids.reserve(n.children.size());
          bool changed = false;
          for (NodeId c : n.children) {
            PTLDB_ASSIGN_OR_RETURN(NodeId nc, (*this)(c));
            changed |= (nc != c);
            kids.push_back(nc);
          }
          if (changed) out = g->MakeNary(n.kind, std::move(kids));
          break;
        }
      }
      memo->emplace(id, out);
      return out;
    }
  } rec{this, var, vbit, value, &memo, &expr_memo};
  PTLDB_ASSIGN_OR_RETURN(NodeId out, rec(root));
  if (subst_cache_.size() >= kSubstCacheCap) subst_cache_.clear();
  subst_cache_.emplace(std::move(cache_key), out);
  return out;
}

namespace {

// Swaps the sides of a comparison: `a cmp b` == `b Swap(cmp) a`.
ptl::CmpOp SwapCmp(ptl::CmpOp op) {
  switch (op) {
    case ptl::CmpOp::kLt:
      return ptl::CmpOp::kGt;
    case ptl::CmpOp::kLe:
      return ptl::CmpOp::kGe;
    case ptl::CmpOp::kGt:
      return ptl::CmpOp::kLt;
    case ptl::CmpOp::kGe:
      return ptl::CmpOp::kLe;
    case ptl::CmpOp::kEq:
    case ptl::CmpOp::kNe:
      return op;
  }
  return op;
}

}  // namespace

bool Graph::NormalizeTimeAtom(const Node& atom, ptl::CmpOp* out_cmp,
                              Value* out_bound) const {
  // Recognize `f(t) cmp C` or `C cmp f(t)` with f(t) one of: t, t+c, t-c, c+t
  // and t a time variable.
  SymExprId var_side, const_side;
  ptl::CmpOp cmp = atom.cmp;
  if (ExprIsConst(atom.rhs) && !ExprIsConst(atom.lhs)) {
    var_side = atom.lhs;
    const_side = atom.rhs;
  } else if (ExprIsConst(atom.lhs) && !ExprIsConst(atom.rhs)) {
    var_side = atom.rhs;
    const_side = atom.lhs;
    cmp = SwapCmp(cmp);
  } else {
    return false;
  }
  Value bound = exprs_[const_side].constant;
  if (!bound.is_numeric()) return false;

  const SymExpr* e = &exprs_[var_side];
  // Peel one level of t +/- c.
  if (e->kind == SymExpr::Kind::kArith) {
    if (e->op == ptl::ArithOp::kAdd) {
      // t + c cmp B  ->  t cmp B - c  (also c + t).
      SymExprId var_part, const_part;
      if (!ExprIsConst(e->a) && ExprIsConst(e->b)) {
        var_part = e->a;
        const_part = e->b;
      } else if (ExprIsConst(e->a) && !ExprIsConst(e->b)) {
        var_part = e->b;
        const_part = e->a;
      } else {
        return false;
      }
      auto nb = Value::Sub(bound, exprs_[const_part].constant);
      if (!nb.ok()) return false;
      bound = std::move(nb).value();
      e = &exprs_[var_part];
    } else if (e->op == ptl::ArithOp::kSub) {
      // t - c cmp B  ->  t cmp B + c. (c - t is not handled: sign flip.)
      if (ExprIsConst(e->a) || !ExprIsConst(e->b)) return false;
      auto nb = Value::Add(bound, exprs_[e->b].constant);
      if (!nb.ok()) return false;
      bound = std::move(nb).value();
      e = &exprs_[e->a];
    } else {
      return false;
    }
  }
  if (e->kind != SymExpr::Kind::kVar) return false;
  if (!var_is_time_[e->var]) return false;
  *out_cmp = cmp;
  *out_bound = std::move(bound);
  return true;
}

Result<NodeId> Graph::PruneTimeBounds(NodeId root, Timestamp now) {
  // A subtree whose mask shares no bit with the time variables cannot hold a
  // prunable atom; skip it without walking.
  if ((node_masks_[root] & time_var_bits_) == 0) {
    ++mask_skips_;
    return root;
  }
  std::unordered_map<NodeId, NodeId> memo;
  struct Rec {
    Graph* g;
    Timestamp now;
    std::unordered_map<NodeId, NodeId>* memo;

    Result<NodeId> operator()(NodeId id) {
      if ((g->node_masks_[id] & g->time_var_bits_) == 0) {
        ++g->mask_skips_;
        return id;
      }
      auto it = memo->find(id);
      if (it != memo->end()) return it->second;
      const Node n = g->nodes_[id];  // copy: vector may reallocate
      NodeId out = id;
      switch (n.kind) {
        case Node::Kind::kFalse:
        case Node::Kind::kTrue:
          break;
        case Node::Kind::kAtom: {
          ptl::CmpOp cmp;
          Value bound;
          if (g->NormalizeTimeAtom(n, &cmp, &bound)) {
            // All future substitutions of a time variable are >= now. The
            // decision table is shared with the linter's guard analysis
            // (ptl::DecideTimeAtom) so static classification and runtime
            // pruning cannot drift apart.
            auto c = Value::Compare(Value::Int(now), bound);
            if (c.ok()) {
              switch (ptl::DecideTimeAtom(cmp, c.value())) {
                case ptl::TimeAtomFate::kSettlesFalse:
                  out = kFalseNode;
                  break;
                case ptl::TimeAtomFate::kSettlesTrue:
                  out = kTrueNode;
                  break;
                case ptl::TimeAtomFate::kUndecided:
                  break;
              }
            }
          }
          if (out != id) ++g->prune_hits_;
          break;
        }
        case Node::Kind::kNot: {
          PTLDB_ASSIGN_OR_RETURN(NodeId c, (*this)(n.children[0]));
          if (c != n.children[0]) out = g->MakeNot(c);
          break;
        }
        case Node::Kind::kAnd:
        case Node::Kind::kOr: {
          std::vector<NodeId> kids;
          kids.reserve(n.children.size());
          bool changed = false;
          for (NodeId c : n.children) {
            PTLDB_ASSIGN_OR_RETURN(NodeId nc, (*this)(c));
            changed |= (nc != c);
            kids.push_back(nc);
          }
          if (changed) out = g->MakeNary(n.kind, std::move(kids));
          break;
        }
      }
      memo->emplace(id, out);
      return out;
    }
  } rec{this, now, &memo};
  return rec(root);
}

size_t Graph::CountReachable(const std::vector<NodeId>& roots) const {
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<NodeId> work;
  size_t count = 0;
  for (NodeId r : roots) {
    if (!seen[r]) {
      seen[r] = true;
      work.push_back(r);
    }
  }
  while (!work.empty()) {
    NodeId id = work.back();
    work.pop_back();
    ++count;
    for (NodeId c : nodes_[id].children) {
      if (!seen[c]) {
        seen[c] = true;
        work.push_back(c);
      }
    }
  }
  return count;
}

void Graph::Collect(std::vector<NodeId*> roots) {
  // Mark reachable nodes.
  std::vector<bool> node_seen(nodes_.size(), false);
  std::vector<bool> expr_seen(exprs_.size(), false);
  node_seen[kFalseNode] = node_seen[kTrueNode] = true;
  std::vector<NodeId> work;
  for (NodeId* r : roots) {
    if (!node_seen[*r]) {
      node_seen[*r] = true;
      work.push_back(*r);
    }
  }
  work.push_back(kFalseNode);
  work.push_back(kTrueNode);
  while (!work.empty()) {
    NodeId id = work.back();
    work.pop_back();
    const Node& n = nodes_[id];
    if (n.kind == Node::Kind::kAtom) {
      // Mark the expression DAGs of atoms.
      std::vector<SymExprId> ework{n.lhs, n.rhs};
      while (!ework.empty()) {
        SymExprId e = ework.back();
        ework.pop_back();
        if (expr_seen[e]) continue;
        expr_seen[e] = true;
        const SymExpr& ex = exprs_[e];
        if (ex.kind == SymExpr::Kind::kArith) {
          ework.push_back(ex.a);
          if (ex.op != ptl::ArithOp::kNeg) ework.push_back(ex.b);
        }
      }
    }
    for (NodeId c : n.children) {
      if (!node_seen[c]) {
        node_seen[c] = true;
        work.push_back(c);
      }
    }
  }

  // Compact expressions.
  std::vector<SymExprId> expr_remap(exprs_.size(), 0);
  std::vector<SymExpr> new_exprs;
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (!expr_seen[i]) continue;
    expr_remap[i] = static_cast<SymExprId>(new_exprs.size());
    SymExpr e = exprs_[i];
    if (e.kind == SymExpr::Kind::kArith) {
      e.a = expr_remap[e.a];  // operands precede users (append-only order)
      if (e.op != ptl::ArithOp::kNeg) e.b = expr_remap[e.b];
    }
    new_exprs.push_back(std::move(e));
  }

  // Compact nodes (children precede parents by construction order).
  std::vector<NodeId> node_remap(nodes_.size(), 0);
  std::vector<Node> new_nodes;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!node_seen[i]) continue;
    node_remap[i] = static_cast<NodeId>(new_nodes.size());
    Node n = nodes_[i];
    if (n.kind == Node::Kind::kAtom) {
      n.lhs = expr_remap[n.lhs];
      n.rhs = expr_remap[n.rhs];
    }
    for (NodeId& c : n.children) c = node_remap[c];
    new_nodes.push_back(std::move(n));
  }

  nodes_ = std::move(new_nodes);
  exprs_ = std::move(new_exprs);
  PTLDB_CHECK(nodes_[kFalseNode].kind == Node::Kind::kFalse);
  PTLDB_CHECK(nodes_[kTrueNode].kind == Node::Kind::kTrue);

  // Rebuild the hash-cons indexes.
  node_index_.clear();
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    node_index_.emplace(NodeKey{n.kind, n.cmp, n.lhs, n.rhs, n.children},
                        static_cast<NodeId>(i));
  }
  expr_index_.clear();
  for (size_t i = 0; i < exprs_.size(); ++i) {
    const SymExpr& e = exprs_[i];
    expr_index_.emplace(ExprKey{e.kind, e.op, e.constant, e.var, e.a, e.b},
                        static_cast<SymExprId>(i));
  }

  for (NodeId* r : roots) *r = node_remap[*r];
  RebuildMasks();
  ++generation_;
}

void Graph::RebuildMasks() {
  // NodeIds just changed (compaction or load): every cached substitution
  // result is stale.
  subst_cache_.clear();
  time_var_bits_ = 0;
  for (size_t i = 0; i < var_is_time_.size(); ++i) {
    if (var_is_time_[i]) time_var_bits_ |= VarBit(static_cast<VarId>(i));
  }
  expr_masks_.assign(exprs_.size(), 0);
  for (size_t i = 0; i < exprs_.size(); ++i) {
    const SymExpr& e = exprs_[i];
    switch (e.kind) {
      case SymExpr::Kind::kConst:
        break;
      case SymExpr::Kind::kVar:
        expr_masks_[i] = VarBit(e.var);
        break;
      case SymExpr::Kind::kArith:
        // Operands precede users in the append-only store.
        expr_masks_[i] = expr_masks_[e.a];
        if (e.op != ptl::ArithOp::kNeg) expr_masks_[i] |= expr_masks_[e.b];
        break;
    }
  }
  node_masks_.assign(nodes_.size(), 0);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    uint64_t mask = 0;
    if (n.kind == Node::Kind::kAtom) {
      mask = expr_masks_[n.lhs] | expr_masks_[n.rhs];
    }
    for (NodeId c : n.children) mask |= node_masks_[c];
    node_masks_[i] = mask;
  }
}

Result<Value> Graph::EvalGroundExpr(SymExprId id) const {
  const SymExpr& e = exprs_[id];
  if (e.kind != SymExpr::Kind::kConst) {
    return Status::Internal("expression is not ground");
  }
  return e.constant;
}

std::string Graph::ExprToString(SymExprId id) const {
  const SymExpr& e = exprs_[id];
  switch (e.kind) {
    case SymExpr::Kind::kConst:
      return e.constant.ToString();
    case SymExpr::Kind::kVar:
      return var_names_[e.var];
    case SymExpr::Kind::kArith:
      if (e.op == ptl::ArithOp::kNeg) {
        return StrCat("-(", ExprToString(e.a), ")");
      }
      return StrCat("(", ExprToString(e.a), " ", ptl::ArithOpToString(e.op),
                    " ", ExprToString(e.b), ")");
  }
  return "?";
}

void Graph::Serialize(codec::Writer* w) const {
  w->U64(generation_);
  w->Bool(subsumption_);
  w->U64(prune_hits_);
  w->U64(subsume_hits_);
  w->U32(static_cast<uint32_t>(var_names_.size()));
  for (size_t i = 0; i < var_names_.size(); ++i) {
    w->Str(var_names_[i]);
    w->Bool(var_is_time_[i]);
  }
  w->U32(static_cast<uint32_t>(exprs_.size()));
  for (const SymExpr& e : exprs_) {
    w->U8(static_cast<uint8_t>(e.kind));
    w->U8(static_cast<uint8_t>(e.op));
    w->Val(e.constant);
    w->U32(e.var);
    w->U32(e.a);
    w->U32(e.b);
  }
  w->U32(static_cast<uint32_t>(nodes_.size()));
  for (const Node& n : nodes_) {
    w->U8(static_cast<uint8_t>(n.kind));
    w->U8(static_cast<uint8_t>(n.cmp));
    w->U32(n.lhs);
    w->U32(n.rhs);
    w->U32(static_cast<uint32_t>(n.children.size()));
    for (NodeId c : n.children) w->U32(c);
  }
}

Status Graph::Deserialize(codec::Reader* r) {
  PTLDB_ASSIGN_OR_RETURN(generation_, r->U64());
  PTLDB_ASSIGN_OR_RETURN(subsumption_, r->Bool());
  PTLDB_ASSIGN_OR_RETURN(prune_hits_, r->U64());
  PTLDB_ASSIGN_OR_RETURN(subsume_hits_, r->U64());

  PTLDB_ASSIGN_OR_RETURN(uint32_t num_vars, r->U32());
  var_names_.clear();
  var_is_time_.clear();
  var_index_.clear();
  for (uint32_t i = 0; i < num_vars; ++i) {
    PTLDB_ASSIGN_OR_RETURN(std::string name, r->Str());
    PTLDB_ASSIGN_OR_RETURN(bool is_time, r->Bool());
    var_names_.push_back(name);
    var_is_time_.push_back(is_time);
    var_index_.emplace(std::move(name), static_cast<VarId>(i));
  }

  PTLDB_ASSIGN_OR_RETURN(uint32_t num_exprs, r->U32());
  exprs_.clear();
  exprs_.reserve(num_exprs);
  for (uint32_t i = 0; i < num_exprs; ++i) {
    SymExpr e;
    PTLDB_ASSIGN_OR_RETURN(uint8_t kind, r->U8());
    if (kind > static_cast<uint8_t>(SymExpr::Kind::kArith)) {
      return Status::InvalidArgument("graph dump: bad expr kind");
    }
    e.kind = static_cast<SymExpr::Kind>(kind);
    PTLDB_ASSIGN_OR_RETURN(uint8_t op, r->U8());
    e.op = static_cast<ptl::ArithOp>(op);
    PTLDB_ASSIGN_OR_RETURN(e.constant, r->Val());
    PTLDB_ASSIGN_OR_RETURN(e.var, r->U32());
    PTLDB_ASSIGN_OR_RETURN(e.a, r->U32());
    PTLDB_ASSIGN_OR_RETURN(e.b, r->U32());
    // Operands precede users in the append-only store.
    if (e.kind == SymExpr::Kind::kVar && e.var >= num_vars) {
      return Status::InvalidArgument("graph dump: expr var out of range");
    }
    if (e.kind == SymExpr::Kind::kArith && (e.a >= i || e.b >= num_exprs)) {
      return Status::InvalidArgument("graph dump: expr operand out of range");
    }
    exprs_.push_back(std::move(e));
  }

  PTLDB_ASSIGN_OR_RETURN(uint32_t num_nodes, r->U32());
  if (num_nodes < 2) {
    return Status::InvalidArgument("graph dump: missing sentinel nodes");
  }
  nodes_.clear();
  nodes_.reserve(num_nodes);
  for (uint32_t i = 0; i < num_nodes; ++i) {
    Node n;
    PTLDB_ASSIGN_OR_RETURN(uint8_t kind, r->U8());
    if (kind > static_cast<uint8_t>(Node::Kind::kOr)) {
      return Status::InvalidArgument("graph dump: bad node kind");
    }
    n.kind = static_cast<Node::Kind>(kind);
    PTLDB_ASSIGN_OR_RETURN(uint8_t cmp, r->U8());
    n.cmp = static_cast<ptl::CmpOp>(cmp);
    PTLDB_ASSIGN_OR_RETURN(n.lhs, r->U32());
    PTLDB_ASSIGN_OR_RETURN(n.rhs, r->U32());
    if (n.kind == Node::Kind::kAtom &&
        (n.lhs >= num_exprs || n.rhs >= num_exprs)) {
      return Status::InvalidArgument("graph dump: atom expr out of range");
    }
    PTLDB_ASSIGN_OR_RETURN(uint32_t num_children, r->U32());
    if (num_children > r->remaining() / 4) {
      return Status::InvalidArgument("graph dump: child count too large");
    }
    n.children.reserve(num_children);
    for (uint32_t c = 0; c < num_children; ++c) {
      PTLDB_ASSIGN_OR_RETURN(NodeId child, r->U32());
      // Children precede parents in construction order.
      if (child >= i) {
        return Status::InvalidArgument("graph dump: child out of range");
      }
      n.children.push_back(child);
    }
    nodes_.push_back(std::move(n));
  }
  if (nodes_[kFalseNode].kind != Node::Kind::kFalse ||
      nodes_[kTrueNode].kind != Node::Kind::kTrue) {
    return Status::InvalidArgument("graph dump: sentinels out of place");
  }

  // Rebuild the hash-cons indexes exactly as Collect does.
  node_index_.clear();
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    node_index_.emplace(NodeKey{n.kind, n.cmp, n.lhs, n.rhs, n.children},
                        static_cast<NodeId>(i));
  }
  expr_index_.clear();
  for (size_t i = 0; i < exprs_.size(); ++i) {
    const SymExpr& e = exprs_[i];
    expr_index_.emplace(ExprKey{e.kind, e.op, e.constant, e.var, e.a, e.b},
                        static_cast<SymExprId>(i));
  }
  RebuildMasks();
  return Status::OK();
}

std::string Graph::ToString(NodeId id) const {
  const Node& n = nodes_[id];
  switch (n.kind) {
    case Node::Kind::kFalse:
      return "false";
    case Node::Kind::kTrue:
      return "true";
    case Node::Kind::kAtom:
      return StrCat(ExprToString(n.lhs), " ", ptl::CmpOpToString(n.cmp), " ",
                    ExprToString(n.rhs));
    case Node::Kind::kNot:
      return StrCat("NOT (", ToString(n.children[0]), ")");
    case Node::Kind::kAnd:
    case Node::Kind::kOr: {
      std::vector<std::string> parts;
      parts.reserve(n.children.size());
      for (NodeId c : n.children) parts.push_back(ToString(c));
      return StrCat("(", Join(parts, n.kind == Node::Kind::kAnd ? " AND " : " OR "),
                    ")");
    }
  }
  return "?";
}

}  // namespace ptldb::eval
