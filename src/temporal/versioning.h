// System-period temporal tables (ROADMAP: "first-class temporal tables").
//
// Any table in the catalog can be declared VERSIONED. From that point on,
// every `Database::Commit` archives the rows the transaction superseded into
// a paired history table stamped with the system period [T_start, T_end) on
// the transaction clock — the arkhipov/temporal_tables model, represented
// with the columnar run + dictionary layout of eval::RelationHistory so an
// `AS OF t` read is a binary-search gather over interval columns, not a scan
// of archived rows.
//
// The store also retains the *collapsed committed history* of the paper's §9:
// the sequence of commit points and user-event states (begin/abort/
// attempt-only states dropped, aborted transactions invisible). Together with
// the per-table histories this is exactly the input the offline integrity
// checker (rules::OfflineCheck) needs to re-evaluate conditions "as of" every
// commit point and diff the verdicts against the online engine — the
// Theorem 2 experiment.
//
// Durability: declare/undeclare/trim are journaled through a DdlSink into the
// WAL (storage::WalRecordType::kTemporal) and the whole store serializes into
// checkpoints; WAL-tail replay rebuilds the archive through the normal
// Database::ReplayState -> TemporalSink::OnCommit path, so AS OF reads are
// byte-identical across crash + Recover().

#ifndef PTLDB_TEMPORAL_VERSIONING_H_
#define PTLDB_TEMPORAL_VERSIONING_H_

#include <map>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/metrics.h"
#include "common/status.h"
#include "db/database.h"
#include "eval/aux_store.h"
#include "event/event.h"

namespace ptldb::temporal {

/// One retained state of the collapsed committed history (§9): a commit
/// point, or a user-event state between commits.
struct CommitPoint {
  uint64_t seq = 0;  // global history sequence number of the state
  Timestamp time = 0;
  bool is_commit = false;  // commit point vs user-event state
  std::vector<event::Event> events;
};

/// A durable versioning operation, journaled into the WAL so recovery can
/// replay declare/undeclare/trim interleaved with state replay.
struct TemporalOp {
  enum class Kind : uint8_t { kDeclare = 1, kUndeclare = 2, kTrim = 3 };
  Kind kind = Kind::kDeclare;
  std::string table;     // kDeclare / kUndeclare
  Timestamp horizon = 0;  // kTrim
};

/// The system-period version store. Attaches to a Database as its
/// TemporalSink (archival + AS OF provider); one store per database.
class VersionStore : public db::Database::TemporalSink {
 public:
  /// Journal hook the durability layer implements: called *before* a
  /// versioning op mutates the store, so the op is durable ahead of its
  /// effects (same write-ahead discipline as row deltas).
  class DdlSink {
   public:
    virtual ~DdlSink() = default;
    virtual Status OnTemporalOp(const TemporalOp& op) = 0;
  };

  /// Attaches to `db` as its temporal sink. `db` must outlive the store.
  explicit VersionStore(db::Database* db);
  ~VersionStore() override;

  VersionStore(const VersionStore&) = delete;
  VersionStore& operator=(const VersionStore&) = delete;

  db::Database* database() const { return db_; }

  /// At most one journal sink (the durability manager). Null detaches.
  void SetDdlSink(DdlSink* sink) { ddl_sink_ = sink; }

  // ---- Versioning DDL ----

  /// Declares `table` versioned: seeds its history with the current contents
  /// (so AS OF works from the declaration instant on) and archives every
  /// subsequent commit. Errors when the table does not exist or is already
  /// versioned.
  Status SetVersioned(const std::string& table);

  /// Stops versioning `table` and drops its history. NotFound when not
  /// versioned.
  Status DropVersioned(const std::string& table);

  /// Retention: drops archived rows whose validity ended at or before
  /// `horizon` from every history table, and forgets commit-log points older
  /// than `horizon`. Open (current) rows are never dropped. AS OF reads
  /// behind the horizon fail with OutOfRange rather than answering
  /// incompletely.
  Status TrimHistoryBefore(Timestamp horizon);

  /// Recovery path: applies a journaled op without re-journaling it.
  /// Idempotent (re-declaring a versioned table or re-trimming is a no-op)
  /// because a WAL tail may repeat ops already absorbed by the checkpoint.
  Status ApplyOp(const TemporalOp& op);

  // ---- AsOfProvider ----
  bool IsVersioned(const std::string& table) const override;
  /// Reconstructs `table` at instant `t`. Unversioned tables are
  /// kInvalidArgument; instants behind a trim horizon are kOutOfRange;
  /// instants before the declaration answer from the empty archive (the
  /// history simply has nothing recorded yet).
  Result<db::Relation> TableAsOf(const std::string& table,
                                 Timestamp t) const override;

  // ---- Inspection ----
  std::vector<std::string> VersionedTables() const;

  /// The backing history table R_x itself: the table's columns plus
  /// T_start / T_end, one row per archived validity interval.
  Result<db::Relation> HistoryRelation(const std::string& table) const;

  /// The raw columnar history (offline checker, tests).
  Result<const eval::RelationHistory*> History(const std::string& table) const;

  /// The collapsed committed history, in state order.
  const std::vector<CommitPoint>& commit_log() const { return commit_log_; }

  // ---- TemporalSink ----
  Status OnCommit(const event::SystemState& state,
                  const std::vector<db::RedoDelta>& deltas) override;
  Status OnEventState(const event::SystemState& state) override;

  // ---- Accounting ----
  uint64_t commits_archived() const { return commits_archived_; }
  uint64_t rows_archived() const { return rows_archived_; }
  uint64_t event_states_logged() const { return event_states_logged_; }
  uint64_t commit_points_trimmed() const { return commit_points_trimmed_; }
  size_t EstimateBytes() const;

  /// Publishes `temporal.{tables,commit_points,rows,bytes,...}` plus
  /// per-table `aux.temporal.<name>.*` gauges.
  void ExportTo(Metrics& m) const;

  // ---- Durability ----
  void Serialize(codec::Writer* w) const;
  Status Deserialize(codec::Reader* r);

 private:
  Status DoSetVersioned(const std::string& table, bool strict);
  Status DoDropVersioned(const std::string& table, bool strict);
  Status DoTrim(Timestamp horizon);
  Status Journal(const TemporalOp& op);

  db::Database* db_;
  DdlSink* ddl_sink_ = nullptr;
  // Name -> columnar history; std::map keeps archival order deterministic.
  std::map<std::string, eval::RelationHistory> tables_;
  std::vector<CommitPoint> commit_log_;
  uint64_t commits_archived_ = 0;
  uint64_t rows_archived_ = 0;
  uint64_t event_states_logged_ = 0;
  uint64_t commit_points_trimmed_ = 0;
};

void SerializeTemporalOp(const TemporalOp& op, codec::Writer* w);
Result<TemporalOp> DeserializeTemporalOp(codec::Reader* r);

}  // namespace ptldb::temporal

#endif  // PTLDB_TEMPORAL_VERSIONING_H_
