#include "temporal/versioning.h"

#include <utility>

#include "common/logging.h"
#include "common/strings.h"

namespace ptldb::temporal {

namespace {
// Wire version for VersionStore checkpoint blobs.
constexpr uint8_t kStoreVersion = 1;
}  // namespace

VersionStore::VersionStore(db::Database* db) : db_(db) {
  PTLDB_CHECK(db_ != nullptr && "version store needs a database");
  PTLDB_CHECK(db_->temporal_sink() == nullptr &&
              "database already has a temporal sink");
  db_->SetTemporalSink(this);
}

VersionStore::~VersionStore() {
  if (db_->temporal_sink() == this) db_->SetTemporalSink(nullptr);
}

Status VersionStore::Journal(const TemporalOp& op) {
  if (ddl_sink_ == nullptr) return Status::OK();
  return ddl_sink_->OnTemporalOp(op);
}

Status VersionStore::SetVersioned(const std::string& table) {
  TemporalOp op;
  op.kind = TemporalOp::Kind::kDeclare;
  op.table = table;
  // Validate before journaling so a rejected declare leaves no WAL record.
  if (tables_.count(table) != 0) {
    return Status::AlreadyExists(
        StrCat("table '", table, "' is already versioned"));
  }
  PTLDB_RETURN_IF_ERROR(db_->catalog().GetTable(table).status());
  PTLDB_RETURN_IF_ERROR(Journal(op));
  return DoSetVersioned(table, /*strict=*/true);
}

Status VersionStore::DoSetVersioned(const std::string& table, bool strict) {
  auto it = tables_.find(table);
  if (it != tables_.end()) {
    if (strict) {
      return Status::AlreadyExists(
          StrCat("table '", table, "' is already versioned"));
    }
    return Status::OK();  // replay of an op the checkpoint already absorbed
  }
  PTLDB_ASSIGN_OR_RETURN(const db::Table* t,
                         std::as_const(*db_).catalog().GetTable(table));
  eval::RelationHistory history(t->schema());
  // Seed with the current contents at the current history time, so the
  // declaration instant itself is queryable; commits that follow carry
  // timestamps >= this (NextTimestamp keeps history time monotone).
  const Timestamp seed_time = db_->history().empty()
                                  ? db_->clock()->Now()
                                  : db_->history().last_time();
  PTLDB_RETURN_IF_ERROR(history.Record(seed_time, t->Snapshot()));
  tables_.emplace(table, std::move(history));
  return Status::OK();
}

Status VersionStore::DropVersioned(const std::string& table) {
  if (tables_.count(table) == 0) {
    return Status::NotFound(StrCat("table '", table, "' is not versioned"));
  }
  TemporalOp op;
  op.kind = TemporalOp::Kind::kUndeclare;
  op.table = table;
  PTLDB_RETURN_IF_ERROR(Journal(op));
  return DoDropVersioned(table, /*strict=*/true);
}

Status VersionStore::DoDropVersioned(const std::string& table, bool strict) {
  if (tables_.erase(table) == 0 && strict) {
    return Status::NotFound(StrCat("table '", table, "' is not versioned"));
  }
  return Status::OK();
}

Status VersionStore::TrimHistoryBefore(Timestamp horizon) {
  TemporalOp op;
  op.kind = TemporalOp::Kind::kTrim;
  op.horizon = horizon;
  PTLDB_RETURN_IF_ERROR(Journal(op));
  return DoTrim(horizon);
}

Status VersionStore::DoTrim(Timestamp horizon) {
  for (auto& [name, history] : tables_) {
    (void)name;
    history.TrimBefore(horizon);
  }
  // Commit points before the horizon may no longer reconstruct (their rows
  // are gone); forget them so the offline checker never asks.
  size_t out = 0;
  for (size_t i = 0; i < commit_log_.size(); ++i) {
    if (commit_log_[i].time < horizon) continue;
    if (out != i) commit_log_[out] = std::move(commit_log_[i]);
    ++out;
  }
  commit_points_trimmed_ += commit_log_.size() - out;
  commit_log_.resize(out);
  return Status::OK();
}

Status VersionStore::ApplyOp(const TemporalOp& op) {
  switch (op.kind) {
    case TemporalOp::Kind::kDeclare:
      return DoSetVersioned(op.table, /*strict=*/false);
    case TemporalOp::Kind::kUndeclare:
      return DoDropVersioned(op.table, /*strict=*/false);
    case TemporalOp::Kind::kTrim:
      return DoTrim(op.horizon);
  }
  return Status::InvalidArgument("unknown temporal op kind");
}

bool VersionStore::IsVersioned(const std::string& table) const {
  return tables_.count(table) != 0;
}

Result<db::Relation> VersionStore::TableAsOf(const std::string& table,
                                             Timestamp t) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::InvalidArgument(
        StrCat("table '", table, "' is not versioned; AS OF needs a ",
               "versioned table"));
  }
  return it->second.AsOf(t);
}

std::vector<std::string> VersionStore::VersionedTables() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, history] : tables_) {
    (void)history;
    names.push_back(name);
  }
  return names;
}

Result<db::Relation> VersionStore::HistoryRelation(
    const std::string& table) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("table '", table, "' is not versioned"));
  }
  return it->second.Store();
}

Result<const eval::RelationHistory*> VersionStore::History(
    const std::string& table) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("table '", table, "' is not versioned"));
  }
  return &it->second;
}

Status VersionStore::OnCommit(const event::SystemState& state,
                              const std::vector<db::RedoDelta>& deltas) {
  // Group the redo image by versioned table, preserving write order.
  std::map<std::string, std::pair<std::vector<db::Tuple>,
                                  std::vector<db::Tuple>>>
      by_table;
  for (const db::RedoDelta& d : deltas) {
    if (tables_.count(d.table) == 0) continue;
    auto& [removed, added] = by_table[d.table];
    switch (d.kind) {
      case db::RedoDelta::Kind::kInsert:
        added.push_back(d.row);
        break;
      case db::RedoDelta::Kind::kDelete:
        removed.push_back(d.row);
        break;
      case db::RedoDelta::Kind::kUpdate:
        removed.push_back(d.row);
        added.push_back(d.new_row);
        break;
    }
  }
  for (auto& [name, delta] : by_table) {
    PTLDB_RETURN_IF_ERROR(
        tables_.at(name).ApplyDelta(state.time, delta.first, delta.second));
    rows_archived_ += delta.first.size();
  }
  CommitPoint p;
  p.seq = state.seq;
  p.time = state.time;
  p.is_commit = true;
  p.events = state.events;
  commit_log_.push_back(std::move(p));
  ++commits_archived_;
  return Status::OK();
}

Status VersionStore::OnEventState(const event::SystemState& state) {
  CommitPoint p;
  p.seq = state.seq;
  p.time = state.time;
  p.is_commit = false;
  p.events = state.events;
  commit_log_.push_back(std::move(p));
  ++event_states_logged_;
  return Status::OK();
}

size_t VersionStore::EstimateBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& [name, history] : tables_) {
    bytes += name.size() + history.EstimateBytes();
  }
  bytes += commit_log_.capacity() * sizeof(CommitPoint);
  for (const CommitPoint& p : commit_log_) {
    bytes += p.events.size() * sizeof(event::Event);
  }
  return bytes;
}

void VersionStore::ExportTo(Metrics& m) const {
  m.gauge("temporal.tables").Set(static_cast<int64_t>(tables_.size()));
  m.gauge("temporal.commit_points")
      .Set(static_cast<int64_t>(commit_log_.size()));
  m.gauge("temporal.commits_archived")
      .Set(static_cast<int64_t>(commits_archived_));
  m.gauge("temporal.rows_archived").Set(static_cast<int64_t>(rows_archived_));
  m.gauge("temporal.event_states")
      .Set(static_cast<int64_t>(event_states_logged_));
  m.gauge("temporal.commit_points_trimmed")
      .Set(static_cast<int64_t>(commit_points_trimmed_));
  m.gauge("temporal.bytes").Set(static_cast<int64_t>(EstimateBytes()));
  size_t rows = 0;
  for (const auto& [name, history] : tables_) {
    rows += history.num_rows();
    history.ExportTo(m, StrCat("temporal.", name));
  }
  m.gauge("temporal.rows").Set(static_cast<int64_t>(rows));
}

void VersionStore::Serialize(codec::Writer* w) const {
  w->U8(kStoreVersion);
  w->U64(commits_archived_);
  w->U64(rows_archived_);
  w->U64(event_states_logged_);
  w->U64(commit_points_trimmed_);
  w->U64(commit_log_.size());
  for (const CommitPoint& p : commit_log_) {
    w->U64(p.seq);
    w->I64(p.time);
    w->Bool(p.is_commit);
    w->U32(static_cast<uint32_t>(p.events.size()));
    for (const event::Event& e : p.events) event::SerializeEvent(e, w);
  }
  w->U32(static_cast<uint32_t>(tables_.size()));
  for (const auto& [name, history] : tables_) {
    w->Str(name);
    const db::Schema& schema = history.schema();
    w->U32(static_cast<uint32_t>(schema.num_columns()));
    for (const db::Column& c : schema.columns()) {
      w->Str(c.name);
      w->U8(static_cast<uint8_t>(c.type));
    }
    history.Serialize(w);
  }
}

Status VersionStore::Deserialize(codec::Reader* r) {
  tables_.clear();
  commit_log_.clear();
  PTLDB_ASSIGN_OR_RETURN(uint8_t version, r->U8());
  if (version != kStoreVersion) {
    return Status::InvalidArgument(
        StrCat("unknown version-store wire version ", version));
  }
  PTLDB_ASSIGN_OR_RETURN(commits_archived_, r->U64());
  PTLDB_ASSIGN_OR_RETURN(rows_archived_, r->U64());
  PTLDB_ASSIGN_OR_RETURN(event_states_logged_, r->U64());
  PTLDB_ASSIGN_OR_RETURN(commit_points_trimmed_, r->U64());
  PTLDB_ASSIGN_OR_RETURN(uint64_t num_points, r->U64());
  commit_log_.reserve(num_points <= r->remaining() ? num_points : 0);
  for (uint64_t i = 0; i < num_points; ++i) {
    CommitPoint p;
    PTLDB_ASSIGN_OR_RETURN(p.seq, r->U64());
    PTLDB_ASSIGN_OR_RETURN(p.time, r->I64());
    PTLDB_ASSIGN_OR_RETURN(p.is_commit, r->Bool());
    PTLDB_ASSIGN_OR_RETURN(uint32_t num_events, r->U32());
    p.events.reserve(num_events <= r->remaining() ? num_events : 0);
    for (uint32_t j = 0; j < num_events; ++j) {
      PTLDB_ASSIGN_OR_RETURN(event::Event e, event::DeserializeEvent(r));
      p.events.push_back(std::move(e));
    }
    commit_log_.push_back(std::move(p));
  }
  PTLDB_ASSIGN_OR_RETURN(uint32_t num_tables, r->U32());
  for (uint32_t i = 0; i < num_tables; ++i) {
    PTLDB_ASSIGN_OR_RETURN(std::string name, r->Str());
    PTLDB_ASSIGN_OR_RETURN(uint32_t num_cols, r->U32());
    std::vector<db::Column> cols;
    cols.reserve(num_cols <= r->remaining() ? num_cols : 0);
    for (uint32_t c = 0; c < num_cols; ++c) {
      db::Column col;
      PTLDB_ASSIGN_OR_RETURN(col.name, r->Str());
      PTLDB_ASSIGN_OR_RETURN(uint8_t type, r->U8());
      col.type = static_cast<ValueType>(type);
      cols.push_back(std::move(col));
    }
    PTLDB_ASSIGN_OR_RETURN(db::Schema schema, db::Schema::Make(std::move(cols)));
    eval::RelationHistory history(std::move(schema));
    PTLDB_RETURN_IF_ERROR(history.Deserialize(r));
    tables_.emplace(std::move(name), std::move(history));
  }
  return Status::OK();
}

void SerializeTemporalOp(const TemporalOp& op, codec::Writer* w) {
  w->U8(static_cast<uint8_t>(op.kind));
  w->Str(op.table);
  w->I64(op.horizon);
}

Result<TemporalOp> DeserializeTemporalOp(codec::Reader* r) {
  TemporalOp op;
  PTLDB_ASSIGN_OR_RETURN(uint8_t kind, r->U8());
  if (kind < static_cast<uint8_t>(TemporalOp::Kind::kDeclare) ||
      kind > static_cast<uint8_t>(TemporalOp::Kind::kTrim)) {
    return Status::ParseError(StrCat("unknown temporal op kind ", kind));
  }
  op.kind = static_cast<TemporalOp::Kind>(kind);
  PTLDB_ASSIGN_OR_RETURN(op.table, r->Str());
  PTLDB_ASSIGN_OR_RETURN(op.horizon, r->I64());
  return op;
}

}  // namespace ptldb::temporal
