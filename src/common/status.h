// Status / Result error model for ptldb.
//
// Follows the RocksDB/Arrow idiom: fallible operations return a `Status`, or a
// `Result<T>` when they also produce a value. Exceptions are not used on any
// library path; `PTLDB_CHECK` (logging.h) guards genuine programming errors.

#ifndef PTLDB_COMMON_STATUS_H_
#define PTLDB_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace ptldb {

/// Canonical error space for the whole library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kTypeMismatch,
  kParseError,
  kConstraintViolation,
  kTransactionAborted,
  kNotImplemented,
  kInternal,
  kUnavailable,
};

/// Human-readable name of a StatusCode ("InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation: a code plus an explanatory message.
///
/// `Status` is cheap to copy in the OK case (no allocation) and carries a
/// heap message otherwise. All factory helpers are static, e.g.
/// `Status::InvalidArgument("bad arity")`.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status TransactionAborted(std::string msg) {
    return Status(StatusCode::kTransactionAborted, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// Transient overload: the caller should back off and retry (the server's
  /// admission-control rejection).
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value-or-error union: holds either a `T` or a non-OK `Status`.
///
/// Access the value only after checking `ok()`; `value()` on an error result
/// asserts in debug builds and is undefined in release builds.
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value or `fallback` when this result is an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates a non-OK Status from `expr` out of the enclosing function.
#define PTLDB_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::ptldb::Status _ptldb_status = (expr);        \
    if (!_ptldb_status.ok()) return _ptldb_status; \
  } while (0)

#define PTLDB_CONCAT_IMPL(a, b) a##b
#define PTLDB_CONCAT(a, b) PTLDB_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T>); on error returns its Status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define PTLDB_ASSIGN_OR_RETURN(lhs, rexpr)                         \
  PTLDB_ASSIGN_OR_RETURN_IMPL(PTLDB_CONCAT(_ptldb_res_, __LINE__), \
                              lhs, rexpr)

#define PTLDB_ASSIGN_OR_RETURN_IMPL(res, lhs, rexpr) \
  auto res = (rexpr);                                \
  if (!res.ok()) return res.status();                \
  lhs = std::move(res).value();

}  // namespace ptldb

#endif  // PTLDB_COMMON_STATUS_H_
