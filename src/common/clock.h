// Clock abstraction. The paper's model stamps every system state with the time
// of the event that produced it, from a fixed global clock. All library code
// reads time through this interface so experiments can run on simulated time.

#ifndef PTLDB_COMMON_CLOCK_H_
#define PTLDB_COMMON_CLOCK_H_

#include "common/status.h"
#include "common/value.h"

namespace ptldb {

/// Source of the global timestamp attached to system states.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in ticks. Must be monotonically non-decreasing.
  virtual Timestamp Now() const = 0;

  /// Crash recovery: restores the logical time recorded in the WAL so that
  /// time-bound clauses (`time <= c`, WITHIN deadlines) keep the truth value
  /// they had before the restart. Only deterministic clocks support this;
  /// wall clocks refuse (their time survives a restart by construction).
  virtual Status Restore(Timestamp t) {
    (void)t;
    return Status::NotImplemented("this clock cannot restore logical time");
  }
};

/// Deterministic clock driven by the test/benchmark harness.
class SimClock : public Clock {
 public:
  explicit SimClock(Timestamp start = 0) : now_(start) {}

  Timestamp Now() const override { return now_; }

  /// Moves time forward by `delta` ticks (must be >= 0).
  void Advance(Timestamp delta) { now_ += delta; }

  /// Jumps to an absolute time (must be >= Now()).
  void Set(Timestamp t) { now_ = t; }

  /// Recovery restore: unlike Set, may move time backwards — the recovered
  /// process starts at 0 and jumps to the logged pre-crash time.
  Status Restore(Timestamp t) override {
    now_ = t;
    return Status::OK();
  }

 private:
  Timestamp now_;
};

/// Wall-clock backed implementation (milliseconds since epoch). Used by the
/// examples when running against real time.
class SystemClock : public Clock {
 public:
  Timestamp Now() const override;
};

}  // namespace ptldb

#endif  // PTLDB_COMMON_CLOCK_H_
