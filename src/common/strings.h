// Small string helpers used across the library (gcc 12 lacks std::format).

#ifndef PTLDB_COMMON_STRINGS_H_
#define PTLDB_COMMON_STRINGS_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace ptldb {

namespace internal {
inline void StrAppendImpl(std::ostringstream&) {}
template <typename T, typename... Rest>
void StrAppendImpl(std::ostringstream& os, const T& head, const Rest&... rest) {
  os << head;
  StrAppendImpl(os, rest...);
}
}  // namespace internal

/// Concatenates the streamable arguments into a string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  internal::StrAppendImpl(os, args...);
  return os.str();
}

/// Joins the elements of `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Strict base-10 integer parse: the entire string must be a valid (optionally
/// signed) decimal number with no surrounding whitespace. Unlike `atol`, junk
/// input is an InvalidArgument error rather than silently 0.
Result<int64_t> ParseInt64(std::string_view s);

}  // namespace ptldb

#endif  // PTLDB_COMMON_STRINGS_H_
