// Minimal JSON document model: an ordered tree of values with a compact
// writer and a strict recursive-descent parser.
//
// This is deliberately tiny — just enough for the observability surfaces that
// need *structured* (not string-pasted) JSON: the firing-provenance trace
// exporter (trace.h) writes documents, `TraceReplay` and the golden
// `stats json` tests parse them back. Numbers keep their original textual
// rendering (`raw`), so int64 values round-trip without double-precision
// loss — the trace format relies on this to replay query values exactly.

#ifndef PTLDB_COMMON_JSON_H_
#define PTLDB_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace ptldb::json {

class Json {
 public:
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;

  // ---- Builders ----

  static Json Null() { return Json(); }
  static Json Bool(bool b) {
    Json j;
    j.kind_ = Kind::kBool;
    j.bool_ = b;
    return j;
  }
  static Json Int(int64_t v);
  static Json UInt(uint64_t v);
  static Json Real(double v);
  /// A pre-rendered numeric literal (kept verbatim by Dump).
  static Json RawNumber(std::string text);
  static Json Str(std::string s) {
    Json j;
    j.kind_ = Kind::kString;
    j.str_ = std::move(s);
    return j;
  }
  static Json Array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  /// Appends to an array (PTLDB_CHECKs the kind); returns *this for chaining.
  Json& Add(Json v);
  /// Sets an object field, preserving insertion order; an existing key is
  /// overwritten in place. Returns *this for chaining.
  Json& Set(std::string key, Json v);

  // ---- Introspection ----

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  double AsDouble() const;
  /// Strict: errors unless the raw literal is an integer in int64 range.
  Result<int64_t> AsInt64() const;
  const std::string& AsString() const { return str_; }
  /// The raw numeric literal text.
  const std::string& raw_number() const { return str_; }

  const std::vector<Json>& items() const { return items_; }
  const std::vector<std::pair<std::string, Json>>& fields() const {
    return fields_;
  }
  size_t size() const {
    return kind_ == Kind::kObject ? fields_.size() : items_.size();
  }

  /// Object lookup; nullptr when absent or not an object.
  const Json* Find(std::string_view key) const;
  /// Object lookup that errors with the key name when absent.
  Result<const Json*> Get(std::string_view key) const;

  // ---- Serialization ----

  /// Compact single-line rendering (keys in insertion order).
  std::string Dump() const;
  void DumpTo(std::string* out) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::string str_;  // kString payload or kNumber raw literal
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> fields_;
};

/// Parses one JSON document; trailing non-whitespace input is an error.
Result<Json> Parse(std::string_view text);

/// JSON string escaping (quotes not included).
std::string Escape(std::string_view s);

}  // namespace ptldb::json

#endif  // PTLDB_COMMON_JSON_H_
