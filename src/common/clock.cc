#include "common/clock.h"

#include <chrono>

namespace ptldb {

Timestamp SystemClock::Now() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace ptldb
