// Firing-provenance tracing: bounded, per-thread span recording plus a ring
// of per-update provenance records.
//
// Theorem 1 says the engine fires after update i iff the PTL condition holds
// at state s_i; this module is the runtime's *account* of that decision. Two
// kinds of data are recorded:
//
//   * Spans — timed (or instant) intervals tagged with a phase kind: the
//     engine's gather/step/merge/action phases, per-shard rule steps under
//     the thread pool, one instant span per F_{g,i} recurrence flip inside
//     the incremental evaluator, IC probes, and valid-time monitor replays.
//     Exported in Chrome trace_event format for flame-graph profiling.
//   * Update records — one JSON document per processed system state,
//     embedding each stepped rule instance's snapshot (events + query-slot
//     values, losslessly encoded), its satisfaction verdict, and — when it
//     fired — the witness chain extracted from the evaluator's retained
//     recurrences. Exported as JSONL; `rules::TraceReplay` re-evaluates a
//     dump against the naive (§4.2-literal) evaluator as a differential
//     check.
//
// Cost model (mirrors metrics.h): components cache a `Recorder*` that is null
// when tracing is detached, and additionally check `enabled()` (one relaxed
// atomic load) so an attached-but-disabled recorder stays off the hot path.
// Span recording is per-thread: each thread owns a fixed-capacity ring buffer
// guarded by its own (uncontended) mutex, so shards never serialize against
// each other; overflow overwrites the oldest spans and is counted. Update
// records live in a bounded deque written only from the engine's serial
// merge path. Exports should run while the traced components are quiescent.

#ifndef PTLDB_COMMON_TRACE_H_
#define PTLDB_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "common/value.h"

namespace ptldb::trace {

enum class SpanKind : uint8_t {
  kUpdate,      // one whole ProcessState dispatch
  kGather,      // serial snapshot capture
  kStep,        // sharded evaluator stepping (the parallel phase)
  kMerge,       // serial canonical-order merge
  kAction,      // one rule action
  kRuleStep,    // one instance's evaluator Step (per shard)
  kRecurrence,  // instant: one F_{g,i} recurrence flip
  kIcProbe,     // commit-attempt constraint probing
  kFlush,       // batched-mode drain
  kVtReplay,    // valid-time tentative-monitor suffix replay
  kVtDefinite,  // valid-time definite-monitor frontier advance
  kServerBatch,   // one server ingest batch: dequeue -> last ack
  kServerApply,   // the batch's request-apply phase (all requests)
  kServerCommit,  // the batch's durability barrier (group-commit fsync)
  kServerAck,     // the batch's response-write phase
};

const char* SpanKindName(SpanKind kind);

struct Span {
  SpanKind kind = SpanKind::kUpdate;
  bool instant = false;   // zero-duration marker (ph:"i" in Chrome format)
  uint32_t tid = 0;       // thread-log index, assigned by the recorder
  uint64_t start_ns = 0;  // steady-clock origin
  uint64_t dur_ns = 0;
  int64_t seq = -1;       // system-state sequence number when known
  std::string name;       // rule / monitor / subformula
  std::string detail;     // node flip, bindings, counts
};

class Recorder {
 public:
  explicit Recorder(size_t span_capacity_per_thread = 1 << 14,
                    size_t update_capacity = 1 << 12);

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Toggles recording. Components keep their cached pointer either way and
  /// re-check `enabled()` per dispatch, so flipping is cheap and immediate.
  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records one span from any thread (per-thread ring; oldest overwritten).
  void RecordSpan(Span span);

  /// Records one per-update provenance document (serial writers only).
  void RecordUpdate(json::Json record);

  /// Drops all recorded data (rings stay allocated).
  void Clear();

  // ---- Accounting ----

  size_t span_count() const;
  uint64_t dropped_spans() const;
  size_t update_count() const;
  uint64_t dropped_updates() const;

  // ---- Export (call while traced components are quiescent) ----

  /// One JSON document per line: a header (counts, drops), then every
  /// retained update record in recording order.
  std::string ToJsonl() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}): load into
  /// chrome://tracing or Perfetto for a flame graph of the parallel phases.
  std::string ToChromeTrace() const;

  Status DumpJsonl(const std::string& path) const;
  Status DumpChromeTrace(const std::string& path) const;

  /// Steady-clock nanoseconds (span timestamps' origin).
  static uint64_t NowNs();

 private:
  struct ThreadLog {
    explicit ThreadLog(size_t capacity) { ring.reserve(capacity); }
    mutable std::mutex mu;  // uncontended: one writing thread per log
    std::vector<Span> ring;
    size_t capacity = 0;
    size_t next = 0;        // ring write cursor once full
    uint64_t total = 0;     // spans ever recorded
    uint32_t tid_hint = 0;  // stable per-log id used as the exported tid
  };

  ThreadLog* GetThreadLog();
  std::vector<Span> SortedSpans() const;

  std::atomic<bool> enabled_{false};
  const uint64_t id_;  // distinguishes recorders for the thread-local cache
  size_t span_cap_;
  size_t update_cap_;

  mutable std::mutex logs_mu_;  // guards the log list, not per-log rings
  std::vector<std::unique_ptr<ThreadLog>> logs_;

  mutable std::mutex updates_mu_;
  std::deque<json::Json> updates_;
  uint64_t updates_total_ = 0;
};

/// RAII span: records on destruction; no clock is read when the recorder is
/// null or disabled (capture the decision once at construction).
class ScopedSpan {
 public:
  ScopedSpan(Recorder* recorder, SpanKind kind, std::string name,
             int64_t seq = -1)
      : recorder_(recorder != nullptr && recorder->enabled() ? recorder
                                                             : nullptr) {
    if (recorder_ != nullptr) {
      span_.kind = kind;
      span_.name = std::move(name);
      span_.seq = seq;
      span_.start_ns = Recorder::NowNs();
    }
  }
  ~ScopedSpan() {
    if (recorder_ != nullptr) {
      span_.dur_ns = Recorder::NowNs() - span_.start_ns;
      recorder_->RecordSpan(std::move(span_));
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return recorder_ != nullptr; }
  void set_detail(std::string detail) {
    if (recorder_ != nullptr) span_.detail = std::move(detail);
  }

 private:
  Recorder* recorder_;
  Span span_;
};

// ---- Value encoding ---------------------------------------------------------

/// Lossless JSON encoding of a ptldb::Value, distinguishing int from double
/// (JSON numbers alone cannot): null/bool/string map directly; Int(42) ->
/// {"i":"42"}, Real(0.5) -> {"r":"0.5"} with %.17g rendering.
json::Json EncodeValue(const Value& v);
Result<Value> DecodeValue(const json::Json& j);

json::Json EncodeValues(const std::vector<Value>& values);
Result<std::vector<Value>> DecodeValues(const json::Json& j);

}  // namespace ptldb::trace

#endif  // PTLDB_COMMON_TRACE_H_
