#include "common/value.h"

#include <cmath>
#include <sstream>

namespace ptldb {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return "BOOL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

namespace {

Status IncomparableError(const Value& a, const Value& b) {
  return Status::TypeMismatch(std::string("cannot compare ") +
                              ValueTypeToString(a.type()) + " with " +
                              ValueTypeToString(b.type()));
}

Status NonNumericError(const char* op, const Value& a, const Value& b) {
  return Status::TypeMismatch(std::string(op) + " requires numeric operands, got " +
                              ValueTypeToString(a.type()) + " and " +
                              ValueTypeToString(b.type()));
}

}  // namespace

Result<int> Value::Compare(const Value& a, const Value& b) {
  // Null orders before everything and equals only null.
  if (a.is_null() || b.is_null()) {
    if (a.is_null() && b.is_null()) return 0;
    return a.is_null() ? -1 : 1;
  }
  if (a.is_numeric() && b.is_numeric()) {
    if (a.is_int() && b.is_int()) {
      int64_t x = a.AsInt(), y = b.AsInt();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    double x = a.AsDouble(), y = b.AsDouble();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a.type() != b.type()) return IncomparableError(a, b);
  switch (a.type()) {
    case ValueType::kBool: {
      int x = a.AsBool() ? 1 : 0, y = b.AsBool() ? 1 : 0;
      return x - y;
    }
    case ValueType::kString: {
      int c = a.AsString().compare(b.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return IncomparableError(a, b);
  }
}

namespace {

// Shared shape of Add/Sub/Mul: coerce to double unless both are ints.
template <typename IntOp, typename DoubleOp>
Result<Value> NumericBinary(const char* name, const Value& a, const Value& b,
                            IntOp int_op, DoubleOp double_op) {
  if (!a.is_numeric() || !b.is_numeric()) return NonNumericError(name, a, b);
  if (a.is_int() && b.is_int()) return Value::Int(int_op(a.AsInt(), b.AsInt()));
  return Value::Real(double_op(a.AsDouble(), b.AsDouble()));
}

}  // namespace

Result<Value> Value::Add(const Value& a, const Value& b) {
  if (a.is_string() && b.is_string()) return Str(a.AsString() + b.AsString());
  return NumericBinary(
      "+", a, b, [](int64_t x, int64_t y) { return x + y; },
      [](double x, double y) { return x + y; });
}

Result<Value> Value::Sub(const Value& a, const Value& b) {
  return NumericBinary(
      "-", a, b, [](int64_t x, int64_t y) { return x - y; },
      [](double x, double y) { return x - y; });
}

Result<Value> Value::Mul(const Value& a, const Value& b) {
  return NumericBinary(
      "*", a, b, [](int64_t x, int64_t y) { return x * y; },
      [](double x, double y) { return x * y; });
}

Result<Value> Value::Div(const Value& a, const Value& b) {
  if (!a.is_numeric() || !b.is_numeric()) return NonNumericError("/", a, b);
  if (a.is_int() && b.is_int()) {
    if (b.AsInt() == 0) return Status::InvalidArgument("integer division by zero");
    return Int(a.AsInt() / b.AsInt());
  }
  if (b.AsDouble() == 0.0) return Status::InvalidArgument("division by zero");
  return Real(a.AsDouble() / b.AsDouble());
}

Result<Value> Value::Mod(const Value& a, const Value& b) {
  if (!a.is_int() || !b.is_int()) {
    return Status::TypeMismatch("mod requires integer operands");
  }
  if (b.AsInt() == 0) return Status::InvalidArgument("mod by zero");
  return Int(a.AsInt() % b.AsInt());
}

Result<Value> Value::Neg(const Value& a) {
  if (a.is_int()) return Int(-a.AsInt());
  if (a.is_double()) return Real(-a.AsDoubleExact());
  return Status::TypeMismatch(std::string("unary - requires numeric operand, got ") +
                              ValueTypeToString(a.type()));
}

size_t Value::Hash() const {
  size_t seed = static_cast<size_t>(type());
  switch (type()) {
    case ValueType::kNull:
      return HashCombine(seed, 0);
    case ValueType::kBool:
      return HashCombine(seed, AsBool() ? 1 : 0);
    case ValueType::kInt64:
      return HashCombine(seed, std::hash<int64_t>{}(AsInt()));
    case ValueType::kDouble:
      return HashCombine(seed, std::hash<double>{}(AsDoubleExact()));
    case ValueType::kString:
      return HashCombine(seed, std::hash<std::string>{}(AsString()));
  }
  return seed;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kInt64:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      std::ostringstream os;
      os << AsDoubleExact();
      return os.str();
    }
    case ValueType::kString:
      return "\"" + AsString() + "\"";
  }
  return "?";
}

}  // namespace ptldb
