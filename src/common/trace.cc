#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/strings.h"

namespace ptldb::trace {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kUpdate:
      return "update";
    case SpanKind::kGather:
      return "gather";
    case SpanKind::kStep:
      return "step";
    case SpanKind::kMerge:
      return "merge";
    case SpanKind::kAction:
      return "action";
    case SpanKind::kRuleStep:
      return "rule_step";
    case SpanKind::kRecurrence:
      return "recurrence";
    case SpanKind::kIcProbe:
      return "ic_probe";
    case SpanKind::kFlush:
      return "flush";
    case SpanKind::kVtReplay:
      return "vt_replay";
    case SpanKind::kVtDefinite:
      return "vt_definite";
    case SpanKind::kServerBatch:
      return "server_batch";
    case SpanKind::kServerApply:
      return "server_apply";
    case SpanKind::kServerCommit:
      return "server_commit";
    case SpanKind::kServerAck:
      return "server_ack";
  }
  return "?";
}

uint64_t Recorder::NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {
std::atomic<uint64_t> g_next_recorder_id{1};
}  // namespace

Recorder::Recorder(size_t span_capacity_per_thread, size_t update_capacity)
    : id_(g_next_recorder_id.fetch_add(1)),
      span_cap_(span_capacity_per_thread == 0 ? 1 : span_capacity_per_thread),
      update_cap_(update_capacity == 0 ? 1 : update_capacity) {}

Recorder::ThreadLog* Recorder::GetThreadLog() {
  // Single-entry cache: the common case is one recorder per process, so a
  // pool thread resolves its log with two thread-local reads. A miss (first
  // use, or a different recorder took the slot) registers a fresh log under
  // the list mutex; the recorder id keys the cache so a recorder reallocated
  // at the same address can never produce a false hit.
  thread_local uint64_t cached_id = 0;
  thread_local ThreadLog* cached_log = nullptr;
  if (cached_id == id_ && cached_log != nullptr) return cached_log;
  auto log = std::make_unique<ThreadLog>(span_cap_);
  log->capacity = span_cap_;
  ThreadLog* ptr = log.get();
  {
    std::lock_guard<std::mutex> lock(logs_mu_);
    ptr->tid_hint = static_cast<uint32_t>(logs_.size());
    logs_.push_back(std::move(log));
  }
  cached_id = id_;
  cached_log = ptr;
  return ptr;
}

void Recorder::RecordSpan(Span span) {
  ThreadLog* log = GetThreadLog();
  std::lock_guard<std::mutex> lock(log->mu);
  span.tid = log->tid_hint;
  ++log->total;
  if (log->ring.size() < log->capacity) {
    log->ring.push_back(std::move(span));
    return;
  }
  // Ring full: overwrite the oldest.
  log->ring[log->next] = std::move(span);
  log->next = (log->next + 1) % log->capacity;
}

void Recorder::RecordUpdate(json::Json record) {
  std::lock_guard<std::mutex> lock(updates_mu_);
  ++updates_total_;
  updates_.push_back(std::move(record));
  while (updates_.size() > update_cap_) updates_.pop_front();
}

void Recorder::Clear() {
  {
    std::lock_guard<std::mutex> lock(logs_mu_);
    for (auto& log : logs_) {
      std::lock_guard<std::mutex> ll(log->mu);
      log->ring.clear();
      log->next = 0;
      log->total = 0;
    }
  }
  std::lock_guard<std::mutex> lock(updates_mu_);
  updates_.clear();
  updates_total_ = 0;
}

size_t Recorder::span_count() const {
  size_t n = 0;
  std::lock_guard<std::mutex> lock(logs_mu_);
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> ll(log->mu);
    n += log->ring.size();
  }
  return n;
}

uint64_t Recorder::dropped_spans() const {
  uint64_t dropped = 0;
  std::lock_guard<std::mutex> lock(logs_mu_);
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> ll(log->mu);
    dropped += log->total - log->ring.size();
  }
  return dropped;
}

size_t Recorder::update_count() const {
  std::lock_guard<std::mutex> lock(updates_mu_);
  return updates_.size();
}

uint64_t Recorder::dropped_updates() const {
  std::lock_guard<std::mutex> lock(updates_mu_);
  return updates_total_ - updates_.size();
}

std::vector<Span> Recorder::SortedSpans() const {
  std::vector<Span> out;
  {
    std::lock_guard<std::mutex> lock(logs_mu_);
    for (const auto& log : logs_) {
      std::lock_guard<std::mutex> ll(log->mu);
      // Ring order: [next, end) is the older half once wrapped.
      for (size_t i = 0; i < log->ring.size(); ++i) {
        out.push_back(log->ring[(log->next + i) % log->ring.size()]);
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Span& a, const Span& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

std::string Recorder::ToJsonl() const {
  std::string out;
  json::Json header = json::Json::Object();
  header.Set("kind", json::Json::Str("trace_header"));
  header.Set("updates", json::Json::UInt(update_count()));
  header.Set("dropped_updates", json::Json::UInt(dropped_updates()));
  header.Set("spans", json::Json::UInt(span_count()));
  header.Set("dropped_spans", json::Json::UInt(dropped_spans()));
  header.DumpTo(&out);
  out += '\n';
  std::lock_guard<std::mutex> lock(updates_mu_);
  for (const json::Json& record : updates_) {
    record.DumpTo(&out);
    out += '\n';
  }
  return out;
}

std::string Recorder::ToChromeTrace() const {
  json::Json events = json::Json::Array();
  for (const Span& s : SortedSpans()) {
    json::Json e = json::Json::Object();
    e.Set("name", json::Json::Str(s.name.empty() ? SpanKindName(s.kind)
                                                 : s.name));
    e.Set("cat", json::Json::Str(SpanKindName(s.kind)));
    e.Set("ph", json::Json::Str(s.instant ? "i" : "X"));
    // trace_event timestamps are microseconds (doubles are fine: the steady
    // clock origin keeps them small relative to double precision).
    e.Set("ts", json::Json::Real(static_cast<double>(s.start_ns) / 1000.0));
    if (!s.instant) {
      e.Set("dur", json::Json::Real(static_cast<double>(s.dur_ns) / 1000.0));
    } else {
      e.Set("s", json::Json::Str("t"));
    }
    e.Set("pid", json::Json::Int(1));
    e.Set("tid", json::Json::Int(static_cast<int64_t>(s.tid)));
    json::Json args = json::Json::Object();
    if (s.seq >= 0) args.Set("seq", json::Json::Int(s.seq));
    if (!s.detail.empty()) args.Set("detail", json::Json::Str(s.detail));
    if (args.size() > 0) e.Set("args", std::move(args));
    events.Add(std::move(e));
  }
  json::Json doc = json::Json::Object();
  doc.Set("traceEvents", std::move(events));
  doc.Set("displayTimeUnit", json::Json::Str("ms"));
  return doc.Dump();
}

namespace {
Status WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument(StrCat("cannot open '", path,
                                          "' for writing"));
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  int rc = std::fclose(f);
  if (written != content.size() || rc != 0) {
    return Status::Internal(StrCat("short write to '", path, "'"));
  }
  return Status::OK();
}
}  // namespace

Status Recorder::DumpJsonl(const std::string& path) const {
  return WriteFile(path, ToJsonl());
}

Status Recorder::DumpChromeTrace(const std::string& path) const {
  return WriteFile(path, ToChromeTrace());
}

// ---- Value encoding ---------------------------------------------------------

json::Json EncodeValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return json::Json::Null();
    case ValueType::kBool:
      return json::Json::Bool(v.AsBool());
    case ValueType::kString:
      return json::Json::Str(v.AsString());
    case ValueType::kInt64: {
      json::Json j = json::Json::Object();
      j.Set("i", json::Json::Str(std::to_string(v.AsInt())));
      return j;
    }
    case ValueType::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", v.AsDoubleExact());
      json::Json j = json::Json::Object();
      j.Set("r", json::Json::Str(buf));
      return j;
    }
  }
  return json::Json::Null();
}

Result<Value> DecodeValue(const json::Json& j) {
  switch (j.kind()) {
    case json::Json::Kind::kNull:
      return Value::Null();
    case json::Json::Kind::kBool:
      return Value::Bool(j.AsBool());
    case json::Json::Kind::kString:
      return Value::Str(j.AsString());
    case json::Json::Kind::kObject: {
      if (const json::Json* i = j.Find("i"); i != nullptr) {
        PTLDB_ASSIGN_OR_RETURN(int64_t v, ParseInt64(i->AsString()));
        return Value::Int(v);
      }
      if (const json::Json* r = j.Find("r"); r != nullptr) {
        char* end = nullptr;
        double v = std::strtod(r->AsString().c_str(), &end);
        if (end == nullptr || *end != '\0') {
          return Status::ParseError(
              StrCat("bad real literal '", r->AsString(), "'"));
        }
        return Value::Real(v);
      }
      return Status::ParseError("value object has neither \"i\" nor \"r\"");
    }
    default:
      return Status::ParseError("JSON value does not encode a ptldb::Value");
  }
}

json::Json EncodeValues(const std::vector<Value>& values) {
  json::Json arr = json::Json::Array();
  for (const Value& v : values) arr.Add(EncodeValue(v));
  return arr;
}

Result<std::vector<Value>> DecodeValues(const json::Json& j) {
  if (!j.is_array()) return Status::ParseError("expected a JSON array");
  std::vector<Value> out;
  out.reserve(j.items().size());
  for (const json::Json& item : j.items()) {
    PTLDB_ASSIGN_OR_RETURN(Value v, DecodeValue(item));
    out.push_back(std::move(v));
  }
  return out;
}

}  // namespace ptldb::trace
