#include "common/thread_pool.h"

namespace ptldb {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t workers = num_threads <= 1 ? 0 : num_threads - 1;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    remaining_.store(n, std::memory_order_relaxed);
    ++job_id_;
  }
  work_cv_.notify_all();
  RunTasks();  // the caller is a shard worker too
  // Wait for every index to have executed AND for every worker to have left
  // RunTasks: a worker that merely finished claiming may still be about to
  // read n_/body_, and the next ParallelFor will overwrite them.
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] {
    return remaining_.load(std::memory_order_acquire) == 0 && in_flight_ == 0;
  });
  body_ = nullptr;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_job = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [&] { return stop_ || job_id_ != seen_job; });
    if (stop_) return;
    seen_job = job_id_;
    // A worker that wakes after the job already completed (the caller and the
    // other workers drained it) must not enter RunTasks: the caller may have
    // returned, and the next job's setup would race with our reads.
    if (remaining_.load(std::memory_order_relaxed) == 0) continue;
    ++in_flight_;
    lock.unlock();
    RunTasks();
    lock.lock();
    if (--in_flight_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::RunTasks() {
  while (true) {
    size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n_) return;
    (*body_)(i);
    remaining_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

}  // namespace ptldb
