// A fixed-size thread pool exposing one primitive: a blocking ParallelFor.
//
// The pool exists for the rule engine's sharded evaluation (§8 batched
// invocation parallelized across evaluator shards). Design constraints:
//
//   * The caller participates: ParallelFor(n, body) runs body(0..n-1) across
//     the worker threads *and* the calling thread, and returns only when all
//     indices have completed. A pool of size 1 therefore degenerates to a
//     plain serial loop with no cross-thread traffic at all.
//   * Indices are claimed from a shared atomic counter (work stealing at the
//     granularity of one index), so uneven shard costs balance automatically.
//   * No nesting: ParallelFor must not be called from inside a body. The rule
//     engine guarantees this — actions (which may re-enter the engine) run
//     strictly after the parallel region has completed.
//   * body must not throw. Errors are returned as data (Status captured into
//     per-index slots) and merged by the caller in canonical order, which is
//     how the engine keeps error *reporting* deterministic too.

#ifndef PTLDB_COMMON_THREAD_POOL_H_
#define PTLDB_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ptldb {

class ThreadPool {
 public:
  /// `num_threads` is the total parallelism including the calling thread, so
  /// the pool spawns num_threads - 1 workers. num_threads == 0 is treated
  /// as 1 (fully serial, no workers).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers + the calling thread).
  size_t num_threads() const { return workers_.size() + 1; }

  /// Runs body(i) for every i in [0, n), distributing indices over the
  /// workers and the calling thread; blocks until all n calls returned.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

 private:
  void WorkerLoop();
  void RunTasks();

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  uint64_t job_id_ = 0;  // bumped per ParallelFor; workers wait on it

  // Current job; written under mu_ before the job is announced.
  const std::function<void(size_t)>* body_ = nullptr;
  size_t n_ = 0;
  size_t in_flight_ = 0;  // workers currently inside RunTasks; guarded by mu_
  std::atomic<size_t> next_{0};
  std::atomic<size_t> remaining_{0};
};

}  // namespace ptldb

#endif  // PTLDB_COMMON_THREAD_POOL_H_
