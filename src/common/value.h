// Dynamically typed values — the scalar domain shared by the database engine,
// the query evaluator, and the PTL condition evaluator.

#ifndef PTLDB_COMMON_VALUE_H_
#define PTLDB_COMMON_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <variant>

#include "common/status.h"

namespace ptldb {

/// Logical timestamps. The paper's model attaches a strictly increasing
/// timestamp to every system state; we represent it as ticks of a `Clock`.
using Timestamp = int64_t;

/// Runtime type tags of a `Value`.
enum class ValueType : uint8_t {
  kNull = 0,
  kBool,
  kInt64,
  kDouble,
  kString,
};

const char* ValueTypeToString(ValueType type);

/// A dynamically typed scalar. Null, bool, 64-bit int, double, or string.
///
/// Numeric comparisons and arithmetic coerce int64 <-> double; all other
/// cross-type operations yield `TypeMismatch`. Null compares equal only to
/// null and orders before everything (SQL-style three-valued logic is *not*
/// used: the paper's logic is two-valued, so null is just a distinct value).
class Value {
 public:
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Rep(b)); }
  static Value Int(int64_t i) { return Value(Rep(i)); }
  static Value Real(double d) { return Value(Rep(d)); }
  static Value Str(std::string s) { return Value(Rep(std::move(s))); }
  static Value Time(Timestamp t) { return Int(t); }

  ValueType type() const {
    return static_cast<ValueType>(rep_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_bool() const { return type() == ValueType::kBool; }
  bool is_int() const { return type() == ValueType::kInt64; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_numeric() const { return is_int() || is_double(); }

  /// Unchecked accessors; the caller must have verified the type.
  bool AsBool() const { return std::get<bool>(rep_); }
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDoubleExact() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  /// Numeric widening: int64 or double -> double. Requires is_numeric().
  double AsDouble() const {
    return is_int() ? static_cast<double>(AsInt()) : AsDoubleExact();
  }

  /// Strict structural equality (no numeric coercion: Int(1) != Real(1.0)).
  bool operator==(const Value& other) const { return rep_ == other.rep_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Three-way comparison with numeric coercion: returns <0, 0, >0.
  /// Errors with TypeMismatch on incomparable types (e.g. string vs int).
  static Result<int> Compare(const Value& a, const Value& b);

  /// Arithmetic with numeric coercion. Division by zero and non-numeric
  /// operands are errors. `Mod` requires integer operands.
  static Result<Value> Add(const Value& a, const Value& b);
  static Result<Value> Sub(const Value& a, const Value& b);
  static Result<Value> Mul(const Value& a, const Value& b);
  static Result<Value> Div(const Value& a, const Value& b);
  static Result<Value> Mod(const Value& a, const Value& b);
  static Result<Value> Neg(const Value& a);

  /// Stable hash consistent with operator== (used by hash indexes and the
  /// evaluator's hash-consing).
  size_t Hash() const;

  /// Deep retained-memory estimate: the in-place representation plus any
  /// heap payload (string bytes). Memory-accounting gates compare runs, so
  /// this uses size(), not capacity(), to stay deterministic across
  /// allocators.
  size_t EstimateBytes() const {
    return sizeof(Value) + (is_string() ? AsString().size() : 0);
  }

  /// Render for diagnostics and result printing, e.g. `"IBM"`, `42`, `3.5`.
  std::string ToString() const;

 private:
  using Rep = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}
  Rep rep_;
};

inline std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Combines a hash into a seed (boost::hash_combine formula).
inline size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace ptldb

#endif  // PTLDB_COMMON_VALUE_H_
