// Assertion macros for invariants that indicate programming errors (as opposed
// to recoverable conditions, which use Status).

#ifndef PTLDB_COMMON_LOGGING_H_
#define PTLDB_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

/// Aborts with a message when `cond` is false. Enabled in all build types:
/// an invariant violation in the rule engine must never be silently ignored.
#define PTLDB_CHECK(cond)                                                   \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "PTLDB_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define PTLDB_CHECK_OK(status_expr)                                         \
  do {                                                                      \
    const ::ptldb::Status _s = (status_expr);                               \
    if (!_s.ok()) {                                                         \
      std::fprintf(stderr, "PTLDB_CHECK_OK failed at %s:%d: %s\n",          \
                   __FILE__, __LINE__, _s.ToString().c_str());              \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#endif  // PTLDB_COMMON_LOGGING_H_
