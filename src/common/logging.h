// Assertion macros for invariants that indicate programming errors (as opposed
// to recoverable conditions, which use Status).

#ifndef PTLDB_COMMON_LOGGING_H_
#define PTLDB_COMMON_LOGGING_H_

#include <cstdlib>
#include <string>

// PTLDB_CHECK_OK consumes a ::ptldb::Status; pull in its definition instead of
// relying on every includer having done so first.
#include "common/status.h"

namespace ptldb {

/// Receives the formatted message of a failed CHECK just before abort().
/// Installed process-wide; the default sink writes to stderr. Long-running
/// frontends (the shell, CI harnesses) install a sink that also persists
/// crash context — e.g. the in-flight trace ring — where a bare stderr line
/// would be lost with the process.
using CheckFailureSink = void (*)(const char* file, int line,
                                  const std::string& message);

/// Replaces the sink; passing nullptr restores the stderr default. Returns
/// the previous sink so callers can chain. Not thread-safe against concurrent
/// CHECK failures (the process is about to abort anyway).
CheckFailureSink SetCheckFailureSink(CheckFailureSink sink);

namespace internal {
/// Runs the installed sink, then aborts. Never returns.
[[noreturn]] void CheckFailed(const char* file, int line,
                              const std::string& message);
}  // namespace internal

}  // namespace ptldb

/// Aborts with a message when `cond` is false. Enabled in all build types:
/// an invariant violation in the rule engine must never be silently ignored.
#define PTLDB_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::ptldb::internal::CheckFailed(__FILE__, __LINE__,               \
                                     "PTLDB_CHECK failed: " #cond);    \
    }                                                                  \
  } while (0)

#define PTLDB_CHECK_OK(status_expr)                                    \
  do {                                                                 \
    const ::ptldb::Status _s = (status_expr);                          \
    if (!_s.ok()) {                                                    \
      ::ptldb::internal::CheckFailed(                                  \
          __FILE__, __LINE__,                                          \
          "PTLDB_CHECK_OK failed: " + _s.ToString());                  \
    }                                                                  \
  } while (0)

#endif  // PTLDB_COMMON_LOGGING_H_
