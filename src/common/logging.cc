#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace ptldb {

namespace {

void DefaultSink(const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "%s:%d: %s\n", file, line, message.c_str());
  std::fflush(stderr);
}

std::atomic<CheckFailureSink> g_sink{&DefaultSink};

}  // namespace

CheckFailureSink SetCheckFailureSink(CheckFailureSink sink) {
  if (sink == nullptr) sink = &DefaultSink;
  return g_sink.exchange(sink);
}

namespace internal {

void CheckFailed(const char* file, int line, const std::string& message) {
  g_sink.load()(file, line, message);
  std::abort();
}

}  // namespace internal

}  // namespace ptldb
