// Lightweight metrics registry for engine-wide observability.
//
// Production active-rule systems make rule execution inspectable first-class;
// here every layer (RuleEngine, IncrementalEvaluator, the aux stores, the
// query path, the ingestion server) can publish counters, gauges, and latency
// histograms into one named registry, snapshot as JSON by `Metrics::ToJson()`
// (the `stats` shell command, the benches' `--metrics-out` flag, and the
// server's STATS request) or as Prometheus-style text exposition
// (`ToPrometheus()`, the server's scrape format).
//
// Design constraints:
//
//   * Near-zero overhead when unset. Components hold plain pointers to
//     individual instruments (null when no registry is attached) and guard
//     every update with a single branch; no instrument lookup, no clock read,
//     no allocation happens on the hot path unless metrics are wired.
//   * Instruments are owned by the registry and have stable addresses for its
//     lifetime, so cached pointers never dangle while the registry lives.
//   * Updates are atomic (relaxed): the engine's sharded step phase may bump
//     counters from pool threads. Snapshots are not linearizable across
//     instruments — a snapshot reads each instrument atomically but the set
//     is only consistent when taken from the engine's dispatch thread.
//   * Expensive-to-maintain values (live node counts, per-rule aggregates)
//     are not updated eagerly: a component registers a *provider* callback
//     that refreshes its gauges only when a snapshot is taken.
//   * Snapshots are plain values (MetricsSnapshot). Two snapshots diff into a
//     delta (`DeltaSince`) so a poller — the server's STATS_DELTA request,
//     `ptldb-top` — sees rates and per-window latency distributions instead
//     of lifetime aggregates.

#ifndef PTLDB_COMMON_METRICS_H_
#define PTLDB_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ptldb {

class Metrics;

/// Point-in-time copy of one histogram's state. Also the unit of histogram
/// arithmetic: deltas subtract counts/sums/buckets bucket-wise, and the
/// quantile estimator works identically on totals and deltas.
struct HistogramSnapshot {
  static constexpr size_t kBuckets = 40;  // mirrors Metrics::Histogram

  uint64_t count = 0;
  uint64_t sum_ns = 0;
  uint64_t max_ns = 0;  // lifetime max; not diffable (kept verbatim in deltas)
  std::array<uint64_t, kBuckets> buckets = {};

  double mean_ns() const;
  /// Upper bucket bound of the q-quantile (q in [0,1]); 0 when empty.
  uint64_t QuantileUpperBoundNs(double q) const;
};

/// A consistent-enough copy of every instrument, taken under the registry
/// lock after running providers. Serializable as JSON or Prometheus text and
/// subtractable for delta polling.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// The change since `earlier`: counters and histogram counts/sums/buckets
  /// subtract (clamped at zero, so a registry swap or counter reset yields an
  /// empty delta rather than underflow); gauges keep their *current* value
  /// (a gauge is a level, not a flow); histogram max_ns stays the lifetime
  /// max. Instruments absent from `earlier` keep their full value.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& earlier) const;

  /// Serializes as
  ///   {"counters": {...}, "gauges": {...}, "histograms": {name: {count, ...}}}
  /// with keys sorted, so successive snapshots diff cleanly. Byte-identical
  /// to the historical Metrics::ToJson() format.
  std::string ToJson() const;

  /// Prometheus text exposition (one scrape format for external collectors):
  /// names are sanitized to [a-zA-Z0-9_] and prefixed "ptldb_", counters and
  /// gauges emit one sample each under a `# TYPE` header, histograms emit
  /// cumulative `_bucket{le="..."}` samples over the power-of-two bounds plus
  /// `_sum` and `_count`.
  std::string ToPrometheus() const;
};

class Metrics {
 public:
  /// Monotonically increasing event count.
  class Counter {
   public:
    void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
    uint64_t Get() const { return v_.load(std::memory_order_relaxed); }

   private:
    std::atomic<uint64_t> v_{0};
  };

  /// Point-in-time signed value (queue depths, node counts, ...).
  class Gauge {
   public:
    void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
    void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
    int64_t Get() const { return v_.load(std::memory_order_relaxed); }

   private:
    std::atomic<int64_t> v_{0};
  };

  /// Latency histogram over nanoseconds: power-of-two buckets (bucket i holds
  /// observations with bit_width(ns) == i), plus exact count/sum/max.
  class Histogram {
   public:
    static constexpr size_t kBuckets = HistogramSnapshot::kBuckets;

    void Observe(uint64_t ns);

    uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    uint64_t sum_ns() const { return sum_.load(std::memory_order_relaxed); }
    uint64_t max_ns() const { return max_.load(std::memory_order_relaxed); }
    double mean_ns() const;
    /// Upper bucket bound of the q-quantile (q in [0,1]); 0 when empty.
    uint64_t QuantileUpperBoundNs(double q) const;

    HistogramSnapshot Snapshot() const;

   private:
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
    std::atomic<uint64_t> max_{0};
    std::atomic<uint64_t> buckets_[kBuckets] = {};
  };

  /// Finds or creates the named instrument. The returned reference is stable
  /// for the registry's lifetime. Name collisions across kinds are an error
  /// reported by returning a dedicated "invalid" instrument that still works
  /// but is serialized under a "!conflict." prefix, keeping the hot path
  /// assertion-free.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// A provider refreshes derived gauges right before a snapshot (it runs on
  /// the thread calling TakeSnapshot/ToJson and may call gauge()/counter()
  /// freely).
  using ProviderFn = std::function<void(Metrics&)>;
  uint64_t AddProvider(ProviderFn fn);
  void RemoveProvider(uint64_t id);

  /// Runs every provider, then copies all instruments into a plain value.
  MetricsSnapshot TakeSnapshot();

  /// TakeSnapshot().ToJson() — the `stats json` / STATS wire format.
  std::string ToJson();

  /// TakeSnapshot().ToPrometheus() — the scrape exposition format.
  std::string ToPrometheus();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<uint64_t, ProviderFn> providers_;
  uint64_t next_provider_id_ = 1;
};

namespace internal {
/// Counts every steady-clock read ScopedTimer performs. The increment rides
/// only on paths that already pay a clock read (one relaxed add next to a
/// ~20ns vDSO call); its purpose is the regression test pinning that the
/// null fast path stays clock-free on both the constructor and destructor
/// ends.
extern std::atomic<uint64_t> scoped_timer_clock_reads;

inline uint64_t TimerNowNs() {
  scoped_timer_clock_reads.fetch_add(1, std::memory_order_relaxed);
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace internal

/// Times a scope into a histogram. The null fast path (detached metrics) is
/// one branch on each end: no clock read, no allocation, no atomic traffic —
/// metrics_test pins this via internal::scoped_timer_clock_reads.
class ScopedTimer {
 public:
  explicit ScopedTimer(Metrics::Histogram* h)
      : h_(h), start_ns_(h == nullptr ? 0 : internal::TimerNowNs()) {}
  ~ScopedTimer() {
    if (h_ != nullptr) h_->Observe(internal::TimerNowNs() - start_ns_);
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Metrics::Histogram* h_;
  uint64_t start_ns_;
};

/// Null-safe increment helpers for cached instrument pointers.
inline void MetricAdd(Metrics::Counter* c, uint64_t n = 1) {
  if (c != nullptr) c->Add(n);
}
inline void MetricSet(Metrics::Gauge* g, int64_t v) {
  if (g != nullptr) g->Set(v);
}
inline void MetricObserve(Metrics::Histogram* h, uint64_t v) {
  if (h != nullptr) h->Observe(v);
}

}  // namespace ptldb

#endif  // PTLDB_COMMON_METRICS_H_
