// Lightweight metrics registry for engine-wide observability.
//
// Production active-rule systems make rule execution inspectable first-class;
// here every layer (RuleEngine, IncrementalEvaluator, the aux stores, the
// query path) can publish counters, gauges, and latency histograms into one
// named registry, snapshot as JSON by `Metrics::ToJson()` (the `stats` shell
// command and the benches' `--metrics-out` flag).
//
// Design constraints:
//
//   * Near-zero overhead when unset. Components hold plain pointers to
//     individual instruments (null when no registry is attached) and guard
//     every update with a single branch; no instrument lookup, no clock read,
//     no allocation happens on the hot path unless metrics are wired.
//   * Instruments are owned by the registry and have stable addresses for its
//     lifetime, so cached pointers never dangle while the registry lives.
//   * Updates are atomic (relaxed): the engine's sharded step phase may bump
//     counters from pool threads. Snapshots are not linearizable across
//     instruments — ToJson reads each instrument atomically but the set is
//     only consistent when taken from the engine's dispatch thread.
//   * Expensive-to-maintain values (live node counts, per-rule aggregates)
//     are not updated eagerly: a component registers a *provider* callback
//     that refreshes its gauges only when a snapshot is taken.

#ifndef PTLDB_COMMON_METRICS_H_
#define PTLDB_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ptldb {

class Metrics {
 public:
  /// Monotonically increasing event count.
  class Counter {
   public:
    void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
    uint64_t Get() const { return v_.load(std::memory_order_relaxed); }

   private:
    std::atomic<uint64_t> v_{0};
  };

  /// Point-in-time signed value (queue depths, node counts, ...).
  class Gauge {
   public:
    void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
    void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
    int64_t Get() const { return v_.load(std::memory_order_relaxed); }

   private:
    std::atomic<int64_t> v_{0};
  };

  /// Latency histogram over nanoseconds: power-of-two buckets (bucket i holds
  /// observations with bit_width(ns) == i), plus exact count/sum/max.
  class Histogram {
   public:
    static constexpr size_t kBuckets = 40;  // 2^39 ns ~ 9 minutes

    void Observe(uint64_t ns);

    uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    uint64_t sum_ns() const { return sum_.load(std::memory_order_relaxed); }
    uint64_t max_ns() const { return max_.load(std::memory_order_relaxed); }
    double mean_ns() const;
    /// Upper bucket bound of the q-quantile (q in [0,1]); 0 when empty.
    uint64_t QuantileUpperBoundNs(double q) const;

   private:
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
    std::atomic<uint64_t> max_{0};
    std::atomic<uint64_t> buckets_[kBuckets] = {};
  };

  /// Finds or creates the named instrument. The returned reference is stable
  /// for the registry's lifetime. Name collisions across kinds are an error
  /// reported by returning a dedicated "invalid" instrument that still works
  /// but is serialized under a "!conflict." prefix, keeping the hot path
  /// assertion-free.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// A provider refreshes derived gauges right before a snapshot (it runs on
  /// the thread calling ToJson and may call gauge()/counter() freely).
  using ProviderFn = std::function<void(Metrics&)>;
  uint64_t AddProvider(ProviderFn fn);
  void RemoveProvider(uint64_t id);

  /// JSON snapshot: runs every provider, then serializes all instruments as
  ///   {"counters": {...}, "gauges": {...}, "histograms": {name: {count, ...}}}
  /// with keys sorted, so successive snapshots diff cleanly.
  std::string ToJson();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<uint64_t, ProviderFn> providers_;
  uint64_t next_provider_id_ = 1;
};

/// Times a scope into a histogram; no clock is read when `h` is null.
class ScopedTimer {
 public:
  explicit ScopedTimer(Metrics::Histogram* h) : h_(h) {
    if (h_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (h_ != nullptr) {
      auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_);
      h_->Observe(static_cast<uint64_t>(ns.count()));
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Metrics::Histogram* h_;
  std::chrono::steady_clock::time_point start_;
};

/// Null-safe increment helpers for cached instrument pointers.
inline void MetricAdd(Metrics::Counter* c, uint64_t n = 1) {
  if (c != nullptr) c->Add(n);
}
inline void MetricSet(Metrics::Gauge* g, int64_t v) {
  if (g != nullptr) g->Set(v);
}

}  // namespace ptldb

#endif  // PTLDB_COMMON_METRICS_H_
