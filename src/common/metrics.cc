#include "common/metrics.h"

#include <bit>
#include <cstdio>
#include <sstream>

namespace ptldb {

namespace internal {
std::atomic<uint64_t> scoped_timer_clock_reads{0};
}  // namespace internal

namespace {

// The registry serializes with a minimal emitter rather than a JSON library:
// instrument names are restricted to [A-Za-z0-9_.!<>$@-] in practice, but
// escape defensively so arbitrary rule names stay valid JSON.
void AppendJsonString(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

size_t BucketIndex(uint64_t ns) {
  size_t idx = static_cast<size_t>(std::bit_width(ns));
  return idx < Metrics::Histogram::kBuckets
             ? idx
             : Metrics::Histogram::kBuckets - 1;
}

// Prometheus metric names admit [a-zA-Z0-9_:]; everything the registry allows
// beyond that (dots, the "!conflict." quarantine, rule names) flattens to '_'.
void AppendPromName(std::ostringstream& out, const std::string& name) {
  out << "ptldb_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out << (ok ? c : '_');
  }
}

uint64_t QuantileFromBuckets(const uint64_t* buckets, size_t n_buckets,
                             uint64_t count, uint64_t max_ns, double q) {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < n_buckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      // Bucket i holds values with bit_width == i, i.e. < 2^i.
      return i == 0 ? 0 : (uint64_t{1} << i) - 1;
    }
  }
  return max_ns;
}

void AppendHistogramJson(std::ostringstream& out, const HistogramSnapshot& h) {
  out << "{\"count\": " << h.count << ", \"sum_ns\": " << h.sum_ns
      << ", \"mean_ns\": " << static_cast<uint64_t>(h.mean_ns())
      << ", \"p50_ns\": " << h.QuantileUpperBoundNs(0.5)
      << ", \"p99_ns\": " << h.QuantileUpperBoundNs(0.99)
      << ", \"max_ns\": " << h.max_ns << "}";
}

}  // namespace

// ---- HistogramSnapshot ------------------------------------------------------

double HistogramSnapshot::mean_ns() const {
  return count == 0 ? 0.0
                    : static_cast<double>(sum_ns) / static_cast<double>(count);
}

uint64_t HistogramSnapshot::QuantileUpperBoundNs(double q) const {
  return QuantileFromBuckets(buckets.data(), kBuckets, count, max_ns, q);
}

// ---- MetricsSnapshot --------------------------------------------------------

MetricsSnapshot MetricsSnapshot::DeltaSince(
    const MetricsSnapshot& earlier) const {
  auto sub = [](uint64_t now, uint64_t then) {
    return now > then ? now - then : 0;
  };
  MetricsSnapshot d;
  for (const auto& [name, v] : counters) {
    auto it = earlier.counters.find(name);
    d.counters[name] = it == earlier.counters.end() ? v : sub(v, it->second);
  }
  d.gauges = gauges;  // levels, not flows
  for (const auto& [name, h] : histograms) {
    auto it = earlier.histograms.find(name);
    if (it == earlier.histograms.end()) {
      d.histograms[name] = h;
      continue;
    }
    HistogramSnapshot dh;
    dh.count = sub(h.count, it->second.count);
    dh.sum_ns = sub(h.sum_ns, it->second.sum_ns);
    dh.max_ns = h.max_ns;  // lifetime max; a windowed max is not recoverable
    for (size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
      dh.buckets[i] = sub(h.buckets[i], it->second.buckets[i]);
    }
    d.histograms[name] = dh;
  }
  return d;
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonString(out, name);
    out << ": " << v;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonString(out, name);
    out << ": " << v;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonString(out, name);
    out << ": ";
    AppendHistogramJson(out, h);
  }
  out << (first ? "" : "\n  ") << "}\n}";
  return out.str();
}

std::string MetricsSnapshot::ToPrometheus() const {
  std::ostringstream out;
  for (const auto& [name, v] : counters) {
    out << "# TYPE ";
    AppendPromName(out, name);
    out << " counter\n";
    AppendPromName(out, name);
    out << ' ' << v << '\n';
  }
  for (const auto& [name, v] : gauges) {
    out << "# TYPE ";
    AppendPromName(out, name);
    out << " gauge\n";
    AppendPromName(out, name);
    out << ' ' << v << '\n';
  }
  for (const auto& [name, h] : histograms) {
    out << "# TYPE ";
    AppendPromName(out, name);
    out << " histogram\n";
    uint64_t cum = 0;
    size_t highest = 0;
    for (size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
      if (h.buckets[i] != 0) highest = i;
    }
    for (size_t i = 0; i <= highest; ++i) {
      cum += h.buckets[i];
      AppendPromName(out, name);
      // Bucket i holds bit_width(ns) == i, so its inclusive upper bound is
      // 2^i - 1 (bucket 0 is exactly the value 0).
      uint64_t le = i == 0 ? 0 : (uint64_t{1} << i) - 1;
      out << "_bucket{le=\"" << le << "\"} " << cum << '\n';
    }
    AppendPromName(out, name);
    out << "_bucket{le=\"+Inf\"} " << h.count << '\n';
    AppendPromName(out, name);
    out << "_sum " << h.sum_ns << '\n';
    AppendPromName(out, name);
    out << "_count " << h.count << '\n';
  }
  return out.str();
}

// ---- Metrics ----------------------------------------------------------------

void Metrics::Histogram::Observe(uint64_t ns) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(ns, std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < ns &&
         !max_.compare_exchange_weak(prev, ns, std::memory_order_relaxed)) {
  }
  buckets_[BucketIndex(ns)].fetch_add(1, std::memory_order_relaxed);
}

double Metrics::Histogram::mean_ns() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum_ns()) / static_cast<double>(n);
}

uint64_t Metrics::Histogram::QuantileUpperBoundNs(double q) const {
  uint64_t local[kBuckets];
  for (size_t i = 0; i < kBuckets; ++i) {
    local[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return QuantileFromBuckets(local, kBuckets, count(), max_ns(), q);
}

HistogramSnapshot Metrics::Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.count = count();
  s.sum_ns = sum_ns();
  s.max_ns = max_ns();
  for (size_t i = 0; i < kBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

Metrics::Counter& Metrics::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = name;
  if (gauges_.count(key) != 0 || histograms_.count(key) != 0) {
    key = "!conflict." + key;
  }
  auto& slot = counters_[key];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Metrics::Gauge& Metrics::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = name;
  if (counters_.count(key) != 0 || histograms_.count(key) != 0) {
    key = "!conflict." + key;
  }
  auto& slot = gauges_[key];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Metrics::Histogram& Metrics::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = name;
  if (counters_.count(key) != 0 || gauges_.count(key) != 0) {
    key = "!conflict." + key;
  }
  auto& slot = histograms_[key];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

uint64_t Metrics::AddProvider(ProviderFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_provider_id_++;
  providers_[id] = std::move(fn);
  return id;
}

void Metrics::RemoveProvider(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  providers_.erase(id);
}

MetricsSnapshot Metrics::TakeSnapshot() {
  // Run providers without holding the lock: they call back into
  // counter()/gauge() to publish derived values.
  std::vector<ProviderFn> fns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fns.reserve(providers_.size());
    for (const auto& [id, fn] : providers_) fns.push_back(fn);
  }
  for (const auto& fn : fns) fn(*this);

  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->Get();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->Get();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->Snapshot();
  }
  return snap;
}

std::string Metrics::ToJson() { return TakeSnapshot().ToJson(); }

std::string Metrics::ToPrometheus() { return TakeSnapshot().ToPrometheus(); }

}  // namespace ptldb
