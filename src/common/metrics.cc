#include "common/metrics.h"

#include <bit>
#include <cstdio>
#include <sstream>

namespace ptldb {
namespace {

// The registry serializes with a minimal emitter rather than a JSON library:
// instrument names are restricted to [A-Za-z0-9_.!<>$@-] in practice, but
// escape defensively so arbitrary rule names stay valid JSON.
void AppendJsonString(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

size_t BucketIndex(uint64_t ns) {
  size_t idx = static_cast<size_t>(std::bit_width(ns));
  return idx < Metrics::Histogram::kBuckets
             ? idx
             : Metrics::Histogram::kBuckets - 1;
}

}  // namespace

void Metrics::Histogram::Observe(uint64_t ns) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(ns, std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < ns &&
         !max_.compare_exchange_weak(prev, ns, std::memory_order_relaxed)) {
  }
  buckets_[BucketIndex(ns)].fetch_add(1, std::memory_order_relaxed);
}

double Metrics::Histogram::mean_ns() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum_ns()) / static_cast<double>(n);
}

uint64_t Metrics::Histogram::QuantileUpperBoundNs(double q) const {
  uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Bucket i holds values with bit_width == i, i.e. < 2^i.
      return i == 0 ? 0 : (uint64_t{1} << i) - 1;
    }
  }
  return max_ns();
}

Metrics::Counter& Metrics::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = name;
  if (gauges_.count(key) != 0 || histograms_.count(key) != 0) {
    key = "!conflict." + key;
  }
  auto& slot = counters_[key];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Metrics::Gauge& Metrics::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = name;
  if (counters_.count(key) != 0 || histograms_.count(key) != 0) {
    key = "!conflict." + key;
  }
  auto& slot = gauges_[key];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Metrics::Histogram& Metrics::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = name;
  if (counters_.count(key) != 0 || gauges_.count(key) != 0) {
    key = "!conflict." + key;
  }
  auto& slot = histograms_[key];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

uint64_t Metrics::AddProvider(ProviderFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_provider_id_++;
  providers_[id] = std::move(fn);
  return id;
}

void Metrics::RemoveProvider(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  providers_.erase(id);
}

std::string Metrics::ToJson() {
  // Run providers without holding the lock: they call back into
  // counter()/gauge() to publish derived values.
  std::vector<ProviderFn> fns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fns.reserve(providers_.size());
    for (const auto& [id, fn] : providers_) fns.push_back(fn);
  }
  for (const auto& fn : fns) fn(*this);

  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonString(out, name);
    out << ": " << c->Get();
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonString(out, name);
    out << ": " << g->Get();
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonString(out, name);
    out << ": {\"count\": " << h->count() << ", \"sum_ns\": " << h->sum_ns()
        << ", \"mean_ns\": " << static_cast<uint64_t>(h->mean_ns())
        << ", \"p50_ns\": " << h->QuantileUpperBoundNs(0.5)
        << ", \"p99_ns\": " << h->QuantileUpperBoundNs(0.99)
        << ", \"max_ns\": " << h->max_ns() << "}";
  }
  out << (first ? "" : "\n  ") << "}\n}";
  return out.str();
}

}  // namespace ptldb
