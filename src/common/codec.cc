#include "common/codec.h"

#include <cstring>

namespace ptldb::codec {

namespace {

// Table for CRC-32C, generated once from the Castagnoli polynomial. The
// reflected form (0x82F63B78) matches the hardware SSE4.2 instruction and the
// LevelDB/RocksDB log-record checksum.
const uint32_t* Crc32cTable() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n) {
  const uint32_t* table = Crc32cTable();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void Writer::U32(uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xFF);
  buf[1] = static_cast<char>((v >> 8) & 0xFF);
  buf[2] = static_cast<char>((v >> 16) & 0xFF);
  buf[3] = static_cast<char>((v >> 24) & 0xFF);
  out_->append(buf, 4);
}

void Writer::U64(uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out_->append(buf, 8);
}

void Writer::F64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void Writer::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  out_->append(s.data(), s.size());
}

void Writer::Val(const Value& v) {
  U8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      Bool(v.AsBool());
      break;
    case ValueType::kInt64:
      I64(v.AsInt());
      break;
    case ValueType::kDouble:
      F64(v.AsDoubleExact());
      break;
    case ValueType::kString:
      Str(v.AsString());
      break;
  }
}

void Writer::ValVec(const std::vector<Value>& vs) {
  U32(static_cast<uint32_t>(vs.size()));
  for (const Value& v : vs) Val(v);
}

Status Reader::Short(const char* what) const {
  return Status::InvalidArgument(std::string("codec: truncated read of ") +
                                 what);
}

Result<uint8_t> Reader::U8() {
  if (remaining() < 1) return Short("u8");
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint8_t> Reader::PeekU8() const {
  if (remaining() < 1) return Short("u8");
  return static_cast<uint8_t>(data_[pos_]);
}

Result<uint32_t> Reader::U32() {
  if (remaining() < 4) return Short("u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> Reader::U64() {
  if (remaining() < 8) return Short("u64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int64_t> Reader::I64() {
  PTLDB_ASSIGN_OR_RETURN(uint64_t v, U64());
  return static_cast<int64_t>(v);
}

Result<double> Reader::F64() {
  PTLDB_ASSIGN_OR_RETURN(uint64_t bits, U64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<bool> Reader::Bool() {
  PTLDB_ASSIGN_OR_RETURN(uint8_t v, U8());
  if (v > 1) return Status::InvalidArgument("codec: bad bool byte");
  return v == 1;
}

Result<std::string> Reader::Str() {
  PTLDB_ASSIGN_OR_RETURN(uint32_t len, U32());
  if (remaining() < len) return Short("string body");
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

Result<Value> Reader::Val() {
  PTLDB_ASSIGN_OR_RETURN(uint8_t tag, U8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool: {
      PTLDB_ASSIGN_OR_RETURN(bool b, Bool());
      return Value::Bool(b);
    }
    case ValueType::kInt64: {
      PTLDB_ASSIGN_OR_RETURN(int64_t i, I64());
      return Value::Int(i);
    }
    case ValueType::kDouble: {
      PTLDB_ASSIGN_OR_RETURN(double d, F64());
      return Value::Real(d);
    }
    case ValueType::kString: {
      PTLDB_ASSIGN_OR_RETURN(std::string s, Str());
      return Value::Str(std::move(s));
    }
  }
  return Status::InvalidArgument("codec: bad value tag");
}

Result<std::vector<Value>> Reader::ValVec() {
  PTLDB_ASSIGN_OR_RETURN(uint32_t n, U32());
  // Arity guard: each value costs at least one tag byte, so a count larger
  // than the remaining bytes is corruption, not a huge tuple.
  if (n > remaining()) return Short("value vector");
  std::vector<Value> vs;
  vs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    PTLDB_ASSIGN_OR_RETURN(Value v, Val());
    vs.push_back(std::move(v));
  }
  return vs;
}

Status Reader::ExpectEnd() const {
  if (!AtEnd()) {
    return Status::InvalidArgument("codec: trailing bytes after payload");
  }
  return Status::OK();
}

}  // namespace ptldb::codec
