// Binary serialization primitives for the durability subsystem.
//
// Fixed-width little-endian encoding with length-prefixed strings, written
// into / read out of contiguous byte buffers. Lives in `common` (below every
// other layer) so db/eval/rules/validtime can expose Serialize/Deserialize
// hooks without depending on `storage`. The framing above these primitives
// (record length prefixes, CRCs, file headers) belongs to src/storage.
//
// Readers are defensive: every read validates remaining length and value
// tags, returning InvalidArgument instead of crashing, because checkpoint
// and WAL bytes may be torn or corrupt on disk.

#ifndef PTLDB_COMMON_CODEC_H_
#define PTLDB_COMMON_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace ptldb::codec {

/// CRC-32C (Castagnoli polynomial 0x82F63B78), software table-driven — the
/// checksum LevelDB/RocksDB use for log records.
uint32_t Crc32c(const void* data, size_t n);

/// Appends primitive encodings to a caller-owned byte buffer.
class Writer {
 public:
  explicit Writer(std::string* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v);
  void Bool(bool v) { U8(v ? 1 : 0); }
  /// u32 byte length + raw bytes (may contain NULs).
  void Str(std::string_view s);
  /// u8 ValueType tag + payload (nothing for null).
  void Val(const Value& v);
  /// u32 arity + values (db::Tuple, event params, ...).
  void ValVec(const std::vector<Value>& vs);

 private:
  std::string* out_;
};

/// Cursor over an immutable byte buffer; every read is bounds-checked.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  Result<uint8_t> U8();
  /// Next byte without consuming it (wire-format version sniffing).
  Result<uint8_t> PeekU8() const;
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<int64_t> I64();
  Result<double> F64();
  Result<bool> Bool();
  Result<std::string> Str();
  Result<Value> Val();
  Result<std::vector<Value>> ValVec();

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  /// InvalidArgument when trailing bytes remain (blob/version mismatch).
  Status ExpectEnd() const;

 private:
  Status Short(const char* what) const;

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace ptldb::codec

#endif  // PTLDB_COMMON_CODEC_H_
