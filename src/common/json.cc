#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "common/strings.h"

namespace ptldb::json {

Json Json::Int(int64_t v) { return RawNumber(std::to_string(v)); }

Json Json::UInt(uint64_t v) { return RawNumber(std::to_string(v)); }

Json Json::Real(double v) {
  if (!std::isfinite(v)) return Json::Null();  // JSON has no Inf/NaN
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return RawNumber(buf);
}

Json Json::RawNumber(std::string text) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.str_ = std::move(text);
  return j;
}

Json& Json::Add(Json v) {
  PTLDB_CHECK(kind_ == Kind::kArray);
  items_.push_back(std::move(v));
  return *this;
}

Json& Json::Set(std::string key, Json v) {
  PTLDB_CHECK(kind_ == Kind::kObject);
  for (auto& [k, existing] : fields_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  fields_.emplace_back(std::move(key), std::move(v));
  return *this;
}

double Json::AsDouble() const {
  return kind_ == Kind::kNumber ? std::strtod(str_.c_str(), nullptr) : 0.0;
}

Result<int64_t> Json::AsInt64() const {
  if (kind_ != Kind::kNumber) {
    return Status::TypeMismatch("JSON value is not a number");
  }
  return ParseInt64(str_);
}

const Json* Json::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : fields_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Result<const Json*> Json::Get(std::string_view key) const {
  const Json* v = Find(key);
  if (v == nullptr) {
    return Status::NotFound(StrCat("JSON object has no field '", key, "'"));
  }
  return v;
}

std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Json::DumpTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      *out += str_;
      return;
    case Kind::kString:
      *out += '"';
      *out += Escape(str_);
      *out += '"';
      return;
    case Kind::kArray: {
      *out += '[';
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) *out += ',';
        items_[i].DumpTo(out);
      }
      *out += ']';
      return;
    }
    case Kind::kObject: {
      *out += '{';
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (i > 0) *out += ',';
        *out += '"';
        *out += Escape(fields_[i].first);
        *out += "\":";
        fields_[i].second.DumpTo(out);
      }
      *out += '}';
      return;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

// ---- Parser -----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> Run() {
    PTLDB_ASSIGN_OR_RETURN(Json v, ParseValue());
    SkipWs();
    if (pos_ != text_.size()) {
      return Err("trailing input after JSON document");
    }
    return v;
  }

 private:
  Status Err(std::string_view what) const {
    return Status::ParseError(StrCat("JSON: ", what, " at offset ", pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Result<Json> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      PTLDB_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Json::Str(std::move(s));
    }
    if (ConsumeWord("null")) return Json::Null();
    if (ConsumeWord("true")) return Json::Bool(true);
    if (ConsumeWord("false")) return Json::Bool(false);
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    return Err(StrCat("unexpected character '", std::string(1, c), "'"));
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return Err("malformed number");
    }
    std::string raw(text_.substr(start, pos_ - start));
    // Validate via strtod: the whole token must be consumed.
    char* end = nullptr;
    std::strtod(raw.c_str(), &end);
    if (end == nullptr || *end != '\0') return Err("malformed number");
    return Json::RawNumber(std::move(raw));
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Err("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Err("bad \\u escape");
            }
            // Re-encode as UTF-8 (no surrogate-pair handling: the writer only
            // emits \u for control characters).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Err("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return Err("unterminated string");
  }

  Result<Json> ParseArray() {
    if (!Consume('[')) return Err("expected '['");
    Json arr = Json::Array();
    SkipWs();
    if (Consume(']')) return arr;
    while (true) {
      PTLDB_ASSIGN_OR_RETURN(Json v, ParseValue());
      arr.Add(std::move(v));
      SkipWs();
      if (Consume(']')) return arr;
      if (!Consume(',')) return Err("expected ',' or ']'");
    }
  }

  Result<Json> ParseObject() {
    if (!Consume('{')) return Err("expected '{'");
    Json obj = Json::Object();
    SkipWs();
    if (Consume('}')) return obj;
    while (true) {
      SkipWs();
      PTLDB_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      PTLDB_ASSIGN_OR_RETURN(Json v, ParseValue());
      obj.Set(std::move(key), std::move(v));
      SkipWs();
      if (Consume('}')) return obj;
      if (!Consume(',')) return Err("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Parse(std::string_view text) { return Parser(text).Run(); }

}  // namespace ptldb::json
