#include "common/status.h"

namespace ptldb {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kTypeMismatch:
      return "TypeMismatch";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kTransactionAborted:
      return "TransactionAborted";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace ptldb
