#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <system_error>

namespace ptldb {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

Result<int64_t> ParseInt64(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("expected integer, got \"\"");
  int64_t value = 0;
  const char* begin = s.data();
  const char* end = begin + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value, 10);
  if (ec == std::errc::result_out_of_range) {
    return Status::OutOfRange(StrCat("integer out of range: \"", s, "\""));
  }
  if (ec != std::errc() || ptr != end) {
    return Status::InvalidArgument(
        StrCat("expected integer, got \"", s, "\""));
  }
  return value;
}

}  // namespace ptldb
