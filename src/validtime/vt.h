// The valid-time system model (§9).
//
// In the transaction-time model (everything under src/db + src/rules) a
// change takes effect when its transaction commits. Here every update carries
// a *valid time* that may precede the current time — "the price of the IBM
// stock is 72, as of 12:50pm, posted at 1pm" — and the system history is
// organized by valid time: a retroactive update inserts into the *middle* of
// the history and changes every later database state.
//
// The module implements the paper's §9 machinery over a store of named scalar
// database items (the §2 model's "database items"; PTL conditions reference
// item X as the 0-ary query `X()`):
//
//   * VtDatabase — transactions posting (item, value, valid-time) updates and
//     valid-time events; maintains the committed history at the current time.
//     With a maximum delay delta (§9.2), updates may not reach back more than
//     delta ticks.
//   * Tentative triggers — actions based on tentative values: after a commit
//     the evaluator is re-run "for each state starting with the oldest system
//     state that was updated", implemented with per-state evaluator
//     checkpoints (restore at the retro point, replay the suffix). The
//     trigger fires if the condition is satisfied at any replayed state.
//   * Definite triggers — actions based only on definite values: the
//     evaluator consumes a state only once its timestamp is older than
//     now - delta, so firing is inherently delayed by at least delta.
//   * Integrity-constraint satisfaction (§9.3) — `OnlineSatisfied` and
//     `OfflineSatisfied` implement the two definitions literally (committed
//     history at each commit point vs the committed history at infinity), and
//     `CollapsedCommittedHistory` produces the transaction-time collapse on
//     which Theorem 2 says the two notions coincide.

#ifndef PTLDB_VALIDTIME_VT_H_
#define PTLDB_VALIDTIME_VT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/codec.h"
#include "common/status.h"
#include "common/trace.h"
#include "eval/incremental.h"
#include "event/event.h"
#include "ptl/analyzer.h"

namespace ptldb::validtime {

/// One state of a valid-time history: the events and committed updates at one
/// instant, plus the resulting item values.
struct VtState {
  Timestamp time = 0;
  std::vector<event::Event> events;
  /// (item, value) updates taking effect at this instant, in commit order
  /// (later commits win on conflicts at the same instant).
  std::vector<std::pair<std::string, Value>> updates;
  /// Item values after this state.
  std::map<std::string, Value> values;
};

using VtHistory = std::vector<VtState>;

/// Callback when a trigger fires. `at` is the (valid) timestamp of the state
/// satisfying the condition; for tentative triggers this may lie in the past
/// of an earlier notification after a retroactive change.
using VtTriggerFn = std::function<void(Timestamp at)>;

class VtDatabase {
 public:
  /// `max_delay` is the paper's delta: an update's valid time must satisfy
  /// valid_time >= now - max_delay (and <= now). Pass 0 for "no bound"
  /// (definite triggers then cannot be registered).
  VtDatabase(Clock* clock, Timestamp max_delay);

  Timestamp max_delay() const { return max_delay_; }

  // ---- Transactions ----

  Result<int64_t> Begin();
  /// Posts `item := value` with the given valid time (checked against the
  /// maximum-delay window). Buffered until commit; aborted updates never
  /// enter any history ("we ignore updates of aborted transactions").
  Status Update(int64_t txn, const std::string& item, Value value,
                Timestamp valid_time);
  /// Posts an application event at a valid time.
  Status RaiseEvent(int64_t txn, event::Event e, Timestamp valid_time);
  Status Commit(int64_t txn);
  Status Abort(int64_t txn);

  /// Advances definite-trigger processing without any new commit (time has
  /// passed, so more states became definite).
  Status AdvanceDefinite();

  /// Drops in-memory states older than now - max_delay (they are immutable
  /// under the maximum-delay assumption, §9.2) along with the tentative
  /// monitors' checkpoints for them. The durable log is kept, so the offline
  /// analyses (CommittedHistoryAt etc.) are unaffected. Requires
  /// max_delay > 0. Idempotent; called manually or via `auto_compact`.
  Status Compact();

  /// When enabled (and max_delay > 0), Commit() compacts automatically once
  /// the in-memory history exceeds `threshold` states.
  void SetAutoCompact(size_t threshold) { auto_compact_threshold_ = threshold; }

  /// Node-store size above which a monitor's evaluator is compacted after a
  /// replay/step pass. Tentative monitors hold per-state checkpoints, so
  /// their collections go through CollectKeepingCheckpoints (checkpoint node
  /// ids are remapped in place and stay restorable); definite monitors hold
  /// none and collect directly.
  void SetCollectThreshold(size_t nodes) { collect_threshold_ = nodes; }

  /// Evaluator node-store collections across all monitors (proves the
  /// bounded-state policy engages).
  uint64_t collections() const { return collections_; }

  /// Sum of evaluator store sizes across monitors (diagnostics).
  size_t monitor_store_nodes() const;

  /// Number of states currently held in memory (diagnostics; bounded by the
  /// update rate within one delta window when compaction is on).
  size_t live_states() const { return states_.size(); }

  // ---- Triggers ----

  /// Conditions reference item X as the 0-ary query `X()`.
  Status AddTentativeTrigger(const std::string& name, std::string_view condition,
                             VtTriggerFn on_fire);
  Status AddDefiniteTrigger(const std::string& name, std::string_view condition,
                            VtTriggerFn on_fire);

  // ---- Histories and IC satisfaction (offline analyses over the log) ----

  /// The committed history at transaction time `t`: states with valid
  /// timestamp <= t, containing exactly the updates of transactions that
  /// committed at or before `t`.
  VtHistory CommittedHistoryAt(Timestamp t) const;

  /// The committed history "at time infinity" (every committed update).
  VtHistory CommittedHistoryAtInfinity() const;

  /// Commit timestamps of all committed transactions, ascending.
  std::vector<Timestamp> CommitPoints() const;

  /// The transaction-time collapse: every update takes effect at its
  /// transaction's commit time instead of its valid time.
  VtHistory CollapsedCommittedHistory() const;

  /// §9.3 online satisfaction of a temporal integrity constraint: for every
  /// commit point t, the committed history at t satisfies `constraint`.
  Result<bool> OnlineSatisfied(std::string_view constraint) const;

  /// §9.3 offline satisfaction: for every commit point t, the prefix (up to
  /// t) of the committed history at infinity satisfies `constraint`.
  Result<bool> OfflineSatisfied(std::string_view constraint) const;

  /// Same two notions evaluated on an explicit history (used to check
  /// Theorem 2 on the collapsed history).
  static Result<bool> SatisfiedAtCommitPoints(const VtHistory& history,
                                              std::string_view constraint);

  /// Current committed history (diagnostics).
  const VtHistory& current_history() const { return states_; }

  // ---- Durability ----

  /// Serializes the full retained state: the in-memory committed history,
  /// compaction base, durable transaction log, and every monitor's evaluator
  /// state (including the tentative monitors' per-state checkpoints).
  /// Triggers themselves are code: the application re-registers them before
  /// RestoreState, which matches monitors by name and validates conditions.
  /// Fails with open transactions (their buffered updates are volatile by
  /// design — an aborted/unfinished txn never enters any history).
  Status SerializeState(codec::Writer* w) const;
  Status RestoreState(codec::Reader* r);

  // ---- Tracing ----

  /// Attaches (or detaches, with nullptr) a trace recorder. While the
  /// recorder is enabled, tentative replays and definite advances emit spans
  /// and every trigger firing emits a "vt_fire" record carrying the
  /// evaluator's witness chain. Near-zero cost while disabled.
  void SetTrace(trace::Recorder* recorder) { trace_ = recorder; }
  trace::Recorder* trace() const { return trace_; }

 private:
  struct Txn {
    int64_t id = 0;
    std::vector<std::tuple<std::string, Value, Timestamp>> updates;  // buffered
    std::vector<std::pair<event::Event, Timestamp>> events;
  };

  // The durable log (for offline analyses): one entry per committed txn.
  struct CommittedTxn {
    int64_t id;
    Timestamp commit_time;
    std::vector<std::tuple<std::string, Value, Timestamp>> updates;
    std::vector<std::pair<event::Event, Timestamp>> events;
  };

  struct Monitor {
    std::string name;
    bool definite = false;
    eval::IncrementalEvaluator ev;
    VtTriggerFn on_fire;
    // Tentative: checkpoint taken *after* each consumed state, parallel to
    // states_ (index i = after states_[i]).
    std::vector<eval::IncrementalEvaluator::Checkpoint> checkpoints;
    // Definite: index of the next state to consume.
    size_t frontier = 0;

    Monitor(std::string n, bool def, eval::IncrementalEvaluator e,
            VtTriggerFn f)
        : name(std::move(n)), definite(def), ev(std::move(e)),
          on_fire(std::move(f)) {}
  };

  Result<Txn*> GetTxn(int64_t txn_id);
  /// Inserts one committed update/event into states_; returns the index of
  /// the earliest affected state.
  size_t InsertUpdate(const std::string& item, const Value& value,
                      Timestamp valid_time);
  size_t InsertEvent(const event::Event& e, Timestamp valid_time);
  /// Recomputes `values` from state `from` onward.
  void RecomputeValues(size_t from);
  /// Index of the state at `time`, inserting an empty one if absent.
  size_t StateAt(Timestamp time);

  Status ReplayTentative(Monitor* m, size_t from);
  Status StepDefinite(Monitor* m, Timestamp horizon);
  /// Emits one "vt_fire" trace record for a monitor firing at states_[idx].
  void RecordFire(const Monitor& m, size_t idx);
  static Result<ptl::StateSnapshot> SnapshotFor(const ptl::Analysis& analysis,
                                                const VtState& state,
                                                size_t seq);
  static Result<bool> EvaluateAtEnd(const VtHistory& history,
                                    std::string_view condition);

  Clock* clock_;
  Timestamp max_delay_;
  VtHistory states_;  // committed history at "now" (suffix after compaction)
  // Item values as of just before states_[0] (effect of compacted states).
  std::map<std::string, Value> base_values_;
  std::map<int64_t, Txn> open_txns_;
  std::vector<CommittedTxn> log_;
  std::vector<std::unique_ptr<Monitor>> monitors_;
  int64_t next_txn_id_ = 1;
  size_t auto_compact_threshold_ = 0;  // 0 = manual only
  size_t compacted_states_ = 0;        // absolute seq offset of states_[0]
  size_t collect_threshold_ = 65536;   // see SetCollectThreshold
  uint64_t collections_ = 0;
  trace::Recorder* trace_ = nullptr;   // not owned; null = tracing detached
};

}  // namespace ptldb::validtime

#endif  // PTLDB_VALIDTIME_VT_H_
