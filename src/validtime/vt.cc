#include "validtime/vt.h"

#include <algorithm>
#include <limits>
#include <tuple>

#include "common/logging.h"
#include "common/strings.h"
#include "ptl/naive_eval.h"
#include "ptl/parser.h"

namespace ptldb::validtime {

namespace {

// Validates that a condition over a valid-time store only uses 0-ary item
// queries, and returns its analysis.
Result<ptl::Analysis> AnalyzeItemCondition(std::string_view condition) {
  PTLDB_ASSIGN_OR_RETURN(ptl::FormulaPtr f, ptl::ParseFormula(condition));
  PTLDB_ASSIGN_OR_RETURN(ptl::Analysis analysis, ptl::Analyze(std::move(f)));
  for (const ptl::QuerySpec& spec : analysis.slots) {
    if (!spec.args.empty()) {
      return Status::InvalidArgument(
          StrCat("valid-time conditions reference items as 0-ary queries; '",
                 spec.ToString(), "' has arguments"));
    }
  }
  return analysis;
}

}  // namespace

VtDatabase::VtDatabase(Clock* clock, Timestamp max_delay)
    : clock_(clock), max_delay_(max_delay) {}

Result<int64_t> VtDatabase::Begin() {
  int64_t id = next_txn_id_++;
  Txn txn;
  txn.id = id;
  open_txns_.emplace(id, std::move(txn));
  return id;
}

Result<VtDatabase::Txn*> VtDatabase::GetTxn(int64_t txn_id) {
  auto it = open_txns_.find(txn_id);
  if (it == open_txns_.end()) {
    return Status::NotFound(StrCat("no open transaction with id ", txn_id));
  }
  return &it->second;
}

Status VtDatabase::Update(int64_t txn_id, const std::string& item, Value value,
                          Timestamp valid_time) {
  PTLDB_ASSIGN_OR_RETURN(Txn * txn, GetTxn(txn_id));
  Timestamp now = clock_->Now();
  if (valid_time > now) {
    return Status::InvalidArgument(
        StrCat("valid time ", valid_time, " lies in the future (now = ", now,
               "); proactive updates are out of scope"));
  }
  if (max_delay_ > 0 && valid_time < now - max_delay_) {
    return Status::OutOfRange(
        StrCat("valid time ", valid_time, " violates the maximum delay: now (",
               now, ") - delta (", max_delay_, ") = ", now - max_delay_));
  }
  txn->updates.emplace_back(item, std::move(value), valid_time);
  return Status::OK();
}

Status VtDatabase::RaiseEvent(int64_t txn_id, event::Event e,
                              Timestamp valid_time) {
  PTLDB_ASSIGN_OR_RETURN(Txn * txn, GetTxn(txn_id));
  Timestamp now = clock_->Now();
  if (valid_time > now) {
    return Status::InvalidArgument("event valid time lies in the future");
  }
  if (max_delay_ > 0 && valid_time < now - max_delay_) {
    return Status::OutOfRange("event valid time violates the maximum delay");
  }
  txn->events.emplace_back(std::move(e), valid_time);
  return Status::OK();
}

size_t VtDatabase::StateAt(Timestamp time) {
  auto it = std::lower_bound(
      states_.begin(), states_.end(), time,
      [](const VtState& s, Timestamp t) { return s.time < t; });
  size_t idx = static_cast<size_t>(it - states_.begin());
  if (it != states_.end() && it->time == time) return idx;
  VtState s;
  s.time = time;
  states_.insert(it, std::move(s));
  return idx;
}

size_t VtDatabase::InsertUpdate(const std::string& item, const Value& value,
                                Timestamp valid_time) {
  size_t idx = StateAt(valid_time);
  states_[idx].events.push_back(
      event::Event{event::kUpdateEvent, {Value::Str(item), value}});
  states_[idx].updates.emplace_back(item, value);
  return idx;
}

size_t VtDatabase::InsertEvent(const event::Event& e, Timestamp valid_time) {
  size_t idx = StateAt(valid_time);
  states_[idx].events.push_back(e);
  return idx;
}

void VtDatabase::RecomputeValues(size_t from) {
  std::map<std::string, Value> values =
      from == 0 ? base_values_ : states_[from - 1].values;
  for (size_t i = from; i < states_.size(); ++i) {
    for (const auto& [item, value] : states_[i].updates) {
      values[item] = value;
    }
    states_[i].values = values;
  }
}

Status VtDatabase::Commit(int64_t txn_id) {
  PTLDB_ASSIGN_OR_RETURN(Txn * txn, GetTxn(txn_id));
  // Commit timestamps are strictly increasing and strictly later than any
  // state already in the history (at most one commit per state, §2).
  Timestamp commit_time = clock_->Now();
  if (!states_.empty() && commit_time <= states_.back().time) {
    commit_time = states_.back().time + 1;
  }
  if (!log_.empty() && commit_time <= log_.back().commit_time) {
    commit_time = log_.back().commit_time + 1;
  }

  size_t min_affected = states_.size();
  for (const auto& [item, value, valid_time] : txn->updates) {
    min_affected = std::min(min_affected, InsertUpdate(item, value, valid_time));
  }
  for (const auto& [e, valid_time] : txn->events) {
    min_affected = std::min(min_affected, InsertEvent(e, valid_time));
  }
  // The commit event itself occurs "now", at the end of the history.
  size_t commit_idx = StateAt(commit_time);
  states_[commit_idx].events.push_back(event::TransactionCommit(txn_id));
  min_affected = std::min(min_affected, commit_idx);
  RecomputeValues(min_affected);

  CommittedTxn record;
  record.id = txn_id;
  record.commit_time = commit_time;
  record.updates = std::move(txn->updates);
  record.events = std::move(txn->events);
  log_.push_back(std::move(record));
  open_txns_.erase(txn_id);

  // Notify monitors: tentative ones replay from the earliest changed state,
  // definite ones advance their frontier.
  for (const auto& m : monitors_) {
    if (m->definite) {
      PTLDB_RETURN_IF_ERROR(
          StepDefinite(m.get(), clock_->Now() - max_delay_));
    } else {
      PTLDB_RETURN_IF_ERROR(ReplayTentative(m.get(), min_affected));
    }
  }
  if (auto_compact_threshold_ > 0 && max_delay_ > 0 &&
      states_.size() > auto_compact_threshold_) {
    PTLDB_RETURN_IF_ERROR(Compact());
  }
  return Status::OK();
}

Status VtDatabase::Compact() {
  if (max_delay_ == 0) {
    return Status::InvalidArgument(
        "compaction requires a maximum delay (delta > 0): without it any "
        "state may still change retroactively");
  }
  Timestamp horizon = clock_->Now() - max_delay_;
  // States with time < horizon can no longer be touched by retro updates.
  size_t keep_from = 0;
  while (keep_from < states_.size() && states_[keep_from].time < horizon) {
    ++keep_from;
  }
  if (keep_from == 0) return Status::OK();
  // Definite monitors must have consumed the dropped prefix first.
  for (const auto& m : monitors_) {
    if (m->definite && m->frontier < keep_from) {
      PTLDB_RETURN_IF_ERROR(StepDefinite(m.get(), horizon));
    }
  }
  base_values_ = states_[keep_from - 1].values;
  states_.erase(states_.begin(),
                states_.begin() + static_cast<ptrdiff_t>(keep_from));
  compacted_states_ += keep_from;
  for (const auto& m : monitors_) {
    if (m->definite) {
      m->frontier = m->frontier >= keep_from ? m->frontier - keep_from : 0;
    } else {
      // checkpoints[i] = state before states_[i]; drop the prefix so
      // checkpoints[0] is again "before the first in-memory state".
      PTLDB_CHECK(m->checkpoints.size() >= 1);
      size_t drop = std::min(keep_from, m->checkpoints.size() - 1);
      m->checkpoints.erase(m->checkpoints.begin(),
                           m->checkpoints.begin() + static_cast<ptrdiff_t>(drop));
      // With the old checkpoints gone, the evaluator's node store can be
      // compacted too (the checkpoints' node ids are remapped in place).
      std::vector<eval::IncrementalEvaluator::Checkpoint*> keep;
      keep.reserve(m->checkpoints.size());
      for (auto& cp : m->checkpoints) keep.push_back(&cp);
      PTLDB_RETURN_IF_ERROR(m->ev.CollectKeepingCheckpoints(std::move(keep)));
      ++collections_;
    }
  }
  return Status::OK();
}

size_t VtDatabase::monitor_store_nodes() const {
  size_t total = 0;
  for (const auto& m : monitors_) total += m->ev.StoreNodeCount();
  return total;
}

Status VtDatabase::Abort(int64_t txn_id) {
  PTLDB_ASSIGN_OR_RETURN(Txn * txn, GetTxn(txn_id));
  (void)txn;  // buffered updates are simply dropped
  open_txns_.erase(txn_id);
  return Status::OK();
}

Status VtDatabase::AdvanceDefinite() {
  for (const auto& m : monitors_) {
    if (m->definite) {
      PTLDB_RETURN_IF_ERROR(StepDefinite(m.get(), clock_->Now() - max_delay_));
    }
  }
  return Status::OK();
}

// ---- Triggers ---------------------------------------------------------------

Status VtDatabase::AddTentativeTrigger(const std::string& name,
                                       std::string_view condition,
                                       VtTriggerFn on_fire) {
  PTLDB_ASSIGN_OR_RETURN(ptl::Analysis analysis,
                         AnalyzeItemCondition(condition));
  PTLDB_ASSIGN_OR_RETURN(eval::IncrementalEvaluator ev,
                         eval::IncrementalEvaluator::Make(std::move(analysis)));
  auto monitor = std::make_unique<Monitor>(name, /*definite=*/false,
                                           std::move(ev), std::move(on_fire));
  monitor->checkpoints.push_back(monitor->ev.Save());  // before any state
  Monitor* m = monitor.get();
  monitors_.push_back(std::move(monitor));
  // Catch up on the existing history.
  return ReplayTentative(m, 0);
}

Status VtDatabase::AddDefiniteTrigger(const std::string& name,
                                      std::string_view condition,
                                      VtTriggerFn on_fire) {
  if (max_delay_ == 0) {
    return Status::InvalidArgument(
        "definite triggers require a maximum delay (delta > 0): without it no "
        "value ever becomes definite");
  }
  PTLDB_ASSIGN_OR_RETURN(ptl::Analysis analysis,
                         AnalyzeItemCondition(condition));
  PTLDB_ASSIGN_OR_RETURN(eval::IncrementalEvaluator ev,
                         eval::IncrementalEvaluator::Make(std::move(analysis)));
  auto monitor = std::make_unique<Monitor>(name, /*definite=*/true,
                                           std::move(ev), std::move(on_fire));
  Monitor* m = monitor.get();
  monitors_.push_back(std::move(monitor));
  return StepDefinite(m, clock_->Now() - max_delay_);
}

Result<ptl::StateSnapshot> VtDatabase::SnapshotFor(
    const ptl::Analysis& analysis, const VtState& state, size_t seq) {
  ptl::StateSnapshot snapshot;
  snapshot.seq = seq;
  snapshot.time = state.time;
  snapshot.events = state.events;
  snapshot.query_values.reserve(analysis.slots.size());
  for (const ptl::QuerySpec& spec : analysis.slots) {
    auto it = state.values.find(spec.name);
    snapshot.query_values.push_back(it == state.values.end() ? Value::Null()
                                                             : it->second);
  }
  return snapshot;
}

void VtDatabase::RecordFire(const Monitor& m, size_t idx) {
  // Mirrors the engine's witness encoding, but under its own "vt_fire" kind:
  // TraceReplay skips it (valid-time replays revisit states, so the records
  // are not a linear history), yet the chain still explains the firing.
  json::Json doc = json::Json::Object();
  doc.Set("kind", json::Json::Str("vt_fire"));
  doc.Set("monitor", json::Json::Str(m.name));
  doc.Set("mode", json::Json::Str(m.definite ? "definite" : "tentative"));
  doc.Set("condition", json::Json::Str(m.ev.analysis().root->ToString()));
  doc.Set("seq",
          json::Json::Int(static_cast<int64_t>(compacted_states_ + idx)));
  doc.Set("time", json::Json::Int(states_[idx].time));
  json::Json chain = json::Json::Array();
  for (const auto& link : m.ev.WitnessChain()) {
    json::Json l = json::Json::Object();
    l.Set("op", json::Json::Str(link.op));
    l.Set("subformula", json::Json::Str(link.subformula));
    l.Set("retained", json::Json::Str(link.retained));
    l.Set("anchor_seq", json::Json::Int(link.anchor_seq));
    l.Set("anchor_time", json::Json::Int(link.anchor_time));
    if (!link.bindings.empty()) {
      json::Json binds = json::Json::Array();
      for (const auto& b : link.bindings) {
        json::Json bj = json::Json::Object();
        bj.Set("var", json::Json::Str(b.var));
        bj.Set("value", trace::EncodeValue(b.value));
        binds.Add(std::move(bj));
      }
      l.Set("bindings", std::move(binds));
    }
    chain.Add(std::move(l));
  }
  doc.Set("chain", std::move(chain));
  trace_->RecordUpdate(std::move(doc));
}

Status VtDatabase::ReplayTentative(Monitor* m, size_t from) {
  const bool tracing = trace_ != nullptr && trace_->enabled();
  m->ev.set_tracing(tracing);
  trace::ScopedSpan span(trace_, trace::SpanKind::kVtReplay, m->name);
  // Restore to the checkpoint taken before states_[from] and replay the
  // suffix (§9.2: "performs the evaluation algorithm for each state starting
  // with the oldest system state that was updated").
  if (from + 1 < m->checkpoints.size()) {
    PTLDB_RETURN_IF_ERROR(m->ev.Restore(m->checkpoints[from]));
    m->checkpoints.resize(from + 1);
  }
  size_t start = m->checkpoints.size() - 1;  // next state index to consume
  if (span.active()) {
    span.set_detail(StrCat("replay states ", compacted_states_ + start, "..",
                           compacted_states_ + states_.size()));
  }
  for (size_t i = start; i < states_.size(); ++i) {
    PTLDB_ASSIGN_OR_RETURN(
        ptl::StateSnapshot snapshot,
        SnapshotFor(m->ev.analysis(), states_[i], i));
    PTLDB_ASSIGN_OR_RETURN(bool fired, m->ev.Step(snapshot));
    m->checkpoints.push_back(m->ev.Save());
    if (fired && m->on_fire) {
      if (tracing) RecordFire(*m, i);
      m->on_fire(states_[i].time);
    }
  }
  // Replays never collected before, so a long-lived tentative monitor's node
  // store grew without bound between (optional) Compact() calls. Collect
  // checkpoint-safely once the store passes the threshold: every retained
  // per-state checkpoint is remapped in place and stays restorable.
  if (m->ev.StoreNodeCount() > collect_threshold_) {
    std::vector<eval::IncrementalEvaluator::Checkpoint*> keep;
    keep.reserve(m->checkpoints.size());
    for (auto& cp : m->checkpoints) keep.push_back(&cp);
    PTLDB_RETURN_IF_ERROR(m->ev.CollectKeepingCheckpoints(std::move(keep)));
    ++collections_;
  }
  return Status::OK();
}

Status VtDatabase::StepDefinite(Monitor* m, Timestamp horizon) {
  const bool tracing = trace_ != nullptr && trace_->enabled();
  m->ev.set_tracing(tracing);
  trace::ScopedSpan span(trace_, trace::SpanKind::kVtDefinite, m->name);
  size_t consumed = 0;
  // Only states strictly older than now - delta are final (an update at
  // valid time v may still arrive while now <= v + delta).
  while (m->frontier < states_.size() &&
         states_[m->frontier].time < horizon) {
    PTLDB_ASSIGN_OR_RETURN(
        ptl::StateSnapshot snapshot,
        SnapshotFor(m->ev.analysis(), states_[m->frontier], m->frontier));
    PTLDB_ASSIGN_OR_RETURN(bool fired, m->ev.Step(snapshot));
    if (fired && m->on_fire) {
      if (tracing) RecordFire(*m, m->frontier);
      m->on_fire(states_[m->frontier].time);
    }
    ++m->frontier;
    ++consumed;
  }
  if (span.active()) {
    span.set_detail(StrCat("advanced ", consumed, " state(s); frontier=",
                           compacted_states_ + m->frontier));
  }
  // Definite monitors hold no checkpoints; a plain collection bounds them.
  if (m->ev.MaybeCollect(collect_threshold_)) ++collections_;
  return Status::OK();
}

// ---- Durability -------------------------------------------------------------

namespace {

void WriteValueMap(const std::map<std::string, Value>& m, codec::Writer* w) {
  w->U32(static_cast<uint32_t>(m.size()));
  for (const auto& [k, v] : m) {
    w->Str(k);
    w->Val(v);
  }
}

Result<std::map<std::string, Value>> ReadValueMap(codec::Reader* r) {
  PTLDB_ASSIGN_OR_RETURN(uint32_t n, r->U32());
  std::map<std::string, Value> m;
  for (uint32_t i = 0; i < n; ++i) {
    PTLDB_ASSIGN_OR_RETURN(std::string k, r->Str());
    PTLDB_ASSIGN_OR_RETURN(Value v, r->Val());
    m.emplace(std::move(k), std::move(v));
  }
  return m;
}

}  // namespace

Status VtDatabase::SerializeState(codec::Writer* w) const {
  if (!open_txns_.empty()) {
    return Status::InvalidArgument(
        StrCat("cannot serialize a valid-time database with ",
               open_txns_.size(), " open transaction(s)"));
  }
  w->I64(max_delay_);
  w->I64(next_txn_id_);
  w->U64(compacted_states_);
  w->U64(collections_);
  WriteValueMap(base_values_, w);
  w->U32(static_cast<uint32_t>(states_.size()));
  for (const VtState& s : states_) {
    w->I64(s.time);
    w->U32(static_cast<uint32_t>(s.events.size()));
    for (const event::Event& e : s.events) event::SerializeEvent(e, w);
    w->U32(static_cast<uint32_t>(s.updates.size()));
    for (const auto& [item, value] : s.updates) {
      w->Str(item);
      w->Val(value);
    }
    WriteValueMap(s.values, w);
  }
  w->U32(static_cast<uint32_t>(log_.size()));
  for (const CommittedTxn& txn : log_) {
    w->I64(txn.id);
    w->I64(txn.commit_time);
    w->U32(static_cast<uint32_t>(txn.updates.size()));
    for (const auto& [item, value, valid_time] : txn.updates) {
      w->Str(item);
      w->Val(value);
      w->I64(valid_time);
    }
    w->U32(static_cast<uint32_t>(txn.events.size()));
    for (const auto& [e, valid_time] : txn.events) {
      event::SerializeEvent(e, w);
      w->I64(valid_time);
    }
  }
  w->U32(static_cast<uint32_t>(monitors_.size()));
  for (const auto& m : monitors_) {
    w->Str(m->name);
    w->Bool(m->definite);
    w->Str(m->ev.analysis().root->ToString());
    w->U64(m->frontier);
    m->ev.SerializeState(w);
    w->U32(static_cast<uint32_t>(m->checkpoints.size()));
    for (const auto& cp : m->checkpoints) m->ev.SerializeCheckpoint(cp, w);
  }
  return Status::OK();
}

Status VtDatabase::RestoreState(codec::Reader* r) {
  if (!open_txns_.empty()) {
    return Status::InvalidArgument(
        "cannot restore into a valid-time database with open transactions");
  }
  PTLDB_ASSIGN_OR_RETURN(Timestamp max_delay, r->I64());
  if (max_delay != max_delay_) {
    return Status::InvalidArgument(
        StrCat("checkpoint was taken with max_delay=", max_delay,
               " but this database was built with max_delay=", max_delay_));
  }
  PTLDB_ASSIGN_OR_RETURN(next_txn_id_, r->I64());
  PTLDB_ASSIGN_OR_RETURN(compacted_states_, r->U64());
  PTLDB_ASSIGN_OR_RETURN(collections_, r->U64());
  PTLDB_ASSIGN_OR_RETURN(base_values_, ReadValueMap(r));
  PTLDB_ASSIGN_OR_RETURN(uint32_t num_states, r->U32());
  states_.clear();
  for (uint32_t i = 0; i < num_states; ++i) {
    VtState s;
    PTLDB_ASSIGN_OR_RETURN(s.time, r->I64());
    PTLDB_ASSIGN_OR_RETURN(uint32_t num_events, r->U32());
    for (uint32_t j = 0; j < num_events; ++j) {
      PTLDB_ASSIGN_OR_RETURN(event::Event e, event::DeserializeEvent(r));
      s.events.push_back(std::move(e));
    }
    PTLDB_ASSIGN_OR_RETURN(uint32_t num_updates, r->U32());
    for (uint32_t j = 0; j < num_updates; ++j) {
      PTLDB_ASSIGN_OR_RETURN(std::string item, r->Str());
      PTLDB_ASSIGN_OR_RETURN(Value value, r->Val());
      s.updates.emplace_back(std::move(item), std::move(value));
    }
    PTLDB_ASSIGN_OR_RETURN(s.values, ReadValueMap(r));
    states_.push_back(std::move(s));
  }
  PTLDB_ASSIGN_OR_RETURN(uint32_t num_log, r->U32());
  log_.clear();
  for (uint32_t i = 0; i < num_log; ++i) {
    CommittedTxn txn;
    PTLDB_ASSIGN_OR_RETURN(txn.id, r->I64());
    PTLDB_ASSIGN_OR_RETURN(txn.commit_time, r->I64());
    PTLDB_ASSIGN_OR_RETURN(uint32_t num_updates, r->U32());
    for (uint32_t j = 0; j < num_updates; ++j) {
      PTLDB_ASSIGN_OR_RETURN(std::string item, r->Str());
      PTLDB_ASSIGN_OR_RETURN(Value value, r->Val());
      PTLDB_ASSIGN_OR_RETURN(Timestamp valid_time, r->I64());
      txn.updates.emplace_back(std::move(item), std::move(value), valid_time);
    }
    PTLDB_ASSIGN_OR_RETURN(uint32_t num_events, r->U32());
    for (uint32_t j = 0; j < num_events; ++j) {
      PTLDB_ASSIGN_OR_RETURN(event::Event e, event::DeserializeEvent(r));
      PTLDB_ASSIGN_OR_RETURN(Timestamp valid_time, r->I64());
      txn.events.emplace_back(std::move(e), valid_time);
    }
    log_.push_back(std::move(txn));
  }
  PTLDB_ASSIGN_OR_RETURN(uint32_t num_monitors, r->U32());
  for (uint32_t i = 0; i < num_monitors; ++i) {
    PTLDB_ASSIGN_OR_RETURN(std::string name, r->Str());
    PTLDB_ASSIGN_OR_RETURN(bool definite, r->Bool());
    PTLDB_ASSIGN_OR_RETURN(std::string condition, r->Str());
    PTLDB_ASSIGN_OR_RETURN(uint64_t frontier, r->U64());
    Monitor* monitor = nullptr;
    for (const auto& m : monitors_) {
      if (m->name == name) {
        monitor = m.get();
        break;
      }
    }
    if (monitor == nullptr) {
      return Status::NotFound(
          StrCat("checkpoint holds state for valid-time trigger '", name,
                 "', which is not registered — re-register every trigger "
                 "before restoring"));
    }
    if (monitor->definite != definite) {
      return Status::InvalidArgument(
          StrCat("trigger '", name,
                 "': definite/tentative mode differs from the checkpoint"));
    }
    std::string live_condition = monitor->ev.analysis().root->ToString();
    if (live_condition != condition) {
      return Status::InvalidArgument(
          StrCat("trigger '", name, "': registered condition `",
                 live_condition, "` differs from the checkpointed condition `",
                 condition, "`"));
    }
    monitor->frontier = frontier;
    PTLDB_RETURN_IF_ERROR(monitor->ev.RestoreState(r));
    PTLDB_ASSIGN_OR_RETURN(uint32_t num_checkpoints, r->U32());
    monitor->checkpoints.clear();
    for (uint32_t j = 0; j < num_checkpoints; ++j) {
      PTLDB_ASSIGN_OR_RETURN(eval::IncrementalEvaluator::Checkpoint cp,
                             monitor->ev.DeserializeCheckpoint(r));
      monitor->checkpoints.push_back(std::move(cp));
    }
  }
  return Status::OK();
}

// ---- Histories and satisfaction ----------------------------------------------

VtHistory VtDatabase::CommittedHistoryAt(Timestamp t) const {
  std::map<Timestamp, VtState> by_time;
  auto state_at = [&by_time](Timestamp time) -> VtState& {
    VtState& s = by_time[time];
    s.time = time;
    return s;
  };
  for (const CommittedTxn& txn : log_) {
    if (txn.commit_time > t) continue;
    for (const auto& [item, value, valid_time] : txn.updates) {
      VtState& s = state_at(valid_time);
      s.events.push_back(
          event::Event{event::kUpdateEvent, {Value::Str(item), value}});
      s.updates.emplace_back(item, value);
    }
    for (const auto& [e, valid_time] : txn.events) {
      state_at(valid_time).events.push_back(e);
    }
    state_at(txn.commit_time)
        .events.push_back(event::TransactionCommit(txn.id));
  }
  VtHistory history;
  history.reserve(by_time.size());
  std::map<std::string, Value> values;
  for (auto& [time, state] : by_time) {
    if (time > t) break;
    for (const auto& [item, value] : state.updates) values[item] = value;
    state.values = values;
    history.push_back(std::move(state));
  }
  return history;
}

VtHistory VtDatabase::CommittedHistoryAtInfinity() const {
  return CommittedHistoryAt(std::numeric_limits<Timestamp>::max());
}

std::vector<Timestamp> VtDatabase::CommitPoints() const {
  std::vector<Timestamp> points;
  points.reserve(log_.size());
  for (const CommittedTxn& txn : log_) points.push_back(txn.commit_time);
  return points;  // log_ is in commit order
}

VtHistory VtDatabase::CollapsedCommittedHistory() const {
  VtHistory history;
  std::map<std::string, Value> values;
  for (const CommittedTxn& txn : log_) {
    VtState s;
    s.time = txn.commit_time;
    s.events.push_back(event::TransactionCommit(txn.id));
    for (const auto& [item, value, valid_time] : txn.updates) {
      (void)valid_time;  // the collapse applies changes at commit time
      s.events.push_back(
          event::Event{event::kUpdateEvent, {Value::Str(item), value}});
      s.updates.emplace_back(item, value);
      values[item] = value;
    }
    for (const auto& [e, valid_time] : txn.events) {
      (void)valid_time;
      s.events.push_back(e);
    }
    s.values = values;
    history.push_back(std::move(s));
  }
  return history;
}

Result<bool> VtDatabase::EvaluateAtEnd(const VtHistory& history,
                                       std::string_view condition) {
  PTLDB_ASSIGN_OR_RETURN(ptl::Analysis analysis,
                         AnalyzeItemCondition(condition));
  ptl::NaiveEvaluator ev(&analysis);
  for (size_t i = 0; i < history.size(); ++i) {
    PTLDB_ASSIGN_OR_RETURN(ptl::StateSnapshot snapshot,
                           SnapshotFor(analysis, history[i], i));
    ev.Observe(std::move(snapshot));
  }
  if (history.empty()) return true;  // vacuously satisfied
  return ev.SatisfiedAtEnd();
}

Result<bool> VtDatabase::OnlineSatisfied(std::string_view constraint) const {
  for (Timestamp t : CommitPoints()) {
    PTLDB_ASSIGN_OR_RETURN(bool ok, EvaluateAtEnd(CommittedHistoryAt(t),
                                                  constraint));
    if (!ok) return false;
  }
  return true;
}

Result<bool> VtDatabase::OfflineSatisfied(std::string_view constraint) const {
  VtHistory full = CommittedHistoryAtInfinity();
  for (Timestamp t : CommitPoints()) {
    VtHistory prefix;
    for (const VtState& s : full) {
      if (s.time > t) break;
      prefix.push_back(s);
    }
    PTLDB_ASSIGN_OR_RETURN(bool ok, EvaluateAtEnd(prefix, constraint));
    if (!ok) return false;
  }
  return true;
}

Result<bool> VtDatabase::SatisfiedAtCommitPoints(const VtHistory& history,
                                                 std::string_view constraint) {
  for (size_t i = 0; i < history.size(); ++i) {
    bool is_commit_point = false;
    for (const event::Event& e : history[i].events) {
      if (e.name == event::kCommitEvent) {
        is_commit_point = true;
        break;
      }
    }
    if (!is_commit_point) continue;
    VtHistory prefix(history.begin(), history.begin() + static_cast<ptrdiff_t>(i) + 1);
    PTLDB_ASSIGN_OR_RETURN(bool ok, EvaluateAtEnd(prefix, constraint));
    if (!ok) return false;
  }
  return true;
}

}  // namespace ptldb::validtime
