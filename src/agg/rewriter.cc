#include "agg/rewriter.h"

#include "common/strings.h"

namespace ptldb::agg {

namespace {

class Rewriter {
 public:
  explicit Rewriter(const std::string& rule_name) : rule_name_(rule_name) {}

  Result<ptl::FormulaPtr> RewriteFormula(const ptl::FormulaPtr& f) {
    if (f == nullptr) return ptl::FormulaPtr(nullptr);
    auto copy = std::make_shared<ptl::Formula>(*f);
    PTLDB_ASSIGN_OR_RETURN(copy->lhs_term, RewriteTerm(f->lhs_term));
    PTLDB_ASSIGN_OR_RETURN(copy->rhs_term, RewriteTerm(f->rhs_term));
    PTLDB_ASSIGN_OR_RETURN(copy->bind_term, RewriteTerm(f->bind_term));
    // Event args are constants; nothing to rewrite there.
    PTLDB_ASSIGN_OR_RETURN(copy->left, RewriteFormula(f->left));
    PTLDB_ASSIGN_OR_RETURN(copy->right, RewriteFormula(f->right));
    return ptl::FormulaPtr(copy);
  }

  RewriteResult Finish(ptl::FormulaPtr condition) {
    RewriteResult out;
    out.condition = std::move(condition);
    out.items = std::move(items_);
    out.system_rules = std::move(rules_);
    return out;
  }

 private:
  Result<ptl::TermPtr> RewriteTerm(const ptl::TermPtr& t) {
    if (t == nullptr) return ptl::TermPtr(nullptr);
    switch (t->kind) {
      case ptl::Term::Kind::kConst:
      case ptl::Term::Kind::kVar:
      case ptl::Term::Kind::kTime:
        return t;
      case ptl::Term::Kind::kArith: {
        auto copy = std::make_shared<ptl::Term>(*t);
        for (ptl::TermPtr& op : copy->operands) {
          PTLDB_ASSIGN_OR_RETURN(op, RewriteTerm(op));
        }
        return ptl::TermPtr(copy);
      }
      case ptl::Term::Kind::kQuery:
        return t;
      case ptl::Term::Kind::kWindowAgg:
        // No counterpart in the paper's construction; handled directly by the
        // incremental evaluator's window machines.
        return t;
      case ptl::Term::Kind::kAgg: {
        // Recurse first: inner aggregates' rules must run before ours.
        PTLDB_ASSIGN_OR_RETURN(ptl::FormulaPtr start,
                               RewriteFormula(t->agg_start));
        PTLDB_ASSIGN_OR_RETURN(ptl::FormulaPtr sample,
                               RewriteFormula(t->agg_sample));
        if (t->agg_query == nullptr ||
            t->agg_query->kind != ptl::Term::Kind::kQuery) {
          return Status::InvalidArgument(
              "aggregate argument must be a database query");
        }
        ptl::QuerySpec source;
        source.name = t->agg_query->name;
        for (const ptl::TermPtr& a : t->agg_query->operands) {
          if (a->kind != ptl::Term::Kind::kConst) {
            return Status::InvalidArgument(
                StrCat("aggregate query argument '", a->ToString(),
                       "' must be ground; substitute rule parameters before "
                       "rewriting"));
          }
          source.args.push_back(a->constant);
        }

        std::string item =
            StrCat("__agg_", rule_name_, "_", items_.size());
        items_.push_back(AuxItem{item, t->agg_fn});
        rules_.push_back(SystemRule{StrCat(item, "_reset"), start,
                                    SystemRule::Op::kReset, item, {}});
        rules_.push_back(SystemRule{StrCat(item, "_acc"), sample,
                                    SystemRule::Op::kAccumulate, item,
                                    std::move(source)});
        // Replace the aggregate by the item's (computed) query.
        return ptl::QueryRef(item, {});
      }
    }
    return Status::Internal("unknown term kind");
  }

  std::string rule_name_;
  std::vector<AuxItem> items_;
  std::vector<SystemRule> rules_;
};

}  // namespace

Result<RewriteResult> RewriteAggregates(const ptl::FormulaPtr& condition,
                                        const std::string& rule_name) {
  if (condition == nullptr) {
    return Status::InvalidArgument("null condition");
  }
  Rewriter rewriter(rule_name);
  PTLDB_ASSIGN_OR_RETURN(ptl::FormulaPtr rewritten,
                         rewriter.RewriteFormula(condition));
  return rewriter.Finish(std::move(rewritten));
}

}  // namespace ptldb::agg
