// The §6.1.1 rewriting: temporal aggregates -> auxiliary database items plus
// reset/accumulate rules.
//
// For a rule r whose condition contains f(q; phi; psi), the paper introduces a
// new database item F, replaces the aggregate by F, and adds
//
//   r1 : phi -> F := initial        (reset at the start formula)
//   r2 : psi -> F := F (+) q        (accumulate at each sampling point)
//
// exactly as in the CUM_PRICE / TOTAL_UPDATES example. This module performs
// that transformation ("all of the above can be done automatically"):
// `RewriteAggregates` returns the rewritten condition, the auxiliary items to
// materialize (single-row tables the user can inspect with SQL), and the
// generated system rules. The rule engine materializes the items, registers a
// computed query per item, and runs the system rules *before* user rules at
// each state, so rewritten conditions observe exactly the same aggregate
// values as directly-evaluated ones (verified by the equivalence tests).
//
// Nested aggregates (start/sampling formulas containing aggregates) are
// handled by recursion; inner items are generated first so their system rules
// run first. Sliding-window aggregates are left in place — they are already
// O(1) machines in the direct evaluator and have no counterpart in the
// paper's construction.

#ifndef PTLDB_AGG_REWRITER_H_
#define PTLDB_AGG_REWRITER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "ptl/ast.h"
#include "ptl/snapshot.h"

namespace ptldb::agg {

/// One auxiliary database item: a single-row table
/// (started BOOL, sum DOUBLE, cnt INT64, minv DOUBLE, maxv DOUBLE)
/// plus a same-named computed query deriving the aggregate's value.
struct AuxItem {
  std::string name;  // table and query name, e.g. "__agg_myrule_0"
  ptl::TemporalAggFn fn;
};

/// A generated reset/accumulate rule. The engine evaluates `condition`
/// incrementally like any rule, but executes the operation inline (the
/// auxiliary items are the temporal component's own bookkeeping, like the §5
/// auxiliary relations — their maintenance does not spawn transactions).
struct SystemRule {
  enum class Op { kReset, kAccumulate };
  std::string name;
  ptl::FormulaPtr condition;
  Op op;
  std::string item;       // AuxItem name
  ptl::QuerySpec source;  // accumulated query (kAccumulate only)
};

struct RewriteResult {
  ptl::FormulaPtr condition;  // aggregates replaced by item queries
  std::vector<AuxItem> items;
  std::vector<SystemRule> system_rules;  // in execution order
};

/// Rewrites every temporal aggregate in `condition`. `rule_name` namespaces
/// the generated items. The condition must already have rule parameters
/// substituted (aggregates may then be ground, per the paper's "no free
/// variables" case; the indexed-family generalization instantiates one
/// rewritten copy per parameter tuple, one level up).
Result<RewriteResult> RewriteAggregates(const ptl::FormulaPtr& condition,
                                        const std::string& rule_name);

}  // namespace ptldb::agg

#endif  // PTLDB_AGG_REWRITER_H_
