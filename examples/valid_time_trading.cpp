// Valid time vs transaction time (§9).
//
// Trades reach the database minutes after they happen: every update carries a
// valid time that may precede the posting time (bounded by the maximum delay
// delta). The example shows
//
//   * a tentative trigger re-evaluating retroactively ("we now know the price
//     spiked at 12:50, even though we learned it at 1:00"),
//   * a definite trigger whose firing is delayed by delta by construction,
//   * the paper's online/offline integrity-constraint example (u1, u2,
//     commit-T2, commit-T1), where the constraint is offline- but not
//     online-satisfied, and
//   * Theorem 2 on the collapsed (transaction-time) history.
//
// Run: ./build/examples/valid_time_trading

#include <cstdio>

#include "common/clock.h"
#include "common/logging.h"
#include "validtime/vt.h"

using namespace ptldb;
using validtime::VtDatabase;
using validtime::VtHistory;
using validtime::VtState;

int main() {
  SimClock clock(0);
  constexpr Timestamp kDelta = 15;  // max posting delay
  VtDatabase db(&clock, kDelta);

  PTLDB_CHECK_OK(db.AddTentativeTrigger(
      "tentative_spike", "IBM() > 100", [](Timestamp at) {
        std::printf(">>> tentative:  IBM above 100 at valid time %lld\n",
                    static_cast<long long>(at));
      }));
  PTLDB_CHECK_OK(db.AddDefiniteTrigger(
      "definite_spike", "IBM() > 100", [](Timestamp at) {
        std::printf(">>> definite:   IBM above 100 at valid time %lld "
                    "(confirmed, >= delta later)\n",
                    static_cast<long long>(at));
      }));

  auto post = [&](Timestamp now, const char* item, int64_t price,
                  Timestamp valid) {
    clock.Set(now);
    auto txn = db.Begin();
    PTLDB_CHECK(txn.ok());
    PTLDB_CHECK_OK(db.Update(*txn, item, Value::Int(price), valid));
    PTLDB_CHECK_OK(db.Commit(*txn));
    std::printf("t=%-3lld posted %s=%lld (valid %lld)\n",
                static_cast<long long>(now), item,
                static_cast<long long>(price), static_cast<long long>(valid));
  };

  std::printf("== a spike arrives late ==\n");
  post(10, "IBM", 90, 10);
  // At t=20 we learn the price was 120 back at t=13 — the tentative trigger
  // fires immediately for the past state; the definite one must wait until
  // t=13 is older than delta.
  post(20, "IBM", 120, 13);
  post(21, "IBM", 95, 21);
  std::printf("-- time passes; definite horizon moves --\n");
  clock.Set(13 + kDelta + 1);
  PTLDB_CHECK_OK(db.AdvanceDefinite());

  std::printf("\n== the paper's online/offline example ==\n");
  SimClock clock2(0);
  VtDatabase db2(&clock2, /*max_delay=*/100);
  clock2.Set(10);
  auto t1 = db2.Begin();
  auto t2 = db2.Begin();
  PTLDB_CHECK(t1.ok() && t2.ok());
  PTLDB_CHECK_OK(db2.Update(*t1, "u1", Value::Int(1), 1));  // u1 at valid 1
  PTLDB_CHECK_OK(db2.Update(*t2, "u2", Value::Int(1), 2));  // u2 at valid 2
  PTLDB_CHECK_OK(db2.Commit(*t2));                          // T2 first
  clock2.Set(20);
  PTLDB_CHECK_OK(db2.Commit(*t1));                          // T1 later
  const char* constraint =
      "NOT PREVIOUSLY (@update('u2') AND NOT PREVIOUSLY @update('u1'))";
  auto online = db2.OnlineSatisfied(constraint);
  auto offline = db2.OfflineSatisfied(constraint);
  PTLDB_CHECK(online.ok() && offline.ok());
  std::printf("constraint: every u2 is preceded by a u1\n");
  std::printf("online-satisfied:  %s   (u1 invisible when T2 commits)\n",
              *online ? "yes" : "no");
  std::printf("offline-satisfied: %s   (in the full history u1 precedes u2)\n",
              *offline ? "yes" : "no");

  std::printf("\n== Theorem 2: collapse to transaction time ==\n");
  VtHistory collapsed = db2.CollapsedCommittedHistory();
  SimClock clock3(0);
  VtDatabase db3(&clock3, 0);
  for (const VtState& s : collapsed) {
    clock3.Set(s.time);
    auto txn = db3.Begin();
    PTLDB_CHECK(txn.ok());
    for (const auto& [item, value] : s.updates) {
      PTLDB_CHECK_OK(db3.Update(*txn, item, value, s.time));
    }
    PTLDB_CHECK_OK(db3.Commit(*txn));
  }
  auto online3 = db3.OnlineSatisfied(constraint);
  auto offline3 = db3.OfflineSatisfied(constraint);
  PTLDB_CHECK(online3.ok() && offline3.ok());
  std::printf("on the collapsed history: online=%s offline=%s (equal, as "
              "Theorem 2 states)\n",
              *online3 ? "yes" : "no", *offline3 ? "yes" : "no");
  return 0;
}
