// Quickstart: an active database with one temporal trigger.
//
// Builds the paper's §5 running example end to end: a STOCK table, a `price`
// query, and the trigger "the price of IBM doubled within 10 time units",
// written in PTL with the assignment operator:
//
//   [t := time][x := price('IBM')]
//       PREVIOUSLY (price('IBM') <= 0.5 * x AND time >= t - 10)
//
// Run: ./build/examples/quickstart

#include <cstdio>

#include "common/clock.h"
#include "common/logging.h"
#include "db/database.h"
#include "rules/engine.h"

using namespace ptldb;

int main() {
  SimClock clock(0);
  db::Database database(&clock);
  rules::RuleEngine engine(&database);

  // 1. Schema + data.
  PTLDB_CHECK_OK(database.CreateTable(
      "stock",
      db::Schema({{"name", ValueType::kString}, {"price", ValueType::kDouble}}),
      /*primary_key=*/{"name"}));
  PTLDB_CHECK_OK(
      database.InsertRow("stock", {Value::Str("IBM"), Value::Real(10)}));

  // 2. PTL function symbols resolve to SQL queries.
  PTLDB_CHECK_OK(engine.queries().Register(
      "price", "SELECT price FROM stock WHERE name = $sym", {"sym"}));

  // 3. The temporal condition, straight from the paper.
  PTLDB_CHECK_OK(engine.AddTrigger(
      "sharp_increase",
      "[t := time][x := price('IBM')] "
      "PREVIOUSLY (price('IBM') <= 0.5 * x AND time >= t - 10)",
      [](rules::ActionContext& ctx) -> Status {
        std::printf(">>> %s fired at t=%lld: IBM doubled within 10 ticks\n",
                    ctx.rule().c_str(),
                    static_cast<long long>(ctx.fired_at()));
        return Status::OK();
      }));

  // 4. Drive the paper's two histories.
  auto set_price = [&](Timestamp at, double price) {
    clock.Set(at);
    db::ParamMap params{{"p", Value::Real(price)}};
    auto n = database.UpdateRows("stock", {{"price", "$p"}}, "name = 'IBM'",
                                 &params);
    PTLDB_CHECK(n.ok());
    std::printf("t=%-3lld price(IBM) := %.0f\n", static_cast<long long>(at),
                price);
  };

  std::printf("-- history 1: (10,1) (15,2) (18,5) (25,8) -> fires\n");
  set_price(1, 10);
  set_price(2, 15);
  set_price(5, 18);
  set_price(8, 25);  // 25 >= 2 * 10 within the window: the trigger fires

  std::printf("-- history 2 tail: price drifts, no doubling -> silent\n");
  set_price(40, 26);
  set_price(45, 27);

  auto firings = engine.TakeFirings();
  std::printf("total firings: %zu\n", firings.size());
  std::printf("evaluator steps: %llu, queries run: %llu\n",
              static_cast<unsigned long long>(engine.stats().rule_steps),
              static_cast<unsigned long long>(engine.stats().queries_evaluated));
  return 0;
}
