// Sharded rule evaluation: many family instances, any thread count, one
// deterministic firing order.
//
// A rule family instantiated over a 64-row domain gives the engine 64
// independent evaluators per state. RuleEngine::SetThreads(n) fans their
// stepping out over a pool of n threads; because fired results are merged
// back in canonical (registration, instance) order, the observable firing
// log is byte-identical at every thread count. This program runs the same
// workload at 1 and 4 threads and diffs the logs to prove it.
//
// Run: ./build/examples/parallel_rules

#include <cstdio>
#include <string>

#include "common/clock.h"
#include "common/logging.h"
#include "common/strings.h"
#include "db/database.h"
#include "rules/engine.h"

using namespace ptldb;

namespace {

// The whole scenario as a function of the thread count: returns the firing
// log so runs can be compared.
std::string Run(size_t threads) {
  SimClock clock(0);
  db::Database database(&clock);
  rules::RuleEngine engine(&database);
  PTLDB_CHECK_OK(engine.SetThreads(threads));

  // A sensor per domain row; each family instance watches one threshold.
  PTLDB_CHECK_OK(database.CreateTable(
      "sensors", db::Schema({{"id", ValueType::kInt64}})));
  for (int i = 0; i < 64; ++i) {
    PTLDB_CHECK_OK(database.InsertRow("sensors", {Value::Int(i)}));
  }
  PTLDB_CHECK_OK(database.CreateTable(
      "reading", db::Schema({{"v", ValueType::kInt64}})));
  PTLDB_CHECK_OK(database.InsertRow("reading", {Value::Int(0)}));
  PTLDB_CHECK_OK(
      engine.queries().Register("level", "SELECT v FROM reading", {}));

  std::string log;
  // Instance `id` fires when the level first reached its personal threshold
  // within the last 5 ticks.
  PTLDB_CHECK_OK(engine.AddTriggerFamily(
      "threshold", "SELECT id FROM sensors", {"id"},
      "[t := time] PREVIOUSLY (level() >= 3 * $id AND time >= t - 5)",
      [&log](rules::ActionContext& ctx) -> Status {
        log += StrCat("t=", ctx.fired_at(), " threshold[id=",
                      ctx.param("id").ToString(), "]\n");
        return Status::OK();
      },
      rules::RuleOptions{.record_execution = false}));

  // A rising-then-falling level sweeps across the thresholds.
  for (int step = 1; step <= 24; ++step) {
    clock.Advance(1);
    int64_t level = step <= 12 ? step * 16 : (24 - step) * 16;
    db::ParamMap params{{"v", Value::Int(level)}};
    PTLDB_CHECK(
        database.UpdateRows("reading", {{"v", "$v"}}, "v >= 0", &params).ok());
  }
  for (const Status& e : engine.TakeErrors()) {
    log += StrCat("error ", e.ToString(), "\n");
  }
  return log;
}

}  // namespace

int main() {
  std::string serial = Run(1);
  std::string sharded = Run(4);
  std::printf("%s", serial.c_str());
  std::printf("serial (1 thread) vs sharded (4 threads): %s\n",
              serial == sharded ? "identical firing logs"
                                : "LOGS DIVERGED (bug!)");
  return serial == sharded ? 0 : 1;
}
