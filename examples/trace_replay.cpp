// trace_replay — offline differential validation of a trace dump.
//
//   trace_replay <trace.jsonl> [...more dumps]
//
// Re-evaluates every recorded rule-instance history against the naive PTL
// evaluator (rules::TraceReplayFile) and exits nonzero when any recorded
// verdict disagrees, any firing lacks a witness chain, or a dump is
// malformed. This is the CI entry point: a dump produced by the shell's
// `trace dump`, a test failure, or the crash sink can be checked anywhere,
// with no access to the database that produced it.

#include <cstdio>

#include "rules/provenance.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <trace.jsonl> [...more dumps]\n", argv[0]);
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    auto report = ptldb::rules::TraceReplayFile(argv[i]);
    if (!report.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[i],
                   report.status().message().c_str());
      rc = 2;
      continue;
    }
    std::printf("%s: %s\n", argv[i], report->Summary().c_str());
    for (const std::string& line : report->details) {
      std::printf("  %s\n", line.c_str());
    }
    if (!report->ok() || report->fired_without_witness > 0) rc = 1;
  }
  return rc;
}
