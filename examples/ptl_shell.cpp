// ptl_shell — an interactive active-database shell.
//
// Drive the whole system from a prompt (or a piped script):
//
//   create stock name:string key price:double
//   insert stock 'IBM' 72.0
//   query price SELECT price FROM stock WHERE name = $sym
//   trigger hot := wavg(price('IBM'), 20) > 50
//   ic cap := price('IBM') <= 1000
//   sql SELECT * FROM stock
//   update stock price 80 WHERE name = 'IBM'
//   event login 'alice'
//   tick 5
//   describe hot
//   stats
//   quit
//
// Run: ./build/examples/ptl_shell            (interactive)
//      ./build/examples/ptl_shell < script   (batch)

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "common/trace.h"
#include "db/database.h"
#include "ptl/lint.h"
#include "rules/engine.h"
#include "rules/offline_check.h"
#include "rules/provenance.h"
#include "storage/durability.h"
#include "storage/recovery.h"
#include "temporal/versioning.h"

using namespace ptldb;

namespace {

// Crash sink: if a CHECK fails while tracing, the in-memory ring is the only
// record of what the engine was doing — persist it before the abort.
trace::Recorder* g_crash_recorder = nullptr;

void CrashSink(const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "%s:%d: %s\n", file, line, message.c_str());
  if (g_crash_recorder != nullptr && g_crash_recorder->enabled()) {
    const char* path = "ptldb_crash_trace.jsonl";
    if (g_crash_recorder->DumpJsonl(path).ok()) {
      std::fprintf(stderr, "trace dumped to %s (%zu update record(s))\n", path,
                   g_crash_recorder->update_count());
    }
  }
}

class Shell {
 public:
  Shell() : clock_(0), database_(&clock_), engine_(&database_) {
    engine_.SetMetrics(&metrics_);
    engine_.SetTrace(&trace_);
    g_crash_recorder = &trace_;
    SetCheckFailureSink(&CrashSink);
  }

  ~Shell() {
    SetCheckFailureSink(nullptr);
    g_crash_recorder = nullptr;
  }

  int Run() {
    std::string line;
    bool tty = isatty(0);
    if (tty) {
      std::printf("ptldb shell — 'help' lists commands, 'quit' exits.\n");
    }
    while (true) {
      if (tty) std::printf("ptldb> ");
      if (!std::getline(std::cin, line)) break;
      if (!Dispatch(line)) break;
      DrainEngineOutput();
    }
    return 0;
  }

 private:
  // Splits off the first word; returns (word, rest).
  static std::pair<std::string, std::string> Split(const std::string& s) {
    size_t i = s.find_first_not_of(" \t");
    if (i == std::string::npos) return {"", ""};
    size_t j = s.find_first_of(" \t", i);
    if (j == std::string::npos) return {s.substr(i), ""};
    size_t k = s.find_first_not_of(" \t", j);
    return {s.substr(i, j - i), k == std::string::npos ? "" : s.substr(k)};
  }

  // Parses one shell literal: 42, 3.5, 'text', true, false, null.
  static Result<Value> ParseLiteral(const std::string& tok) {
    if (tok.empty()) return Status::ParseError("empty literal");
    if (tok == "true") return Value::Bool(true);
    if (tok == "false") return Value::Bool(false);
    if (tok == "null") return Value::Null();
    if (tok.front() == '\'') {
      if (tok.size() < 2 || tok.back() != '\'') {
        return Status::ParseError("unterminated string " + tok);
      }
      return Value::Str(tok.substr(1, tok.size() - 2));
    }
    try {
      if (tok.find('.') != std::string::npos) {
        return Value::Real(std::stod(tok));
      }
      return Value::Int(std::stoll(tok));
    } catch (...) {
      return Status::ParseError("bad literal " + tok);
    }
  }

  // Tokenizes respecting single quotes.
  static std::vector<std::string> Tokens(const std::string& s) {
    std::vector<std::string> out;
    std::string cur;
    bool in_str = false;
    for (char c : s) {
      if (c == '\'') {
        in_str = !in_str;
        cur += c;
      } else if (!in_str && (c == ' ' || c == '\t')) {
        if (!cur.empty()) out.push_back(std::move(cur));
        cur.clear();
      } else {
        cur += c;
      }
    }
    if (!cur.empty()) out.push_back(std::move(cur));
    return out;
  }

  void Report(const Status& s) {
    if (!s.ok()) std::printf("error: %s\n", s.ToString().c_str());
  }

  void DrainEngineOutput() {
    for (const rules::Firing& f : engine_.TakeFirings()) {
      std::printf(">>> fired %s%s%s at t=%lld\n", f.rule.c_str(),
                  f.params.empty() ? "" : " ", f.params.c_str(),
                  static_cast<long long>(f.time));
      firing_log_.push_back(f);  // retained for 'offline'
    }
    for (const Status& e : engine_.TakeErrors()) {
      std::printf("engine error: %s\n", e.ToString().c_str());
    }
  }

  bool Dispatch(const std::string& line) {
    auto [cmd, rest] = Split(line);
    if (cmd.empty() || cmd[0] == '#') return true;
    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      std::printf(
          "commands:\n"
          "  create <table> <col:type>... (append 'key' after the key column)\n"
          "  insert <table> <literal>...\n"
          "  update <table> <col> <literal> WHERE <sql-expr>\n"
          "  delete <table> WHERE <sql-expr>\n"
          "  sql <SELECT ...>\n"
          "  query <name> <SELECT ... $p1 ...>   (args bind $p1, $p2, ...)\n"
          "  trigger <name> := <PTL condition>\n"
          "  ic <name> := <PTL constraint>\n"
          "  drop <rule>\n"
          "  event <name> [literal...]\n"
          "  tick [n]         advance the clock\n"
          "  set threads <n>  shard rule evaluation over n threads\n"
          "  set strict on|off   reject unbounded/contradictory rules at\n"
          "                   registration (strict mode)\n"
          "  set fold on|off  constant-fold conditions at registration\n"
          "  lint <rule|file> static analysis: boundedness, time-bound\n"
          "                   satisfiability, dead subformulas (PTL0xx)\n"
          "  analyze [json|dot]  whole-rule-set analysis: triggering graph,\n"
          "                   termination, confluence partition (PTL2xx)\n"
          "  explain <rule>   retained F formulas + node accounting\n"
          "  stats [json]     engine counters (json: full metrics snapshot)\n"
          "  trace on|off|clear | trace dump|chrome|replay <file>\n"
          "  why <rule>       witness chain of the rule's last traced firing\n"
          "  durable <dir> [sync|async|none] [every <N>]\n"
          "                   attach WAL + checkpoints (async fsync default)\n"
          "  checkpoint       serialize retained state now, reset the WAL\n"
          "  recover <dir>    restore checkpoint + replay WAL tail into this\n"
          "                   session (re-register rules first)\n"
          "  wal stats        durable-store record/byte/sync counters\n"
          "  versioned [<table> | drop <table> | history <table>]\n"
          "                   declare/undeclare system-period versioning,\n"
          "                   list versioned tables, dump a history table\n"
          "  asof <t> <SELECT ...>   run the query AS OF time t\n"
          "  trim <t>         drop archived history ending at or before t\n"
          "  offline          re-check all rules over the committed history\n"
          "                   and diff the verdicts against the online run\n"
          "  describe <rule> | rules | history | help | quit\n");
      return true;
    }
    if (cmd == "create") return CmdCreate(rest);
    if (cmd == "insert") return CmdInsert(rest);
    if (cmd == "update") return CmdUpdate(rest);
    if (cmd == "delete") return CmdDelete(rest);
    if (cmd == "sql") return CmdSql(rest);
    if (cmd == "query") return CmdQuery(rest);
    if (cmd == "trigger") return CmdRule(rest, /*ic=*/false);
    if (cmd == "ic") return CmdRule(rest, /*ic=*/true);
    if (cmd == "drop") {
      Report(engine_.RemoveRule(rest));
      return true;
    }
    if (cmd == "event") return CmdEvent(rest);
    if (cmd == "tick") {
      int64_t n = 1;
      if (!rest.empty()) {
        auto parsed = ParseInt64(rest);
        if (!parsed.ok() || *parsed <= 0) {
          std::printf("error: tick count must be a positive integer, got "
                      "'%s'\n",
                      rest.c_str());
          return true;
        }
        n = *parsed;
      }
      clock_.Advance(n);
      // A clock tick is itself an event: time-based conditions advance.
      Report(database_.RaiseEvent(event::Event{"tick", {}}));
      return true;
    }
    if (cmd == "set") {
      auto [what, value] = Split(rest);
      if (what == "threads" && !value.empty()) {
        // Strict parse: `atol` would silently turn junk into 0 and a silent
        // clamp would hide the mistake; reject anything but a positive count.
        auto parsed = ParseInt64(value);
        if (!parsed.ok()) {
          std::printf("error: thread count must be an integer, got '%s'\n",
                      value.c_str());
          return true;
        }
        if (*parsed <= 0) {
          std::printf("error: thread count must be >= 1, got %lld\n",
                      static_cast<long long>(*parsed));
          return true;
        }
        Report(engine_.SetThreads(static_cast<size_t>(*parsed)));
        std::printf("threads = %zu (firing order is identical at any "
                    "thread count)\n",
                    engine_.threads());
      } else if (what == "strict" && (value == "on" || value == "off")) {
        engine_.SetStrictRegistration(value == "on");
        std::printf("strict registration = %s\n", value.c_str());
      } else if (what == "fold" && (value == "on" || value == "off")) {
        engine_.SetLintFolding(value == "on");
        std::printf("lint folding = %s (affects rules registered from "
                    "now on)\n",
                    value.c_str());
      } else {
        std::printf(
            "usage: set threads <n> | set strict on|off | set fold on|off\n");
      }
      return true;
    }
    if (cmd == "versioned") return CmdVersioned(rest);
    if (cmd == "asof") return CmdAsOf(rest);
    if (cmd == "trim") return CmdTrim(rest);
    if (cmd == "offline") return CmdOffline();
    if (cmd == "lint") return CmdLint(rest);
    if (cmd == "analyze") return CmdAnalyze(rest);
    if (cmd == "durable") return CmdDurable(rest);
    if (cmd == "checkpoint") return CmdCheckpoint();
    if (cmd == "recover") return CmdRecover(rest);
    if (cmd == "wal") return CmdWal(rest);
    if (cmd == "explain") return CmdExplain(rest);
    if (cmd == "trace") return CmdTrace(rest);
    if (cmd == "why") return CmdWhy(rest);
    if (cmd == "describe") return CmdDescribe(rest);
    if (cmd == "rules") {
      for (const std::string& name : engine_.RuleNames()) {
        std::printf("  %s\n", name.c_str());
      }
      return true;
    }
    if (cmd == "stats") return CmdStats(rest);
    if (cmd == "history") {
      std::printf("%s", database_.history().ToString().c_str());
      return true;
    }
    std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    return true;
  }

  bool CmdCreate(const std::string& rest) {
    auto toks = Tokens(rest);
    if (toks.size() < 2) {
      std::printf("usage: create <table> <col:type>... [key]\n");
      return true;
    }
    std::vector<db::Column> cols;
    std::vector<std::string> key;
    for (size_t i = 1; i < toks.size(); ++i) {
      if (toks[i] == "key") {
        if (!cols.empty()) key.push_back(cols.back().name);
        continue;
      }
      size_t colon = toks[i].find(':');
      if (colon == std::string::npos) {
        std::printf("column must be <name>:<type>, got %s\n", toks[i].c_str());
        return true;
      }
      std::string name = toks[i].substr(0, colon);
      std::string type = ToLower(toks[i].substr(colon + 1));
      ValueType vt;
      if (type == "int") vt = ValueType::kInt64;
      else if (type == "double") vt = ValueType::kDouble;
      else if (type == "string") vt = ValueType::kString;
      else if (type == "bool") vt = ValueType::kBool;
      else {
        std::printf("unknown type %s (int|double|string|bool)\n", type.c_str());
        return true;
      }
      cols.push_back(db::Column{name, vt});
    }
    Report(database_.CreateTable(toks[0], db::Schema(std::move(cols)), key));
    return true;
  }

  bool CmdInsert(const std::string& rest) {
    auto toks = Tokens(rest);
    if (toks.empty()) {
      std::printf("usage: insert <table> <literal>...\n");
      return true;
    }
    db::Tuple row;
    for (size_t i = 1; i < toks.size(); ++i) {
      auto v = ParseLiteral(toks[i]);
      if (!v.ok()) {
        Report(v.status());
        return true;
      }
      row.push_back(*v);
    }
    clock_.Advance(1);
    Report(database_.InsertRow(toks[0], std::move(row)));
    return true;
  }

  bool CmdUpdate(const std::string& rest) {
    // update <table> <col> <literal> WHERE <expr>
    auto toks = Tokens(rest);
    size_t where = 0;
    for (size_t i = 0; i < toks.size(); ++i) {
      if (ToLower(toks[i]) == "where") where = i;
    }
    if (toks.size() < 5 || where != 3) {
      std::printf("usage: update <table> <col> <literal> WHERE <expr>\n");
      return true;
    }
    auto v = ParseLiteral(toks[2]);
    if (!v.ok()) {
      Report(v.status());
      return true;
    }
    std::string expr;
    for (size_t i = where + 1; i < toks.size(); ++i) {
      expr += toks[i];
      expr += " ";
    }
    clock_.Advance(1);
    db::ParamMap params{{"__v", *v}};
    auto n = database_.UpdateRows(toks[0], {{toks[1], "$__v"}}, expr, &params);
    if (n.ok()) {
      std::printf("%zu row(s)\n", *n);
    } else {
      Report(n.status());
    }
    return true;
  }

  bool CmdDelete(const std::string& rest) {
    auto toks = Tokens(rest);
    if (toks.size() < 3 || ToLower(toks[1]) != "where") {
      std::printf("usage: delete <table> WHERE <expr>\n");
      return true;
    }
    std::string expr;
    for (size_t i = 2; i < toks.size(); ++i) {
      expr += toks[i];
      expr += " ";
    }
    clock_.Advance(1);
    auto n = database_.DeleteRows(toks[0], expr);
    if (n.ok()) {
      std::printf("%zu row(s)\n", *n);
    } else {
      Report(n.status());
    }
    return true;
  }

  bool CmdSql(const std::string& rest) {
    auto r = database_.QuerySql(rest);
    if (!r.ok()) {
      Report(r.status());
      return true;
    }
    std::printf("%s", r->ToString().c_str());
    std::printf("(%zu row(s))\n", r->size());
    return true;
  }

  bool CmdQuery(const std::string& rest) {
    auto [name, sql] = Split(rest);
    if (name.empty() || sql.empty()) {
      std::printf("usage: query <name> <SELECT ...>\n");
      return true;
    }
    // Positional parameters $p1, $p2, ... map to PTL arguments.
    std::vector<std::string> params;
    for (int i = 1; i <= 8; ++i) {
      std::string p = "p" + std::to_string(i);
      if (sql.find("$" + p) != std::string::npos) params.push_back(p);
    }
    Report(engine_.queries().Register(name, sql, params));
    return true;
  }

  bool CmdRule(const std::string& rest, bool ic) {
    size_t sep = rest.find(":=");
    if (sep == std::string::npos) {
      std::printf("usage: %s <name> := <condition>\n", ic ? "ic" : "trigger");
      return true;
    }
    std::string name = rest.substr(0, sep);
    while (!name.empty() && name.back() == ' ') name.pop_back();
    std::string condition = rest.substr(sep + 2);
    if (ic) {
      Report(engine_.AddIntegrityConstraint(name, condition));
    } else {
      Report(engine_.AddTrigger(
          name, condition, [](rules::ActionContext&) { return Status::OK(); }));
    }
    return true;
  }

  bool CmdEvent(const std::string& rest) {
    auto toks = Tokens(rest);
    if (toks.empty()) {
      std::printf("usage: event <name> [literal...]\n");
      return true;
    }
    event::Event e;
    e.name = toks[0];
    for (size_t i = 1; i < toks.size(); ++i) {
      auto v = ParseLiteral(toks[i]);
      if (!v.ok()) {
        Report(v.status());
        return true;
      }
      e.params.push_back(*v);
    }
    clock_.Advance(1);
    Report(database_.RaiseEvent(std::move(e)));
    return true;
  }

  bool CmdDescribe(const std::string& name) {
    auto info = engine_.Describe(name);
    if (!info.ok()) {
      Report(info.status());
      return true;
    }
    std::printf("rule       %s%s%s%s\n", info->name.c_str(),
                info->is_ic ? " [integrity constraint]" : "",
                info->is_system ? " [system]" : "",
                info->is_family ? " [family]" : "");
    std::printf("condition  %s\n", info->condition.c_str());
    std::printf("instances  %zu\n", info->num_instances);
    std::printf("bounded    %s (%zu lint diagnostic(s), %zu node(s) "
                "folded)\n",
                ptl::BoundednessToString(info->boundedness),
                info->lint_diagnostics, info->folded_nodes);
    std::printf("events     %s\n", Join(info->event_names, ", ").c_str());
    std::printf("retained   %zu node(s)\n", info->retained_nodes);
    std::printf("steps      %llu\n",
                static_cast<unsigned long long>(info->steps));
    return true;
  }

  bool CmdStats(const std::string& rest) {
    if (Split(rest).first == "json") {
      // The full registry snapshot: engine counters, latency histograms, and
      // the provider-refreshed evaluator/per-rule gauges.
      std::printf("%s\n", metrics_.ToJson().c_str());
      return true;
    }
    const rules::EngineStats& st = engine_.stats();
    std::printf("states=%llu steps=%llu queries=%llu memo_hits=%llu "
                "actions=%llu ic_checks=%llu ic_violations=%llu skipped=%llu "
                "collections=%llu\n",
                static_cast<unsigned long long>(st.states_processed),
                static_cast<unsigned long long>(st.rule_steps),
                static_cast<unsigned long long>(st.queries_evaluated),
                static_cast<unsigned long long>(st.query_memo_hits),
                static_cast<unsigned long long>(st.actions_executed),
                static_cast<unsigned long long>(st.ic_checks),
                static_cast<unsigned long long>(st.ic_violations),
                static_cast<unsigned long long>(st.steps_skipped_by_filter),
                static_cast<unsigned long long>(st.collections));
    return true;
  }

  bool CmdTrace(const std::string& rest) {
    auto [sub, arg] = Split(rest);
    if (sub == "on") {
      trace_.Enable();
      std::printf("tracing on\n");
    } else if (sub == "off") {
      trace_.Disable();
      std::printf("tracing off (%zu span(s), %zu update record(s) "
                  "retained)\n",
                  trace_.span_count(), trace_.update_count());
    } else if (sub == "clear") {
      trace_.Clear();
      std::printf("trace cleared\n");
    } else if (sub == "dump" && !arg.empty()) {
      Status s = trace_.DumpJsonl(arg);
      if (s.ok()) {
        std::printf("wrote %zu update record(s) to %s (%llu dropped)\n",
                    trace_.update_count(), arg.c_str(),
                    static_cast<unsigned long long>(trace_.dropped_updates()));
      } else {
        Report(s);
      }
    } else if (sub == "chrome" && !arg.empty()) {
      Status s = trace_.DumpChromeTrace(arg);
      if (s.ok()) {
        std::printf("wrote %zu span(s) to %s (load in chrome://tracing)\n",
                    trace_.span_count(), arg.c_str());
      } else {
        Report(s);
      }
    } else if (sub == "replay" && !arg.empty()) {
      auto report = rules::TraceReplayFile(arg);
      if (!report.ok()) {
        Report(report.status());
        return true;
      }
      std::printf("%s\n", report->Summary().c_str());
      for (const std::string& line : report->details) {
        std::printf("  %s\n", line.c_str());
      }
    } else {
      std::printf(
          "usage: trace on|off|clear | trace dump <file> | trace chrome "
          "<file> | trace replay <file>\n");
    }
    return true;
  }

  bool CmdWhy(const std::string& name) {
    if (name.empty()) {
      std::printf("usage: why <rule>\n");
      return true;
    }
    auto text = engine_.Why(name);
    if (!text.ok()) {
      Report(text.status());
      return true;
    }
    std::printf("%s", text->c_str());
    return true;
  }

  bool CmdVersioned(const std::string& rest) {
    auto [sub, arg] = Split(rest);
    if (sub.empty()) {
      auto tables = temporal_.VersionedTables();
      if (tables.empty()) {
        std::printf("no versioned tables (use 'versioned <table>')\n");
      }
      for (const std::string& name : tables) {
        std::printf("  %s\n", name.c_str());
      }
      return true;
    }
    if (sub == "drop") {
      if (arg.empty()) {
        std::printf("usage: versioned drop <table>\n");
        return true;
      }
      Report(temporal_.DropVersioned(arg));
      return true;
    }
    if (sub == "history") {
      if (arg.empty()) {
        std::printf("usage: versioned history <table>\n");
        return true;
      }
      auto rel = temporal_.HistoryRelation(arg);
      if (!rel.ok()) {
        Report(rel.status());
        return true;
      }
      std::printf("%s(%zu archived interval(s))\n", rel->ToString().c_str(),
                  rel->size());
      return true;
    }
    Status s = temporal_.SetVersioned(sub);
    if (s.ok()) {
      std::printf("%s is versioned from t=%lld on\n", sub.c_str(),
                  static_cast<long long>(clock_.Now()));
    } else {
      Report(s);
    }
    return true;
  }

  bool CmdAsOf(const std::string& rest) {
    auto [t_str, sql] = Split(rest);
    auto t = ParseInt64(t_str);
    if (!t.ok() || sql.empty()) {
      std::printf("usage: asof <t> <SELECT ...>\n");
      return true;
    }
    auto r = database_.QuerySqlAsOf(sql, *t);
    if (!r.ok()) {
      Report(r.status());
      return true;
    }
    std::printf("%s", r->ToString().c_str());
    std::printf("(%zu row(s) as of t=%lld)\n", r->size(),
                static_cast<long long>(*t));
    return true;
  }

  bool CmdTrim(const std::string& rest) {
    auto t = ParseInt64(rest);
    if (!t.ok()) {
      std::printf("usage: trim <t>\n");
      return true;
    }
    Status s = temporal_.TrimHistoryBefore(*t);
    if (s.ok()) {
      std::printf("history trimmed below t=%lld\n",
                  static_cast<long long>(*t));
    } else {
      Report(s);
    }
    return true;
  }

  bool CmdOffline() {
    DrainEngineOutput();  // fold any still-buffered firings into the log
    auto report = rules::OfflineCheck(temporal_, engine_, firing_log_);
    if (!report.ok()) {
      Report(report.status());
      return true;
    }
    std::printf("%s", report->ToString().c_str());
    return true;
  }

  storage::CheckpointTargets Targets() {
    storage::CheckpointTargets t;
    t.db = &database_;
    t.engine = &engine_;
    t.clock = &clock_;
    t.metrics = &metrics_;
    t.temporal = &temporal_;
    return t;
  }

  bool CmdDurable(const std::string& rest) {
    if (durability_ != nullptr) {
      std::printf("already durable (dir %s); restart the shell to detach\n",
                  durability_->options().dir.c_str());
      return true;
    }
    auto toks = Tokens(rest);
    if (toks.empty()) {
      std::printf("usage: durable <dir> [sync|async|none] [every <N>]\n");
      return true;
    }
    storage::DurabilityOptions opts;
    opts.dir = toks[0];
    for (size_t i = 1; i < toks.size(); ++i) {
      if (toks[i] == "sync") {
        opts.fsync = storage::FsyncPolicy::kSync;
      } else if (toks[i] == "async") {
        opts.fsync = storage::FsyncPolicy::kAsync;
      } else if (toks[i] == "none") {
        opts.fsync = storage::FsyncPolicy::kNone;
      } else if (toks[i] == "every" && i + 1 < toks.size()) {
        auto n = ParseInt64(toks[++i]);
        if (!n.ok() || *n <= 0) {
          std::printf("error: 'every' needs a positive state count\n");
          return true;
        }
        opts.checkpoint_every_n_states = static_cast<uint64_t>(*n);
      } else {
        std::printf("usage: durable <dir> [sync|async|none] [every <N>]\n");
        return true;
      }
    }
    auto mgr = storage::DurabilityManager::Attach(opts, Targets());
    if (!mgr.ok()) {
      Report(mgr.status());
      return true;
    }
    durability_ = std::move(mgr).value();
    std::printf("durable store at %s (checkpoint %llu written)\n",
                opts.dir.c_str(),
                static_cast<unsigned long long>(
                    durability_->last_checkpoint_id()));
    return true;
  }

  bool CmdCheckpoint() {
    if (durability_ == nullptr) {
      std::printf("no durable store attached (use 'durable <dir>')\n");
      return true;
    }
    Status s = durability_->Checkpoint();
    if (!s.ok()) {
      Report(s);
      return true;
    }
    std::printf("checkpoint %llu committed\n",
                static_cast<unsigned long long>(
                    durability_->last_checkpoint_id()));
    return true;
  }

  bool CmdRecover(const std::string& dir) {
    if (dir.empty()) {
      std::printf("usage: recover <dir>\n");
      return true;
    }
    if (durability_ != nullptr) {
      std::printf("detach first: cannot recover while a durable store is "
                  "attached\n");
      return true;
    }
    auto report = storage::Recover(dir, Targets());
    if (!report.ok()) {
      Report(report.status());
      return true;
    }
    std::printf("%s\n", report->ToString().c_str());
    return true;
  }

  bool CmdWal(const std::string& rest) {
    if (rest != "stats") {
      std::printf("usage: wal stats\n");
      return true;
    }
    if (durability_ == nullptr) {
      std::printf("no durable store attached (use 'durable <dir>')\n");
      return true;
    }
    storage::WalStats s = durability_->wal_stats();
    std::printf(
        "wal: %llu record(s) (%llu state, %llu firing, %llu veto), %llu "
        "byte(s), %llu sync(s)\n"
        "checkpoints: %llu taken, last id %llu, %llu state(s) since last\n"
        "status: %s\n",
        static_cast<unsigned long long>(s.records_appended),
        static_cast<unsigned long long>(s.state_records),
        static_cast<unsigned long long>(s.firing_records),
        static_cast<unsigned long long>(s.veto_records),
        static_cast<unsigned long long>(s.bytes_appended),
        static_cast<unsigned long long>(s.syncs),
        static_cast<unsigned long long>(durability_->checkpoints_taken()),
        static_cast<unsigned long long>(durability_->last_checkpoint_id()),
        static_cast<unsigned long long>(
            durability_->states_since_checkpoint()),
        durability_->status().ok() ? "ok"
                                   : durability_->status().ToString().c_str());
    return true;
  }

  bool CmdLint(const std::string& target) {
    if (target.empty()) {
      std::printf("usage: lint <rule|file>\n");
      return true;
    }
    // A registered rule name wins; otherwise treat the argument as a path
    // to a rule file (one `name := condition` per line).
    auto text = engine_.Lint(target);
    if (text.ok()) {
      std::printf("%s", text->c_str());
      return true;
    }
    std::ifstream in{std::string(target)};
    if (!in) {
      std::printf("error: no rule named '%s' and no such file\n",
                  target.c_str());
      return true;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    ptl::FileLintResult res = ptl::LintRulesText(buf.str());
    std::printf("%s\n", res.rendered.c_str());
    return true;
  }

  bool CmdAnalyze(const std::string& mode) {
    const analysis::SetReport& report = engine_.AnalyzeRuleSet();
    if (mode == "json") {
      std::printf("%s\n", report.ToJson().Dump().c_str());
    } else if (mode == "dot") {
      std::printf("%s", report.ToDot().c_str());
    } else if (mode.empty()) {
      std::printf("%s", report.ToText().c_str());
    } else {
      std::printf("usage: analyze [json|dot]\n");
    }
    return true;
  }

  bool CmdExplain(const std::string& name) {
    if (name.empty()) {
      std::printf("usage: explain <rule>\n");
      return true;
    }
    auto text = engine_.Explain(name);
    if (!text.ok()) {
      Report(text.status());
      return true;
    }
    std::printf("%s", text->c_str());
    return true;
  }

  SimClock clock_;
  db::Database database_;
  // Declared before the engine: the engine's destructor detaches from the
  // registry, so the registry must outlive it.
  Metrics metrics_;
  trace::Recorder trace_;
  rules::RuleEngine engine_;
  // Attaches to the database as its temporal sink; declared after it so the
  // destructor detaches while the database is still alive.
  temporal::VersionStore temporal_{&database_};
  // Every firing drained to the screen, retained as the online half of the
  // 'offline' differential check.
  std::vector<rules::Firing> firing_log_;
  // Declared after the engine/database it observes: destroyed first, so its
  // destructor can detach and flush cleanly.
  std::unique_ptr<storage::DurabilityManager> durability_;
};

}  // namespace

int main() {
  Shell shell;
  return shell.Run();
}
