// Stock-market monitor: the paper's motivating domain, end to end.
//
//   * a moving-average trigger (intro: "the moving average of a stock price
//     in the last 20 minutes exceeds 50");
//   * an hourly-average condition built from §6 temporal aggregates, with the
//     §6.1.1 rewriting so the CUM/TOTAL auxiliary items are real tables you
//     can SELECT from;
//   * a crash detector as a rule *family* — one incremental evaluator per
//     stock, instantiated from a domain query (the paper's free-variable
//     rules);
//   * a temporal integrity constraint: no transaction may cut any price by
//     more than 50% relative to the last 30 ticks.
//
// Run: ./build/examples/stock_monitor

#include <cstdio>

#include "common/clock.h"
#include "common/logging.h"
#include "db/database.h"
#include "rules/engine.h"

using namespace ptldb;

namespace {

void Announce(const char* what, rules::ActionContext& ctx) {
  std::printf(">>> [t=%-3lld] %-18s %s\n",
              static_cast<long long>(ctx.fired_at()), ctx.rule().c_str(), what);
}

}  // namespace

int main() {
  SimClock clock(0);
  db::Database database(&clock);
  rules::RuleEngine engine(&database);

  PTLDB_CHECK_OK(database.CreateTable(
      "stock",
      db::Schema({{"name", ValueType::kString},
                  {"price", ValueType::kDouble},
                  {"sector", ValueType::kString}}),
      {"name"}));
  for (const char* row : {"IBM", "HP", "SUN"}) {
    PTLDB_CHECK_OK(database.InsertRow(
        "stock", {Value::Str(row), Value::Real(40), Value::Str("tech")}));
  }

  PTLDB_CHECK_OK(engine.queries().Register(
      "price", "SELECT price FROM stock WHERE name = $sym", {"sym"}));

  // Moving average over a 20-tick window (the intro's example).
  PTLDB_CHECK_OK(engine.AddTrigger(
      "hot_ibm", "wavg(price('IBM'), 20) > 50",
      [](rules::ActionContext& ctx) -> Status {
        Announce("20-tick moving average of IBM above 50", ctx);
        return Status::OK();
      }));

  // Hourly average since "9AM" (time=540), sampled at @update_stocks events,
  // processed via the §6.1.1 rewriting: inspect __agg_avg_watch_0 with SQL.
  PTLDB_CHECK_OK(engine.AddTrigger(
      "avg_watch", "avg(price('IBM'); time = 540; @update_stocks) > 70",
      [](rules::ActionContext& ctx) -> Status {
        Announce("hourly average of IBM above 70", ctx);
        return Status::OK();
      },
      rules::RuleOptions{.aggregate_mode = rules::AggregateMode::kRewrite}));

  // Crash detector for EVERY stock: a family over the stock table. The
  // condition is instantiated per name; the action reads its parameter.
  PTLDB_CHECK_OK(engine.AddTriggerFamily(
      "crash", "SELECT name FROM stock", {"sym"},
      "[x := price(sym)] WITHIN(price(sym) >= 1.5 * x, 15)",
      [](rules::ActionContext& ctx) -> Status {
        std::printf(">>> [t=%-3lld] crash             %s lost a third within "
                    "15 ticks\n",
                    static_cast<long long>(ctx.fired_at()),
                    ctx.param("sym").AsString().c_str());
        return Status::OK();
      }));

  // Temporal integrity constraint: no transaction may halve a price relative
  // to its recent history. Violations abort.
  PTLDB_CHECK_OK(engine.AddIntegrityConstraint(
      "no_halving",
      "NOT ([x := price('IBM')] WITHIN(price('IBM') >= 2 * x AND "
      "price('IBM') > 0, 30))"));

  auto set_price = [&](Timestamp at, const char* sym, double price) {
    clock.Set(at);
    db::ParamMap params{{"p", Value::Real(price)}, {"n", Value::Str(sym)}};
    Status s = database
                   .UpdateRows("stock", {{"price", "$p"}}, "name = $n", &params)
                   .status();
    std::printf("t=%-3lld %s := %-5.1f %s\n", static_cast<long long>(at), sym,
                price, s.ok() ? "" : s.ToString().c_str());
  };
  auto tick_update_stocks = [&](Timestamp at) {
    clock.Set(at);
    PTLDB_CHECK_OK(database.RaiseEvent(event::Event{"update_stocks", {}}));
  };

  std::printf("== warm-up before 9AM ==\n");
  set_price(500, "IBM", 60);
  set_price(510, "HP", 42);

  std::printf("== 9AM window opens (t=540) ==\n");
  clock.Set(540);
  PTLDB_CHECK_OK(database.RaiseEvent(event::Event{"nine_am", {}}));
  set_price(541, "IBM", 80);
  tick_update_stocks(542);  // sample: avg = 80 -> avg_watch fires
  set_price(550, "IBM", 66);
  tick_update_stocks(551);  // avg = 73 -> still above 70

  std::printf("== SUN crashes ==\n");
  set_price(560, "SUN", 39);
  set_price(565, "SUN", 24);  // lost > 1/3 within 15 ticks -> crash fires

  std::printf("== someone tries to halve IBM (IC aborts it) ==\n");
  set_price(570, "IBM", 30);  // vetoed by no_halving
  set_price(575, "IBM", 62);  // fine

  std::printf("== inspect the §6.1.1 auxiliary item with plain SQL ==\n");
  auto aux = database.QuerySql("SELECT sum, cnt FROM __agg_avg_watch_0");
  PTLDB_CHECK(aux.ok());
  std::printf("__agg_avg_watch_0: sum=%s cnt=%s\n",
              aux->row(0)[0].ToString().c_str(),
              aux->row(0)[1].ToString().c_str());

  const rules::EngineStats& st = engine.stats();
  std::printf("\nstats: states=%llu steps=%llu queries=%llu actions=%llu "
              "ic_checks=%llu ic_violations=%llu instances=%llu\n",
              static_cast<unsigned long long>(st.states_processed),
              static_cast<unsigned long long>(st.rule_steps),
              static_cast<unsigned long long>(st.queries_evaluated),
              static_cast<unsigned long long>(st.actions_executed),
              static_cast<unsigned long long>(st.ic_checks),
              static_cast<unsigned long long>(st.ic_violations),
              static_cast<unsigned long long>(st.instances_created));
  return 0;
}
