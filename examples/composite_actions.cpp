// Composite and temporal actions (§7), programmed with the `executed`
// machinery.
//
//   * A composite action A = (A1; then A2 ten ticks later): rule r1 runs A1;
//     rule r2 is a family over the __executed relation firing when
//     time >= t0 + 10.
//   * The paper's periodic action: "when price(IBM) < 60, BUY 50 IBM stocks
//     every 10 minutes for the next hour (as long as the condition persists)"
//     — r_buy fires on the condition; r_rebuy re-fires off its own execution
//     record every 10 ticks while within the hour and the price stays low.
//
// Run: ./build/examples/composite_actions

#include <cstdio>

#include "common/clock.h"
#include "common/logging.h"
#include "db/database.h"
#include "rules/engine.h"

using namespace ptldb;

int main() {
  SimClock clock(0);
  db::Database database(&clock);
  rules::RuleEngine engine(&database);

  PTLDB_CHECK_OK(database.CreateTable(
      "stock",
      db::Schema({{"name", ValueType::kString}, {"price", ValueType::kDouble}}),
      {"name"}));
  PTLDB_CHECK_OK(database.CreateTable(
      "portfolio",
      db::Schema({{"name", ValueType::kString}, {"shares", ValueType::kInt64}}),
      {"name"}));
  PTLDB_CHECK_OK(
      database.InsertRow("stock", {Value::Str("IBM"), Value::Real(80)}));
  PTLDB_CHECK_OK(
      database.InsertRow("portfolio", {Value::Str("IBM"), Value::Int(0)}));

  PTLDB_CHECK_OK(engine.queries().Register(
      "price", "SELECT price FROM stock WHERE name = $sym", {"sym"}));
  PTLDB_CHECK_OK(engine.queries().Register(
      "shares", "SELECT shares FROM portfolio WHERE name = $sym", {"sym"}));

  auto buy = [&database](rules::ActionContext& ctx) -> Status {
    db::ParamMap params{{"n", Value::Str("IBM")}};
    PTLDB_RETURN_IF_ERROR(database
                              .UpdateRows("portfolio",
                                          {{"shares", "shares + 50"}},
                                          "name = $n", &params)
                              .status());
    std::printf(">>> [t=%-3lld] %s: bought 50 IBM\n",
                static_cast<long long>(ctx.fired_at()), ctx.rule().c_str());
    return Status::OK();
  };

  // --- Composite action: A1, then A2 ten ticks later ---
  PTLDB_CHECK_OK(engine.AddTrigger(
      "r1", "@deploy()",
      [](rules::ActionContext& ctx) -> Status {
        std::printf(">>> [t=%-3lld] r1: A1 (stage one) runs\n",
                    static_cast<long long>(ctx.fired_at()));
        return Status::OK();
      }));
  PTLDB_CHECK_OK(engine.AddTriggerFamily(
      "r2", "SELECT t FROM __executed WHERE rule = 'r1'", {"t0"},
      "time >= $t0 + 10",
      [](rules::ActionContext& ctx) -> Status {
        std::printf(">>> [t=%-3lld] r2: A2 (stage two), 10+ ticks after A1 "
                    "(t0=%s)\n",
                    static_cast<long long>(ctx.fired_at()),
                    ctx.param("t0").ToString().c_str());
        return Status::OK();
      },
      rules::RuleOptions{.record_execution = false}));

  // --- Periodic action: the paper's BUY-STOCK example ---
  // First purchase when the price drops below 60.
  PTLDB_CHECK_OK(engine.AddTrigger("r_buy", "price('IBM') < 60", buy));
  // Re-buy every 10 ticks for 60 ticks, while the price stays below 60:
  // the paper's rule  executed(r1, t) AND (time - t <= 60) AND
  // (time - t) mod 10 = 0 -> A.
  PTLDB_CHECK_OK(engine.AddTriggerFamily(
      "r_rebuy",
      "SELECT t FROM __executed WHERE rule = 'r_buy'", {"t0"},
      "(time - $t0) <= 60 AND (time - $t0) % 10 = 0 AND (time - $t0) > 0 "
      "AND price('IBM') < 60",
      buy, rules::RuleOptions{.record_execution = false}));

  auto at = [&](Timestamp t, auto fn) {
    clock.Set(t);
    fn();
  };
  auto set_price = [&](double price) {
    db::ParamMap params{{"p", Value::Real(price)}};
    PTLDB_CHECK(
        database.UpdateRows("stock", {{"price", "$p"}}, "name = 'IBM'", &params)
            .ok());
  };
  auto tick = [&]() {
    PTLDB_CHECK_OK(database.RaiseEvent(event::Event{"clock_tick", {}}));
  };

  std::printf("== composite action ==\n");
  at(5, [&] { PTLDB_CHECK_OK(database.RaiseEvent(event::Event{"deploy", {}})); });
  at(12, tick);  // too early for A2
  at(16, tick);  // 16 >= 5 + 10: A2 fires

  std::printf("== periodic BUY while price < 60, every 10 ticks ==\n");
  at(100, [&] { set_price(55); });  // first buy
  // Ticks drive evaluation; buys recur at +10, +20, ... while cheap.
  for (Timestamp t = 101; t <= 150; ++t) at(t, tick);
  at(151, [&] { set_price(70); });  // price recovers
  for (Timestamp t = 152; t <= 175; ++t) at(t, tick);  // no more buys

  auto shares = database.QuerySql("SELECT shares FROM portfolio");
  PTLDB_CHECK(shares.ok());
  std::printf("final IBM shares: %s\n",
              shares->row(0)[0].ToString().c_str());
  return 0;
}
