// Login audit: conditions mixing events and database predicates — the §1
// motivation for dropping the event/condition dichotomy.
//
//   * "the balance remains positive while user X is logged in":
//         balance('X') > 0 is required at every state between @login('X')
//         and @logout('X') — a Since condition over both an event and a
//         database predicate, inexpressible as a plain ECA event part.
//   * an audit rule family over the users table;
//   * an integrity constraint: a withdrawal cannot be committed by a user
//     who was never logged in.
//
// Run: ./build/examples/login_audit

#include <cstdio>

#include "common/clock.h"
#include "common/logging.h"
#include "db/database.h"
#include "rules/engine.h"

using namespace ptldb;

int main() {
  SimClock clock(0);
  db::Database database(&clock);
  rules::RuleEngine engine(&database);

  PTLDB_CHECK_OK(database.CreateTable(
      "account",
      db::Schema({{"user", ValueType::kString},
                  {"balance", ValueType::kDouble}}),
      {"user"}));
  PTLDB_CHECK_OK(
      database.InsertRow("account", {Value::Str("alice"), Value::Real(100)}));
  PTLDB_CHECK_OK(
      database.InsertRow("account", {Value::Str("bob"), Value::Real(50)}));

  PTLDB_CHECK_OK(engine.queries().Register(
      "balance", "SELECT balance FROM account WHERE user = $u", {"u"}));

  // §1's condition: the balance stayed positive throughout alice's session.
  // Satisfied while logged in AND no non-positive balance since the login.
  PTLDB_CHECK_OK(engine.AddTrigger(
      "healthy_session",
      "(balance('alice') > 0 AND NOT @logout('alice')) "
      "SINCE @login('alice')",
      [](rules::ActionContext& ctx) -> Status {
        std::printf(">>> [t=%-2lld] healthy_session: alice logged in, balance "
                    "positive throughout\n",
                    static_cast<long long>(ctx.fired_at()));
        return Status::OK();
      },
      rules::RuleOptions{.record_execution = false}));

  // Alert the instant a session sees a non-positive balance.
  PTLDB_CHECK_OK(engine.AddTriggerFamily(
      "overdraft_in_session", "SELECT user FROM account", {"u"},
      "balance(u) <= 0 AND (NOT @logout(u) SINCE @login(u))",
      [](rules::ActionContext& ctx) -> Status {
        std::printf(">>> [t=%-2lld] OVERDRAFT by %s during an open session!\n",
                    static_cast<long long>(ctx.fired_at()),
                    ctx.param("u").AsString().c_str());
        return Status::OK();
      }));

  // IC: a withdrawal in the committing transaction's window (the last 2
  // ticks) must come from a user who logged in at some point before. A bare
  // PREVIOUSLY would latch the violation forever; the WITHIN bound scopes it
  // to the offending commit.
  PTLDB_CHECK_OK(engine.AddIntegrityConstraint(
      "withdraw_needs_login",
      "NOT WITHIN(@withdraw('bob') AND NOT PREVIOUSLY @login('bob'), 2)"));

  auto raise = [&](Timestamp at, event::Event e) {
    clock.Set(at);
    std::printf("t=%-2lld event %s\n", static_cast<long long>(at),
                e.ToString().c_str());
    PTLDB_CHECK_OK(database.RaiseEvent(std::move(e)));
  };
  auto adjust = [&](Timestamp at, const char* user, double delta,
                    bool with_withdraw_event = false) {
    clock.Set(at);
    auto txn = database.Begin();
    PTLDB_CHECK(txn.ok());
    db::ParamMap params{{"d", Value::Real(delta)}, {"u", Value::Str(user)}};
    PTLDB_CHECK(database
                    .Update(*txn, "account", {{"balance", "balance + $d"}},
                            "user = $u", &params)
                    .ok());
    if (with_withdraw_event) {
      // Raising the event *before* commit puts it in the history first; the
      // IC then sees it at its own state.
      PTLDB_CHECK_OK(
          database.RaiseEvent(event::Event{"withdraw", {Value::Str(user)}}));
    }
    Status s = database.Commit(*txn);
    std::printf("t=%-2lld %s %+.0f -> %s\n", static_cast<long long>(at), user,
                delta, s.ok() ? "committed" : s.ToString().c_str());
  };

  raise(1, event::Event{"login", {Value::Str("alice")}});
  adjust(3, "alice", -30);   // balance 70: session healthy
  adjust(5, "alice", -80);   // balance -10: overdraft alert
  raise(7, event::Event{"logout", {Value::Str("alice")}});
  adjust(8, "alice", +40);   // after logout: no session rules fire

  // bob never logged in; his withdrawal is vetoed by the IC.
  adjust(10, "bob", -10, /*with_withdraw_event=*/true);
  raise(12, event::Event{"login", {Value::Str("bob")}});
  adjust(13, "bob", -10, /*with_withdraw_event=*/true);  // now fine

  auto r = database.QuerySql("SELECT user, balance FROM account ORDER BY user");
  PTLDB_CHECK(r.ok());
  std::printf("\nfinal balances:\n");
  for (const auto& row : r->rows()) {
    std::printf("  %-6s %s\n", row[0].AsString().c_str(),
                row[1].ToString().c_str());
  }
  return 0;
}
